//! The §V future-work path: Lanczos-quadrature trace estimation of the RPA
//! integrand, cross-checked against the subspace-iteration trace and the
//! exact dense trace on a small system.

// Test code: panics are failures, and exact float comparisons assert
// bitwise-reproducible results (DESIGN.md §9).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use mbrpa::core::{
    dielectric_spectrum, full_spectrum, lanczos_trace, random_orthonormal_block,
    subspace_iteration, trace_term, TraceEstimatorOptions,
};
use mbrpa::prelude::*;

struct Fixture {
    ham: Hamiltonian,
    psi: Mat<f64>,
    energies: Vec<f64>,
    coulomb: CoulombOperator,
    h_dense: Mat<f64>,
    n_occ: usize,
}

fn fixture() -> Fixture {
    let crystal = SiliconSpec {
        points_per_cell: 5,
        perturbation: 0.03,
        seed: 41,
        ..SiliconSpec::default()
    }
    .build();
    let ham = Hamiltonian::new(&crystal, 2, &PotentialParams::default());
    let n_occ = 5;
    let ks = solve_occupied_dense(&ham, n_occ, 0).unwrap();
    let spectral = SpectralLaplacian::new(crystal.grid, 2).unwrap();
    Fixture {
        h_dense: ham.to_dense(),
        psi: ks.occupied_orbitals(),
        energies: ks.occupied_energies().to_vec(),
        ham,
        coulomb: CoulombOperator::new(spectral),
        n_occ,
    }
}

#[test]
fn lanczos_trace_agrees_with_exact_dense_trace() {
    let f = fixture();
    let omega = 0.6;
    let op = DielectricOperator::new(
        &f.ham,
        &f.psi,
        &f.energies,
        &f.coulomb,
        omega,
        SternheimerSettings {
            tol: 1e-9,
            ..SternheimerSettings::default()
        },
        1,
    );
    let eig = full_spectrum(&f.h_dense).unwrap();
    let exact_spectrum = dielectric_spectrum(&eig, f.n_occ, omega, &f.coulomb).unwrap();
    let exact: f64 = exact_spectrum.iter().map(|&m| (1.0 - m).ln() + m).sum();

    let est = lanczos_trace(
        &op,
        &|mu| {
            let mu = mu.min(0.0);
            (1.0 - mu).ln() + mu
        },
        &TraceEstimatorOptions {
            n_probes: 20,
            lanczos_steps: 25,
            seed: 4,
        },
    )
    .unwrap();
    let err = (est.trace - exact).abs();
    assert!(
        err < 6.0 * est.std_error.max(0.01 * exact.abs()),
        "Lanczos trace {} vs exact {exact} (stderr {})",
        est.trace,
        est.std_error
    );
}

#[test]
fn subspace_trace_is_a_lower_magnitude_bound() {
    // the truncated subspace trace must capture most of, and never exceed,
    // the exact magnitude (all contributions are negative)
    let f = fixture();
    let omega = 0.6;
    let op = DielectricOperator::new(
        &f.ham,
        &f.psi,
        &f.energies,
        &f.coulomb,
        omega,
        SternheimerSettings {
            tol: 1e-8,
            ..SternheimerSettings::default()
        },
        1,
    );
    let n_eig = 20;
    let v0 = random_orthonormal_block(f.ham.dim(), n_eig, 8);
    let out = subspace_iteration(&op, v0, 1e-4, 30, 3).unwrap();
    let truncated = trace_term(&out.eigenvalues);

    let eig = full_spectrum(&f.h_dense).unwrap();
    let spectrum = dielectric_spectrum(&eig, f.n_occ, omega, &f.coulomb).unwrap();
    let exact: f64 = spectrum.iter().map(|&m| (1.0 - m).ln() + m).sum();

    assert!(truncated < 0.0 && exact < 0.0);
    assert!(
        truncated.abs() <= exact.abs() * (1.0 + 1e-6),
        "truncated {truncated} exceeds exact {exact}"
    );
    assert!(
        truncated.abs() > 0.6 * exact.abs(),
        "truncated trace too lossy: {truncated} vs {exact}"
    );
}
