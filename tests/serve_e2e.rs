//! End-to-end daemon test: spawn the real `rpaserved` binary, submit a
//! job, `kill -9` the daemon mid-run, restart it on the same store, and
//! assert the job resumes from its checkpoints and finishes with an
//! energy bit-identical to an uninterrupted in-process run.

#![allow(clippy::unwrap_used)]

use mbrpa::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Several cheap frequencies, so a kill usually lands mid-run and the
/// resume has work left to do.
const JOB_INPUT: &str = "\
N_NUCHI_EIGS: 6
N_OMEGA: 6
TOL_EIG: 1e-2
TOL_STERN_RES: 1e-2
MAXIT_FILTERING: 6
CHEB_DEGREE_RPA: 2
BOUNDARY: DIRICHLET
CELLS_Z: 1
POINTS_PER_CELL: 5
MESH: 0.69
PERTURBATION: 0.02
SYSTEM_SEED: 7
NP: 1
";

fn spawn_daemon(root: &Path, port_file: &Path) -> Child {
    let _ = std::fs::remove_file(port_file);
    Command::new(env!("CARGO_BIN_EXE_rpaserved"))
        .arg("-root")
        .arg(root)
        .arg("-addr")
        .arg("127.0.0.1:0")
        .arg("-port-file")
        .arg(port_file)
        .arg("-executors")
        .arg("1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("rpaserved should start")
}

fn read_addr(port_file: &Path, child: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if !text.trim().is_empty() {
                return text.trim().to_string();
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("rpaserved exited before binding: {status}");
        }
        assert!(Instant::now() < deadline, "daemon never wrote its address");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split(' ').nth(1).unwrap().parse().unwrap();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Pull a `"key": value` scalar out of a flat JSON body without a
/// parser dependency in this integration test.
fn json_member(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = body[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        return Some(stripped[..stripped.find('"')?].to_string());
    }
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    Some(rest[..end].to_string())
}

#[test]
fn kill_dash_nine_resumes_bit_for_bit() {
    let scratch = std::env::temp_dir().join(format!("mbrpa-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let root: PathBuf = scratch.join("store");
    let port_file = scratch.join("addr.txt");

    // reference: an uninterrupted in-process run of the same input
    let input = mbrpa::core::parse_rpa_input(JOB_INPUT).unwrap();
    let setup = RpaSetup::prepare(
        input.system.build(),
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 4 },
    )
    .unwrap();
    let reference = setup.run(&input.config).unwrap();
    let reference_bits = format!("{:016x}", reference.total_energy.to_bits());

    // first daemon: submit, wait for per-frequency progress, kill -9
    let mut child = spawn_daemon(&root, &port_file);
    let addr = read_addr(&port_file, &mut child);
    let submit = format!(
        "{{\"schema\":\"mbrpa.job/1\",\"input\":{}}}",
        // JSON-escape the input text
        mbrpa::serve::json::s(JOB_INPUT).to_json()
    );
    let (status, body) = http(&addr, "POST", "/v1/jobs", Some(&submit));
    assert_eq!(status, 201, "{body}");
    let id = json_member(&body, "id").unwrap();

    // wait until at least one frequency is checkpointed, so the resume
    // actually has prior state to load
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut finished_before_kill = false;
    loop {
        let (status, body) = http(&addr, "GET", &format!("/v1/jobs/{id}"), None);
        assert_eq!(status, 200, "{body}");
        let state = json_member(&body, "state").unwrap();
        if state == "completed" {
            // machine too fast: the job finished before we could kill it;
            // the bit-identity assertion below still applies
            finished_before_kill = true;
            break;
        }
        assert_ne!(state, "failed", "{body}");
        let completed: usize = json_member(&body, "completed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if state == "running" && completed >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "no progress before the kill");
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut killed_mid_run = false;
    if !finished_before_kill {
        child.kill().unwrap(); // SIGKILL: no drain, no final state write
        child.wait().unwrap();

        // usually the store still says `running` (the crash marker); the
        // job may also have completed in the instant before the kill
        let state_file = root.join("jobs").join(&id).join("state");
        let on_disk = std::fs::read_to_string(&state_file).unwrap();
        killed_mid_run = on_disk.trim() == "running";

        // second daemon on the same store: recovery requeues and resumes
        child = spawn_daemon(&root, &port_file);
        let addr2 = read_addr(&port_file, &mut child);
        let deadline = Instant::now() + Duration::from_secs(180);
        loop {
            let (status, body) = http(&addr2, "GET", &format!("/v1/jobs/{id}"), None);
            assert_eq!(status, 200, "{body}");
            let state = json_member(&body, "state").unwrap();
            if state == "completed" {
                break;
            }
            assert_ne!(state, "failed", "{body}");
            assert!(Instant::now() < deadline, "resumed job never finished");
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    // the served result must be bit-identical to the uninterrupted run
    let addr = std::fs::read_to_string(&port_file)
        .unwrap()
        .trim()
        .to_string();
    let (status, body) = http(&addr, "GET", &format!("/v1/jobs/{id}/result"), None);
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        json_member(&body, "total_energy_bits").as_deref(),
        Some(reference_bits.as_str()),
        "resumed energy differs from the uninterrupted run: {body}"
    );
    let n_restored: usize = json_member(&body, "n_restored")
        .and_then(|v| v.parse().ok())
        .unwrap();
    if killed_mid_run {
        assert!(n_restored >= 1, "resume restored nothing: {body}");
    }

    // graceful exit
    let (status, _) = http(&addr, "POST", "/v1/shutdown", None);
    assert_eq!(status, 202);
    let exit = child.wait().unwrap();
    assert!(exit.success(), "daemon exited {exit}");
    let _ = std::fs::remove_dir_all(&scratch);
}
