//! Failure injection: the pipeline must fail loudly and typed — never
//! with NaNs or silent wrong answers.

use mbrpa::core::{parse_rpa_input, KsSolver, RpaConfig, RpaSetup};
use mbrpa::dft::{
    solve_occupied_chefsi, ChefsiOptions, Hamiltonian, PotentialParams, SiliconSpec,
    SternheimerLinOp, SternheimerOperator,
};
use mbrpa::prelude::*;
use mbrpa::solver::true_relative_residual;

fn tiny_ham() -> (usize, Hamiltonian) {
    let c = SiliconSpec {
        points_per_cell: 5,
        ..SiliconSpec::default()
    }
    .build();
    (
        c.n_occupied(),
        Hamiltonian::new(&c, 2, &PotentialParams::default()),
    )
}

#[test]
fn cocg_on_singular_system_reports_nonconvergence_without_nans() {
    // ω = 0 with λ = an exact eigenvalue makes A = H − λI singular:
    // the solver must stagnate gracefully, not emit NaNs
    let (n_s, ham) = tiny_ham();
    let ks = solve_occupied_dense(&ham, n_s, 0).unwrap();
    let lambda = ks.energies[0];
    // the operator type rejects ω = 0 at the DielectricOperator layer;
    // at the raw solver layer we build it directly with ω = 0
    let op = SternheimerLinOp::new(SternheimerOperator::new(&ham, lambda, 0.0));
    let n = ham.dim();
    let b = Mat::from_fn(n, 2, |i, j| C64::new(((i + j) % 7) as f64 - 3.0, 0.0));
    let opts = CocgOptions {
        tol: 1e-12,
        max_iters: 50,
        ..CocgOptions::default()
    };
    let (x, rep) = block_cocg(&op, &b, None, &opts);
    assert!(!x.has_bad_values(), "no NaN/Inf in the iterate");
    assert!(rep.relative_residual.is_finite());
    // either it found a least-squares-ish iterate or honestly failed —
    // but a singular system must never report a tiny residual by luck
    if rep.converged {
        assert!(true_relative_residual(&op, &b, &x) < 1e-10);
    }
}

#[test]
fn chefsi_with_zero_iterations_is_a_typed_error() {
    let (n_s, ham) = tiny_ham();
    let result = solve_occupied_chefsi(
        &ham,
        n_s,
        &ChefsiOptions {
            max_iters: 0,
            ..ChefsiOptions::default()
        },
    );
    match result {
        Err(mbrpa::linalg::LinalgError::NoConvergence { what, .. }) => {
            assert!(what.contains("CheFSI"));
        }
        other => panic!("expected NoConvergence, got {other:?}"),
    }
}

#[test]
#[should_panic(expected = "n_eig")]
fn oversized_config_panics_at_validation() {
    let setup = RpaSetup::prepare(
        SiliconSpec {
            points_per_cell: 5,
            ..SiliconSpec::default()
        }
        .build(),
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 0 },
    )
    .unwrap();
    // n_eig = 8·96 = 768 > n_d = 125: must panic with a clear message
    let _ = setup.run(&RpaConfig::for_system(8, 96));
}

#[test]
fn bad_input_files_error_with_line_numbers() {
    let cases = [
        ("N_OMEGA: 8\nWHAT_IS_THIS: 1\n", 2, "unknown key"),
        ("N_NUCHI_EIGS: many\n", 1, "integer"),
        ("TOL_EIG:\n", 1, "at least one"),
        ("BLOCK_POLICY: vibes\n", 1, "BLOCK_POLICY"),
    ];
    for (text, line, needle) in cases {
        let err = parse_rpa_input(text).unwrap_err();
        assert_eq!(err.line, line, "{text:?}");
        assert!(
            err.message.contains(needle),
            "{text:?}: message {:?} lacks {needle:?}",
            err.message
        );
    }
}

#[test]
fn unconverged_sternheimer_surfaces_in_stats() {
    // starve the solver: 1 iteration cap at a hard frequency
    let (n_s, ham) = tiny_ham();
    let ks = solve_occupied_dense(&ham, n_s, 0).unwrap();
    let psi = ks.occupied_orbitals();
    let energies = ks.occupied_energies().to_vec();
    let crystal = SiliconSpec {
        points_per_cell: 5,
        ..SiliconSpec::default()
    }
    .build();
    let spec = mbrpa::grid::SpectralLaplacian::new(crystal.grid, 2).unwrap();
    let coulomb = CoulombOperator::new(spec);
    let op = DielectricOperator::new(
        &ham,
        &psi,
        &energies,
        &coulomb,
        0.05,
        SternheimerSettings {
            tol: 1e-12,
            max_iters: 1,
            use_galerkin_guess: false,
            ..SternheimerSettings::default()
        },
        1,
    );
    let v = Mat::from_fn(ham.dim(), 1, |i, _| ((i % 5) as f64) - 2.0);
    let out = op.apply_chi0_block(&v);
    assert!(
        !out.has_bad_values(),
        "starved solves must not produce NaNs"
    );
    let stats = op.stats_snapshot();
    assert!(
        stats.unconverged > 0,
        "starved solves must be counted as unconverged"
    );
}

#[test]
fn dirichlet_and_periodic_grids_refuse_undersized_stencils() {
    let result = std::panic::catch_unwind(|| {
        let g = Grid3::cubic(4, 0.5, Boundary::Periodic);
        Laplacian::new(g, 3)
    });
    assert!(result.is_err(), "4 points cannot host a radius-3 stencil");
}
