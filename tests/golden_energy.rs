//! Golden-value regression test for the full iterative RPA pipeline.
//!
//! A small isolated cluster under Dirichlet boundary conditions is run
//! through the complete stack — KS stage, Sternheimer `χ⁰` applies,
//! Chebyshev-filtered subspace iteration, frequency quadrature — and the
//! resulting correlation energy is pinned two ways:
//!
//! 1. against the dense direct reference (`core::direct`), per frequency,
//!    with the exact spectrum truncated to the same `n_eig` eigenvalues
//!    (catches *physics* regressions relative to the quartic oracle), and
//! 2. against a committed golden constant (catches *any* numerical drift,
//!    including changes that move both pipelines together).
//!
//! The run is single-worker with the deterministic cost-model block
//! policy, so the energy is reproducible to near machine precision; the
//! committed tolerance only allows for libm / instruction-scheduling
//! differences across platforms. If an intentional algorithm change moves
//! the energy, re-derive the constant with
//! `cargo test --test golden_energy -- --nocapture` and update it in the
//! same commit with a note in the message.

// Test code: panics are failures, and exact float comparisons assert
// bitwise-reproducible results (DESIGN.md §9).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use mbrpa::dft::Atom;
use mbrpa::prelude::*;

/// Committed reference energy (Hartree) for the system below.
const GOLDEN_E_RPA: f64 = -2.781_853_902_562_91e-1;
/// Committed relative tolerance for the golden comparison.
const GOLDEN_RTOL: f64 = 1e-8;

fn golden_setup() -> RpaSetup {
    // A tetrahedral 4-atom cluster centred in a hard-wall box: the
    // smallest system that exercises Dirichlet stencils, the Dirichlet
    // Coulomb solve, and a multi-orbital Sternheimer partition.
    let n = 7;
    let h = 0.8;
    let grid = Grid3::cubic(n, h, Boundary::Dirichlet);
    let box_len = (n + 1) as f64 * h;
    let c = 0.5 * box_len;
    let d = 0.16 * box_len;
    let atoms = vec![
        Atom {
            position: (c + d, c + d, c + d),
            valence: 4,
        },
        Atom {
            position: (c - d, c - d, c + d),
            valence: 4,
        },
        Atom {
            position: (c - d, c + d, c - d),
            valence: 4,
        },
        Atom {
            position: (c + d, c - d, c - d),
            valence: 4,
        },
    ];
    let crystal = Crystal {
        grid,
        atoms,
        label: "Si4-golden".into(),
    };
    RpaSetup::prepare(
        crystal,
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .unwrap()
}

fn golden_config() -> RpaConfig {
    RpaConfig {
        n_eig: 16,
        n_omega: 6,
        tol_sternheimer: 1e-6,
        max_filter_iters: 30,
        n_workers: 1,
        seed: 7,
        ..RpaConfig::default()
    }
}

#[test]
fn golden_energy_matches_committed_value_and_direct_reference() {
    let setup = golden_setup();
    let config = golden_config();
    let result = setup.run(&config).unwrap();
    println!("computed E_RPA = {:.15e} Ha", result.total_energy);
    assert!(result.total_energy < 0.0);
    for r in &result.per_omega {
        assert!(r.converged, "ω = {} did not converge", r.omega);
    }

    // (1) the quartic-scaling dense oracle, truncated to the same n_eig
    // dielectric eigenvalues per frequency
    let quad = frequency_quadrature(config.n_omega);
    let direct = direct_rpa_energy(
        &setup.ham.to_dense(),
        setup.ks.n_occupied,
        &setup.coulomb,
        &quad,
    )
    .unwrap();
    for (it, ex) in result.per_omega.iter().zip(direct.per_omega.iter()) {
        let truncated: f64 = ex.spectrum[..config.n_eig]
            .iter()
            .map(|&mu| (1.0 - mu).ln() + mu)
            .sum();
        let d = (it.energy_term - truncated).abs();
        assert!(
            d < 0.02 * truncated.abs().max(1e-6),
            "ω = {}: iterative {} vs truncated-direct {truncated}",
            it.omega,
            it.energy_term
        );
    }
    assert!(result.total_energy.abs() <= direct.total.abs() * 1.02);
    assert!(
        result.total_energy.abs() >= 0.5 * direct.total.abs(),
        "truncated trace lost too much: {} vs {}",
        result.total_energy,
        direct.total
    );

    // (2) the committed golden constant
    let rel = ((result.total_energy - GOLDEN_E_RPA) / GOLDEN_E_RPA).abs();
    assert!(
        rel <= GOLDEN_RTOL,
        "E_RPA drifted from the committed golden value: computed {:.15e}, \
         golden {GOLDEN_E_RPA:.15e}, relative error {rel:.3e} > {GOLDEN_RTOL:.0e}",
        result.total_energy
    );
}

#[test]
fn golden_run_is_reproducible() {
    // the premise of a tight golden tolerance: the single-worker
    // cost-model pipeline is bitwise deterministic
    let setup = golden_setup();
    let config = golden_config();
    let e1 = setup.run(&config).unwrap().total_energy;
    let e2 = setup.run(&config).unwrap().total_energy;
    assert_eq!(e1, e2, "golden system must be bitwise reproducible");
}
