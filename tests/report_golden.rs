//! Golden-output test: the artifact-style report of a fixed-seed run must
//! keep its structure and its (deterministic) physics content stable.

// Test code: panics are failures, and exact float comparisons assert
// bitwise-reproducible results (DESIGN.md §9).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use mbrpa::core::report;
use mbrpa::prelude::*;

fn golden_run() -> (RpaConfig, RpaResult) {
    let crystal = SiliconSpec {
        points_per_cell: 5,
        perturbation: 0.03,
        seed: 11,
        ..SiliconSpec::default()
    }
    .build();
    let setup = RpaSetup::prepare(
        crystal,
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .unwrap();
    let config = RpaConfig {
        n_eig: 20,
        n_omega: 4,
        tol_sternheimer: 1e-3,
        max_filter_iters: 20,
        n_workers: 2,
        seed: 17,
        ..RpaConfig::default()
    };
    let result = setup.run(&config).unwrap();
    (config, result)
}

#[test]
fn report_structure_and_content() {
    let (config, result) = golden_run();
    let doc = report::full_report(&config, &result);

    // structural sections in order
    let sections = [
        "RPA Parallelization",
        "NP_NUCHI_EIGS_PARAL_RPA: 2",
        "N_NUCHI_EIGS: 20",
        "omega 1",
        "omega 4",
        "ncheb",
        "Energy terms in every omega",
        "Total RPA correlation energy",
        "Timing info",
        "nu chi0 nu",
        "Block size",
    ];
    let mut cursor = 0;
    for s in sections {
        let found = doc[cursor..]
            .find(s)
            .unwrap_or_else(|| panic!("section `{s}` missing or out of order"));
        cursor += found;
    }

    // the energy itself is deterministic for fixed seeds
    let (c2, r2) = golden_run();
    assert_eq!(result.total_energy, r2.total_energy);
    let doc2 = report::full_report(&c2, &r2);
    // the energy line renders identically across runs
    let line = doc
        .lines()
        .find(|l| l.starts_with("Total RPA correlation energy"))
        .unwrap();
    let line2 = doc2
        .lines()
        .find(|l| l.starts_with("Total RPA correlation energy"))
        .unwrap();
    assert_eq!(line, line2);

    // physical sanity pinned into the golden expectations
    assert!(result.total_energy < -0.01 && result.total_energy > -10.0);
    assert_eq!(result.per_omega.len(), 4);
    for rep in &result.per_omega {
        assert!(rep.converged);
        assert!(rep.energy_term <= 0.0);
    }
}

#[test]
fn block_size_table_fractions_sum_to_one() {
    let (_, result) = golden_run();
    let hist = &result.solver_stats.block_sizes;
    let total: f64 = hist.iter().map(|(s, _)| hist.fraction(s)).sum();
    assert!((total - 1.0).abs() < 1e-12);
    assert!(hist.total() > 0);
}
