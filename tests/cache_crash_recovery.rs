//! Crash-safety of the exact result cache, end to end: populate the
//! cache through the real `rpaserved` binary, `kill -9` it, vandalize
//! the cache directory the way a torn write would (truncated entry,
//! leftover `.tmp` partial), restart, and assert the daemon *never*
//! serves a false hit — it recomputes, bit-identically, and only then
//! starts hitting again.

#![allow(clippy::unwrap_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use mbrpa::serve::json::{self, JsonValue};

/// Two cheap frequencies: completes in seconds.
const JOB_INPUT: &str = "\
N_NUCHI_EIGS: 4
N_OMEGA: 2
TOL_EIG: 1e-2
TOL_STERN_RES: 1e-2
MAXIT_FILTERING: 4
CHEB_DEGREE_RPA: 2
BOUNDARY: DIRICHLET
CELLS_Z: 1
POINTS_PER_CELL: 5
MESH: 0.69
PERTURBATION: 0.02
SYSTEM_SEED: 7
NP: 1
";

/// The same calculation rendered differently (lowercase, reordered,
/// aliases, float respellings): byte-different, fingerprint-identical.
const JOB_VARIANT: &str = "\
np: 1
system_seed: 7
perturbation: 2e-2
mesh: 0.69   # same mesh
points_per_cell: 5
cells_z: 1
boundary: dirichlet
cheb_degree_rpa: 2
maxit_filtering: 04
tol_stern_res: 0.01
tol_eig: 1e-2
n_omega: 2
n_nuchi_eigs: 4
";

fn spawn_daemon(root: &Path, port_file: &Path) -> Child {
    let _ = std::fs::remove_file(port_file);
    Command::new(env!("CARGO_BIN_EXE_rpaserved"))
        .arg("-root")
        .arg(root)
        .arg("-addr")
        .arg("127.0.0.1:0")
        .arg("-port-file")
        .arg(port_file)
        .arg("-executors")
        .arg("1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("rpaserved should start")
}

fn read_addr(port_file: &Path, child: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if !text.trim().is_empty() {
                return text.trim().to_string();
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("rpaserved exited before binding: {status}");
        }
        assert!(Instant::now() < deadline, "daemon never wrote its address");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split(' ').nth(1).unwrap().parse().unwrap();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn submit(addr: &str, input: &str) -> (u16, JsonValue) {
    let body = json::obj(vec![
        ("schema", json::s("mbrpa.job/1")),
        ("input", json::s(input)),
    ])
    .to_json();
    let (status, body) = http(addr, "POST", "/v1/jobs", Some(&body));
    (status, json::parse(&body).unwrap())
}

fn wait_completed(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), None);
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        let state = doc.get("state").unwrap().as_str().unwrap();
        if state == "completed" {
            return;
        }
        assert_ne!(state, "failed", "{body}");
        assert!(Instant::now() < deadline, "job never finished: {body}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn result_bits(addr: &str, id: &str) -> String {
    let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}/result"), None);
    assert_eq!(status, 200, "{body}");
    json::parse(&body)
        .unwrap()
        .get("total_energy_bits")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

#[test]
fn torn_cache_writes_never_produce_a_false_hit() {
    let scratch = std::env::temp_dir().join(format!("mbrpa-cache-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let root: PathBuf = scratch.join("store");
    let port_file = scratch.join("addr.txt");
    let cache_dir = root.join("cache");

    // daemon 1: complete one job, populating the cache
    let mut child = spawn_daemon(&root, &port_file);
    let addr = read_addr(&port_file, &mut child);
    let (status, doc) = submit(&addr, JOB_INPUT);
    assert_eq!(status, 201, "{}", doc.to_json());
    let id = doc.get("id").unwrap().as_str().unwrap().to_string();
    wait_completed(&addr, &id);
    let reference_bits = result_bits(&addr, &id);

    // the entry must be on disk under its canonical fingerprint
    let input = mbrpa::core::parse_rpa_input(JOB_INPUT).unwrap();
    let fingerprint = mbrpa::core::fingerprint_hex(&input);
    let entry_path = cache_dir.join(format!("{fingerprint}.json"));
    assert!(entry_path.is_file(), "missing {}", entry_path.display());

    // SIGKILL: the daemon gets no chance to clean anything up
    child.kill().unwrap();
    child.wait().unwrap();

    // simulate the crash landing mid-write: truncate the entry to half
    // its bytes and leave a partial temp file behind, exactly what a
    // torn non-atomic write sequence would produce
    let bytes = std::fs::read(&entry_path).unwrap();
    assert!(bytes.len() > 2);
    std::fs::write(&entry_path, &bytes[..bytes.len() / 2]).unwrap();
    let tmp_path = cache_dir.join(format!(".{fingerprint}.json.tmp"));
    std::fs::write(&tmp_path, &bytes[..bytes.len() / 3]).unwrap();

    // daemon 2 on the same store: the torn entry must not hit
    let mut child = spawn_daemon(&root, &port_file);
    let addr = read_addr(&port_file, &mut child);
    let (status, doc) = submit(&addr, JOB_VARIANT);
    assert_eq!(
        status,
        201,
        "torn cache entry served as a hit: {}",
        doc.to_json()
    );
    assert!(
        !tmp_path.exists(),
        "startup scan left the partial temp file behind"
    );
    let id2 = doc.get("id").unwrap().as_str().unwrap().to_string();
    assert_ne!(id2, id);
    wait_completed(&addr, &id2);

    // the recomputation is bit-identical to the pre-crash run...
    assert_eq!(result_bits(&addr, &id2), reference_bits);

    // ...and repopulated the cache: a third submission now hits, again
    // with the exact same bits
    let (status, doc) = submit(&addr, JOB_INPUT);
    assert_eq!(status, 200, "{}", doc.to_json());
    assert_eq!(doc.get("cached").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        doc.get("fingerprint").unwrap().as_str().unwrap(),
        fingerprint
    );
    assert_eq!(
        doc.get("total_energy_bits").unwrap().as_str().unwrap(),
        reference_bits
    );

    // graceful exit
    let (status, _) = http(&addr, "POST", "/v1/shutdown", None);
    assert_eq!(status, 202);
    let exit = child.wait().unwrap();
    assert!(exit.success(), "daemon exited {exit}");
    let _ = std::fs::remove_dir_all(&scratch);
}
