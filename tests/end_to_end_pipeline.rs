//! End-to-end pipeline tests: crystal → KS solve → RPA energy, exercising
//! the configuration axes the paper varies (warm start, Galerkin guess,
//! worker count, block policy, KS solver choice).

// Test code: panics are failures, and exact float comparisons assert
// bitwise-reproducible results (DESIGN.md §9).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use mbrpa::prelude::*;
use mbrpa::solver::BlockPolicy;

fn tiny_setup(seed: u64) -> RpaSetup {
    let crystal = SiliconSpec {
        points_per_cell: 5,
        perturbation: 0.03,
        seed,
        ..SiliconSpec::default()
    }
    .build();
    RpaSetup::prepare(
        crystal,
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .unwrap()
}

fn tiny_config() -> RpaConfig {
    RpaConfig {
        n_eig: 20,
        n_omega: 4,
        tol_sternheimer: 1e-3,
        max_filter_iters: 20,
        n_workers: 1,
        seed: 17,
        ..RpaConfig::default()
    }
}

#[test]
fn pipeline_is_deterministic() {
    let setup = tiny_setup(9);
    let config = tiny_config();
    let e1 = setup.run(&config).unwrap().total_energy;
    let e2 = setup.run(&config).unwrap().total_energy;
    assert_eq!(e1, e2, "same seed must give bitwise-identical energies");
}

#[test]
fn warm_start_matches_cold_start_energy() {
    let setup = tiny_setup(9);
    let mut config = tiny_config();
    config.warm_start = true;
    let warm = setup.run(&config).unwrap();
    config.warm_start = false;
    config.max_filter_iters = 40;
    let cold = setup.run(&config).unwrap();
    let rel = ((warm.total_energy - cold.total_energy) / cold.total_energy).abs();
    assert!(
        rel < 2e-2,
        "warm-start energy drifted: {} vs {} ({rel})",
        warm.total_energy,
        cold.total_energy
    );
    // and the warm path does less filtering overall
    let warm_rounds: usize = warm.per_omega.iter().map(|r| r.filter_rounds).sum();
    let cold_rounds: usize = cold.per_omega.iter().map(|r| r.filter_rounds).sum();
    assert!(
        warm_rounds <= cold_rounds,
        "warm {warm_rounds} vs cold {cold_rounds} filter rounds"
    );
}

#[test]
fn galerkin_guess_config_does_not_move_energy() {
    let setup = tiny_setup(11);
    let mut config = tiny_config();
    config.use_galerkin_guess = true;
    let on = setup.run(&config).unwrap().total_energy;
    config.use_galerkin_guess = false;
    let off = setup.run(&config).unwrap().total_energy;
    let rel = ((on - off) / off).abs();
    assert!(rel < 1e-2, "guess flag changed physics: {on} vs {off}");
}

#[test]
fn block_policies_agree_on_energy() {
    let setup = tiny_setup(13);
    let mut config = tiny_config();
    let mut energies = Vec::new();
    for policy in [
        BlockPolicy::Fixed(1),
        BlockPolicy::Fixed(4),
        BlockPolicy::DynamicCostModel,
    ] {
        config.block_policy = policy;
        energies.push(setup.run(&config).unwrap().total_energy);
    }
    for e in &energies[1..] {
        let rel = ((e - energies[0]) / energies[0]).abs();
        assert!(rel < 1e-2, "policy changed physics: {energies:?}");
    }
}

#[test]
fn chefsi_ks_path_matches_dense_ks_path() {
    let crystal = SiliconSpec {
        points_per_cell: 5,
        perturbation: 0.03,
        seed: 9,
        ..SiliconSpec::default()
    }
    .build();
    let dense = RpaSetup::prepare(
        crystal.clone(),
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .unwrap();
    let chefsi = RpaSetup::prepare(
        crystal,
        &PotentialParams::default(),
        2,
        KsSolver::Chefsi(ChefsiOptions {
            tol: 1e-10,
            max_iters: 300,
            ..ChefsiOptions::default()
        }),
    )
    .unwrap();
    let config = tiny_config();
    let e_dense = dense.run(&config).unwrap().total_energy;
    let e_chefsi = chefsi.run(&config).unwrap().total_energy;
    let rel = ((e_dense - e_chefsi) / e_dense).abs();
    assert!(
        rel < 1e-2,
        "KS solver choice changed the RPA energy: {e_dense} vs {e_chefsi}"
    );
}

#[test]
fn vacancy_system_runs_and_differs() {
    let spec = SiliconSpec {
        points_per_cell: 5,
        perturbation: 0.03,
        seed: 5,
        ..SiliconSpec::default()
    };
    let pristine = RpaSetup::prepare(
        spec.build(),
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .unwrap();
    let vacancy = RpaSetup::prepare(
        spec.build_with_vacancy(2),
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .unwrap();
    assert_eq!(vacancy.crystal.atoms.len(), 7);
    assert_eq!(vacancy.ks.n_occupied, 14);
    let config = tiny_config();
    let e8 = pristine.run(&config).unwrap();
    let e7 = vacancy
        .run(&RpaConfig {
            n_eig: 18,
            ..config
        })
        .unwrap();
    assert!(e8.total_energy < 0.0 && e7.total_energy < 0.0);
    assert!(
        (e8.total_energy - e7.total_energy).abs() > 1e-6,
        "removing an atom must change the correlation energy"
    );
}

#[test]
fn dirichlet_boundary_pipeline_runs() {
    // isolated-cluster variant: same pipeline under Dirichlet BCs
    use mbrpa::dft::Atom;
    let grid = Grid3::cubic(7, 0.8, Boundary::Dirichlet);
    let a = 7.0 * 0.8;
    let atoms = vec![
        Atom {
            position: (0.3 * a, 0.3 * a, 0.3 * a),
            valence: 4,
        },
        Atom {
            position: (0.6 * a, 0.6 * a, 0.6 * a),
            valence: 4,
        },
    ];
    let crystal = Crystal {
        grid,
        atoms,
        label: "Si2-cluster".into(),
    };
    let setup = RpaSetup::prepare(
        crystal,
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .unwrap();
    let config = RpaConfig {
        n_eig: 12,
        n_omega: 4,
        tol_sternheimer: 1e-3,
        max_filter_iters: 20,
        n_workers: 1,
        ..RpaConfig::default()
    };
    let result = setup.run(&config).unwrap();
    assert!(result.total_energy < 0.0);
    assert!(result.total_energy.is_finite());
}
