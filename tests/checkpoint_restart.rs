//! Crash/restart behaviour of the checkpointed RPA driver: a run killed
//! after a prefix of the quadrature frequencies must resume and finish
//! with a total energy **bit-for-bit identical** to an uninterrupted run,
//! and a corrupted newest slot must fall back to the older snapshot.

// Test code: panics are failures, and exact float comparisons assert
// bitwise-reproducible results (DESIGN.md §9).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use mbrpa::ckpt::{CheckpointStore, Slot};
use mbrpa::core::{CancelToken, ResumableOutcome, ResumePolicy, RpaRunError};
use mbrpa::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mbrpa-restart-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed) // ord: Relaxed — unique-id counter, no data published
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_setup() -> RpaSetup {
    let crystal = SiliconSpec {
        points_per_cell: 5,
        perturbation: 0.03,
        seed: 11,
        ..SiliconSpec::default()
    }
    .build();
    RpaSetup::prepare(
        crystal,
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .unwrap()
}

fn tiny_config() -> RpaConfig {
    RpaConfig {
        n_eig: 12,
        n_omega: 4,
        tol_eig: vec![4e-3, 2e-3],
        tol_sternheimer: 1e-3,
        max_filter_iters: 20,
        cheb_degree: 2,
        n_workers: 1,
        seed: 3,
        ..RpaConfig::default()
    }
}

/// Run `stop_after` frequencies and exit — the "killed job" stand-in.
fn run_prefix(setup: &RpaSetup, config: &RpaConfig, dir: &Path, stop_after: usize) -> usize {
    let mut store = CheckpointStore::open(dir).unwrap();
    let policy = ResumePolicy {
        every: 1,
        resume: true,
        stop_after: Some(stop_after),
    };
    match setup.run_resumable(config, &mut store, &policy).unwrap() {
        ResumableOutcome::Checkpointed { completed, .. } => completed,
        ResumableOutcome::Complete(_) => panic!("prefix run unexpectedly completed"),
        ResumableOutcome::Cancelled(_) => panic!("no cancel token was attached"),
    }
}

fn resume_to_completion(setup: &RpaSetup, config: &RpaConfig, dir: &Path) -> RpaResult {
    let mut store = CheckpointStore::open(dir).unwrap();
    match setup
        .run_resumable(config, &mut store, &ResumePolicy::default())
        .unwrap()
    {
        ResumableOutcome::Complete(r) => *r,
        ResumableOutcome::Checkpointed { completed, n_omega } => {
            panic!("resume stopped early at {completed}/{n_omega}")
        }
        ResumableOutcome::Cancelled(_) => panic!("no cancel token was attached"),
    }
}

#[test]
fn interrupted_run_resumes_bit_identical() {
    let setup = tiny_setup();
    let config = tiny_config();
    let reference = setup.run(&config).unwrap();

    // "crash" after 2 of 4 frequencies, then resume in a fresh process
    // (fresh store handle) and finish
    let dir = scratch_dir("bitexact");
    let completed = run_prefix(&setup, &config, &dir, 2);
    assert_eq!(completed, 2);
    let resumed = resume_to_completion(&setup, &config, &dir);

    assert_eq!(resumed.n_restored, 2);
    assert_eq!(reference.n_restored, 0);
    assert_eq!(resumed.per_omega.len(), reference.per_omega.len());
    assert_eq!(
        resumed.total_energy.to_bits(),
        reference.total_energy.to_bits(),
        "resumed energy {} differs from uninterrupted energy {}",
        resumed.total_energy,
        reference.total_energy
    );
    assert_eq!(
        resumed.energy_per_atom.to_bits(),
        reference.energy_per_atom.to_bits()
    );
    // every per-frequency record survives the round trip bit-exactly
    for (res, refr) in resumed.per_omega.iter().zip(reference.per_omega.iter()) {
        assert_eq!(res.energy_term.to_bits(), refr.energy_term.to_bits());
        assert_eq!(res.contribution.to_bits(), refr.contribution.to_bits());
        assert_eq!(res.eigenvalues, refr.eigenvalues);
        assert_eq!(res.filter_rounds, refr.filter_rounds);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_frequency_slices_reach_the_same_bits() {
    // the extreme schedule: one frequency per "job", three restarts
    let setup = tiny_setup();
    let config = tiny_config();
    let reference = setup.run(&config).unwrap();

    let dir = scratch_dir("slices");
    assert_eq!(run_prefix(&setup, &config, &dir, 1), 1);
    assert_eq!(run_prefix(&setup, &config, &dir, 1), 2);
    assert_eq!(run_prefix(&setup, &config, &dir, 1), 3);
    let resumed = resume_to_completion(&setup, &config, &dir);

    assert_eq!(resumed.n_restored, 3);
    assert_eq!(
        resumed.total_energy.to_bits(),
        reference.total_energy.to_bits()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_latest_slot_falls_back_to_older_snapshot() {
    let setup = tiny_setup();
    let config = tiny_config();
    let reference = setup.run(&config).unwrap();

    // two one-frequency jobs: slot A holds "1 done", slot B "2 done"
    let dir = scratch_dir("fallback");
    run_prefix(&setup, &config, &dir, 1);
    run_prefix(&setup, &config, &dir, 1);

    let store = CheckpointStore::open(&dir).unwrap();
    let latest = store.load_latest().unwrap().unwrap();
    assert_eq!(latest.snapshot.completed, 2);
    let newest_path = store.slot_path(latest.slot);
    assert_eq!(latest.slot, Slot::B);
    drop(store);

    // flip one byte in the middle of the newest slot — the CRC must
    // reject it and the loader must fall back to the older snapshot
    let mut bytes = std::fs::read(&newest_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest_path, &bytes).unwrap();

    let store = CheckpointStore::open(&dir).unwrap();
    let fallback = store.load_latest().unwrap().unwrap();
    assert!(fallback.recovered_from_fallback);
    assert_eq!(fallback.slot, Slot::A);
    assert_eq!(fallback.snapshot.completed, 1);
    drop(store);

    // resuming recomputes frequencies 2..4 from the older snapshot and
    // still lands on the exact bits
    let resumed = resume_to_completion(&setup, &config, &dir);
    assert_eq!(resumed.n_restored, 1);
    assert_eq!(
        resumed.total_energy.to_bits(),
        reference.total_energy.to_bits()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancel_after_restored_prefix_preserves_state() {
    // deterministic cancellation path: a token already set when the run
    // starts must return the restored prefix untouched, re-persist it,
    // and leave the store resumable to the exact reference bits
    let setup = tiny_setup();
    let config = tiny_config();
    let reference = setup.run(&config).unwrap();
    let dir = scratch_dir("cancelprefix");
    assert_eq!(run_prefix(&setup, &config, &dir, 2), 2);

    let cancel = CancelToken::new();
    cancel.cancel();
    let mut store = CheckpointStore::open(&dir).unwrap();
    let outcome = setup
        .run_resumable_cancellable(&config, &mut store, &ResumePolicy::default(), &cancel)
        .unwrap();
    drop(store);
    match outcome {
        ResumableOutcome::Cancelled(p) => {
            assert_eq!(p.completed, 2);
            assert_eq!(p.n_omega, config.n_omega);
            assert_eq!(p.per_omega.len(), 2);
            // the partial accumulator matches the reference prefix bits
            let prefix: f64 = {
                let mut acc = 0.0;
                for rep in &reference.per_omega[..2] {
                    acc += rep.contribution;
                }
                acc
            };
            assert_eq!(p.accumulated_energy.to_bits(), prefix.to_bits());
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }

    let resumed = resume_to_completion(&setup, &config, &dir);
    assert_eq!(resumed.n_restored, 2);
    assert_eq!(
        resumed.total_energy.to_bits(),
        reference.total_energy.to_bits()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_run_cancel_resumes_bit_identical() {
    // cancel from another thread while the loop runs; whenever the token
    // lands, the journaled state must still complete to the exact bits
    let setup = tiny_setup();
    let config = tiny_config();
    let reference = setup.run(&config).unwrap();
    let dir = scratch_dir("cancelmid");

    let cancel = CancelToken::new();
    let trigger = cancel.clone();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(200));
        trigger.cancel();
    });
    let mut store = CheckpointStore::open(&dir).unwrap();
    // sparse `every` on purpose: the forced snapshot on cancellation must
    // cover boundaries the policy would have skipped
    let policy = ResumePolicy {
        every: 3,
        resume: true,
        stop_after: None,
    };
    let outcome = setup
        .run_resumable_cancellable(&config, &mut store, &policy, &cancel)
        .unwrap();
    killer.join().unwrap();
    drop(store);

    match outcome {
        ResumableOutcome::Cancelled(p) => {
            assert!(p.completed < config.n_omega);
            if p.completed > 0 {
                // the forced snapshot holds exactly the completed prefix
                let store = CheckpointStore::open(&dir).unwrap();
                let snap = store.load_latest().unwrap().unwrap().snapshot;
                assert_eq!(snap.completed, p.completed as u64);
            }
            let resumed = resume_to_completion(&setup, &config, &dir);
            assert_eq!(resumed.n_restored, p.completed);
            assert_eq!(
                resumed.total_energy.to_bits(),
                reference.total_energy.to_bits()
            );
        }
        // the cancel landed after the last frequency: equally valid, and
        // the result must already be the reference
        ResumableOutcome::Complete(r) => {
            assert_eq!(r.total_energy.to_bits(), reference.total_energy.to_bits());
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn config_change_is_rejected_instead_of_mixing_state() {
    let setup = tiny_setup();
    let config = tiny_config();
    let dir = scratch_dir("mismatch");
    run_prefix(&setup, &config, &dir, 1);

    let changed = RpaConfig {
        seed: 4,
        ..tiny_config()
    };
    let mut store = CheckpointStore::open(&dir).unwrap();
    let err = setup
        .run_resumable(&changed, &mut store, &ResumePolicy::default())
        .unwrap_err();
    match err {
        RpaRunError::ConfigMismatch { saved, current } => assert_ne!(saved, current),
        other => panic!("expected ConfigMismatch, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fresh_start_ignores_checkpoints_when_resume_is_off() {
    let setup = tiny_setup();
    let config = tiny_config();
    let dir = scratch_dir("noresume");
    run_prefix(&setup, &config, &dir, 2);

    let mut store = CheckpointStore::open(&dir).unwrap();
    let policy = ResumePolicy {
        every: 1,
        resume: false,
        stop_after: None,
    };
    let result = match setup.run_resumable(&config, &mut store, &policy).unwrap() {
        ResumableOutcome::Complete(r) => *r,
        ResumableOutcome::Checkpointed { .. } => panic!("should have completed"),
        ResumableOutcome::Cancelled(_) => panic!("no cancel token was attached"),
    };
    assert_eq!(result.n_restored, 0);
    assert_eq!(result.per_omega.len(), config.n_omega);
    std::fs::remove_dir_all(&dir).ok();
}
