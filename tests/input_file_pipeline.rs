//! The artifact workflow end-to-end through the library API: parse a
//! `.rpa` input, build the system it describes, run the calculation, and
//! render the report — everything `rpacalc` does, minus the filesystem.

// Test code: panics are failures, and exact float comparisons assert
// bitwise-reproducible results (DESIGN.md §9).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use mbrpa::core::{io::parse_rpa_input, report, KsSolver, RpaSetup};
use mbrpa::prelude::*;

const INPUT: &str = "\
# tiny end-to-end configuration
N_NUCHI_EIGS: 20
N_OMEGA: 4
TOL_EIG: 4e-3 2e-3 5e-4
TOL_STERN_RES: 1e-3
MAXIT_FILTERING: 20
CHEB_DEGREE_RPA: 2
FLAG_PQ_OPERATOR: 0
FLAG_COCGINITIAL: 1
CELLS_Z: 1
POINTS_PER_CELL: 5
MESH: 0.69
PERTURBATION: 0.03
SYSTEM_SEED: 11
NP: 2
BLOCK_POLICY: cost_model
";

#[test]
fn parse_build_run_report() {
    let input = parse_rpa_input(INPUT).expect("parse");
    assert_eq!(input.ignored_keys, vec!["FLAG_PQ_OPERATOR"]);

    let crystal = input.system.build();
    assert_eq!(crystal.label, "Si8");
    assert_eq!(crystal.n_grid(), 125);

    let setup = RpaSetup::prepare(
        crystal,
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .expect("KS stage");
    let result = setup.run(&input.config).expect("RPA stage");

    assert!(result.total_energy < 0.0);
    assert_eq!(result.per_omega.len(), 4);
    for rep in &result.per_omega {
        assert!(rep.converged);
    }

    let doc = report::full_report(&input.config, &result);
    assert!(doc.contains("N_NUCHI_EIGS: 20"));
    assert!(doc.contains("TOL_STERN_RES: 1e-3"));
    assert!(doc.contains("Total RPA correlation energy"));
    assert!(doc.contains("Worker | Sternheimer time"));
}

#[test]
fn vacancy_input_builds_the_smaller_system() {
    let text = format!("{INPUT}VACANCY: 2\nN_NUCHI_EIGS: 18\n");
    let input = parse_rpa_input(&text).expect("parse");
    assert_eq!(input.vacancy, Some(2));
    assert_eq!(input.config.n_eig, 18); // later key wins
    let crystal = input.system.build_with_vacancy(input.vacancy.unwrap());
    assert_eq!(crystal.label, "Si7");
    assert_eq!(crystal.n_occupied(), 14);
}

#[test]
fn orbital_roundtrip_through_the_pipeline() {
    // KS once, save, load, and verify the RPA energy is identical
    let input = parse_rpa_input(INPUT).expect("parse");
    let setup = RpaSetup::prepare(
        input.system.build(),
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .expect("KS stage");

    let mut path = std::env::temp_dir();
    path.push(format!("mbrpa_pipeline_{}.orb", std::process::id()));
    mbrpa::dft::save_orbitals(&path, &setup.ks).expect("save");
    let loaded = mbrpa::dft::load_orbitals(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let mut setup2 = RpaSetup::prepare(
        input.system.build(),
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .expect("KS stage 2");
    setup2.ks = loaded;

    let e1 = setup.run(&input.config).expect("run 1").total_energy;
    let e2 = setup2.run(&input.config).expect("run 2").total_energy;
    assert_eq!(e1, e2, "orbital files must round-trip exactly");
}
