//! Paper-scale smoke tests — `#[ignore]`d by default (minutes to hours);
//! run explicitly with
//!
//! ```text
//! cargo test --release --test paper_scale_smoke -- --ignored
//! ```
//!
//! These drive the exact Table I / Table III configuration of the paper
//! (15³ grid points per cell, 96 `νχ⁰` eigenvalues per atom, ℓ = 8,
//! `τ_Stern = 1e-2`) on the smallest system, Si₈ — the configuration whose
//! artifact run takes ~72 s on 24 Xeon cores.

use mbrpa::prelude::*;

#[test]
#[ignore = "paper-scale configuration: long runtime, run with -- --ignored"]
fn si8_paper_configuration_end_to_end() {
    let crystal = SiliconSpec::paper_scale(1).build();
    assert_eq!(crystal.n_grid(), 3375);
    assert_eq!(crystal.n_occupied(), 16);

    let setup = RpaSetup::prepare(
        crystal,
        &PotentialParams::default(),
        4, // the paper uses high-order stencils
        KsSolver::Chefsi(ChefsiOptions {
            tol: 1e-8,
            ..ChefsiOptions::default()
        }),
    )
    .expect("KS stage at paper scale");

    let config = RpaConfig::for_system(8, 96); // n_eig = 768, Table III
    let result = setup.run(&config).expect("RPA stage at paper scale");

    assert!(result.total_energy < 0.0);
    assert_eq!(result.n_eig, 768);
    assert_eq!(result.n_d, 3375);
    for rep in &result.per_omega {
        assert!(rep.converged, "ω = {} unconverged", rep.omega);
    }
    eprintln!(
        "paper-scale Si8: E_RPA = {:.6} Ha ({:.6} Ha/atom) in {:.1} s",
        result.total_energy,
        result.energy_per_atom,
        result.wall_time.as_secs_f64()
    );
}

#[test]
#[ignore = "paper-scale KS stage only (dense reference vs CheFSI); run with -- --ignored"]
fn si8_paper_ks_stage_chefsi_matches_dense() {
    let crystal = SiliconSpec::paper_scale(1).build();
    let ham = Hamiltonian::new(&crystal, 4, &PotentialParams::default());
    let n_s = crystal.n_occupied();
    let dense = solve_occupied_dense(&ham, n_s, 2).expect("dense at 3375");
    let chefsi = solve_occupied_chefsi(
        &ham,
        n_s,
        &ChefsiOptions {
            tol: 1e-9,
            ..ChefsiOptions::default()
        },
    )
    .expect("chefsi at 3375");
    for j in 0..n_s {
        let d = (dense.energies[j] - chefsi.energies[j]).abs();
        assert!(d < 1e-6, "orbital {j} differs by {d}");
    }
}
