//! CLI contract tests: `rpaserved -validate` exit codes for every
//! document kind (including the new `cache-entry`), and the `rpaclient`
//! example's error reporting — any non-2xx must exit nonzero and
//! surface the server's JSON `error` member (plus the Retry-After
//! header when one is sent) on stderr, not just a bare status code.

#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

/// A result document that satisfies every `validate_result_doc` check
/// (`total_energy_bits` is the exact bit pattern of `total_energy`).
const VALID_RESULT: &str = r#"{"schema":"mbrpa.result/1","id":"job-000001","n_d":125,"n_s":4,"n_atoms":4,"n_omega":2,"n_restored":0,"total_energy":-1.25,"total_energy_bits":"bff4000000000000","energy_per_atom":-0.3125,"wall_s":1.5}"#;

const TINY_INPUT: &str = "\
N_NUCHI_EIGS: 4
N_OMEGA: 2
TOL_EIG: 1e-2
TOL_STERN_RES: 1e-2
MAXIT_FILTERING: 4
CHEB_DEGREE_RPA: 2
BOUNDARY: DIRICHLET
CELLS_Z: 1
POINTS_PER_CELL: 5
MESH: 0.69
PERTURBATION: 0.02
SYSTEM_SEED: 7
NP: 1
";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbrpa-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn validate(kind: &str, path: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rpaserved"))
        .args(["-validate", kind])
        .arg(path)
        .output()
        .unwrap()
}

#[test]
fn validate_mode_exit_codes_cover_every_kind() {
    let dir = scratch("validate");

    let result_path = dir.join("result.json");
    std::fs::write(&result_path, VALID_RESULT).unwrap();
    assert!(validate("result", &result_path).status.success());

    // a valid cache entry embeds a valid result under a 32-hex key
    let entry_path = dir.join("entry.json");
    let entry = format!(
        r#"{{"schema":"mbrpa.cache-entry/1","fingerprint":"000102030405060708090a0b0c0d0e0f","result":{VALID_RESULT}}}"#
    );
    std::fs::write(&entry_path, entry).unwrap();
    let out = validate("cache-entry", &entry_path);
    assert!(
        out.status.success(),
        "valid cache entry rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // malformed fingerprint → nonzero
    let bad_fp = dir.join("bad_fp.json");
    std::fs::write(
        &bad_fp,
        format!(
            r#"{{"schema":"mbrpa.cache-entry/1","fingerprint":"nope","result":{VALID_RESULT}}}"#
        ),
    )
    .unwrap();
    assert!(!validate("cache-entry", &bad_fp).status.success());

    // corrupt embedded result (bits do not match the energy) → nonzero
    let bad_result = dir.join("bad_result.json");
    std::fs::write(
        &bad_result,
        r#"{"schema":"mbrpa.cache-entry/1","fingerprint":"000102030405060708090a0b0c0d0e0f","result":{"schema":"mbrpa.result/1","id":"job-000001","n_d":125,"n_s":4,"n_atoms":4,"n_omega":2,"n_restored":0,"total_energy":-1.25,"total_energy_bits":"0000000000000000","energy_per_atom":-0.3125,"wall_s":1.5}}"#,
    )
    .unwrap();
    assert!(!validate("cache-entry", &bad_result).status.success());

    // a result document is not a cache entry, and vice versa
    assert!(!validate("cache-entry", &result_path).status.success());
    assert!(!validate("result", &entry_path).status.success());

    // unknown kinds and unreadable files → nonzero
    assert!(!validate("nonsense", &result_path).status.success());
    assert!(!validate("result", &dir.join("missing.json"))
        .status
        .success());

    // truncated JSON → nonzero
    let torn = dir.join("torn.json");
    std::fs::write(&torn, &VALID_RESULT[..VALID_RESULT.len() / 2]).unwrap();
    assert!(!validate("result", &torn).status.success());

    let _ = std::fs::remove_dir_all(&dir);
}

fn rpaclient_path() -> PathBuf {
    // examples land next to the test binaries: <target>/<profile>/examples/
    Path::new(env!("CARGO_BIN_EXE_rpaserved"))
        .parent()
        .unwrap()
        .join("examples")
        .join("rpaclient")
}

fn rpaclient(addr: &str, args: &[&str]) -> Output {
    Command::new(rpaclient_path())
        .args(["-addr", addr])
        .args(args)
        .output()
        .unwrap()
}

fn read_addr(port_file: &Path, child: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if !text.trim().is_empty() {
                return text.trim().to_string();
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("rpaserved exited before binding: {status}");
        }
        assert!(Instant::now() < deadline, "daemon never wrote its address");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn rpaclient_surfaces_retry_after_on_backpressure() {
    if !rpaclient_path().is_file() {
        // examples are built by `cargo test` for the default profile;
        // skip quietly under harnesses that prune example targets
        eprintln!("skipping: {} not built", rpaclient_path().display());
        return;
    }

    let dir = scratch("client");
    let input_path = dir.join("tiny.rpa");
    std::fs::write(&input_path, TINY_INPUT).unwrap();
    let port_file = dir.join("addr.txt");

    // zero executors + backlog 1: the second submission always 429s
    let mut child = Command::new(env!("CARGO_BIN_EXE_rpaserved"))
        .arg("-root")
        .arg(dir.join("store"))
        .args(["-addr", "127.0.0.1:0", "-executors", "0", "-backlog", "1"])
        .arg("-port-file")
        .arg(&port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let addr = read_addr(&port_file, &mut child);

    let input = input_path.to_str().unwrap();
    let first = rpaclient(&addr, &["submit", input, "-name", "first"]);
    assert!(
        first.status.success(),
        "first submit failed: {}",
        String::from_utf8_lossy(&first.stderr)
    );

    let second = rpaclient(&addr, &["submit", input, "-name", "second"]);
    assert!(!second.status.success(), "backlog-full submit must fail");
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(stderr.contains("HTTP 429"), "stderr: {stderr}");
    assert!(
        stderr.contains("retry after"),
        "429 must surface Retry-After: {stderr}"
    );
    assert!(
        stderr.contains("backlog"),
        "429 must surface the server's error body, not just the code: {stderr}"
    );

    // the server's diagnosis must reach stderr for every error shape:
    // a 404 names the missing job, a 400 names what was wrong
    let missing = rpaclient(&addr, &["status", "job-999999"]);
    assert!(
        !missing.status.success(),
        "status of a missing job must fail"
    );
    let stderr = String::from_utf8_lossy(&missing.stderr);
    assert!(
        stderr.contains("HTTP 404") && stderr.contains("no such job"),
        "404 must carry the server's error member: {stderr}"
    );

    let garbled_path = dir.join("garbled.rpa");
    std::fs::write(&garbled_path, "NOT_A_KEY: banana\n").unwrap();
    let garbled = rpaclient(&addr, &["submit", garbled_path.to_str().unwrap()]);
    assert!(!garbled.status.success(), "invalid input must be refused");
    let stderr = String::from_utf8_lossy(&garbled.stderr);
    assert!(
        stderr.contains("HTTP 400") && stderr.contains("input"),
        "400 must carry the server's error member: {stderr}"
    );

    // cache subcommands ride the same client
    let stats = rpaclient(&addr, &["cache"]);
    assert!(stats.status.success());
    assert!(String::from_utf8_lossy(&stats.stdout).contains("\"entries\""));
    let flush = rpaclient(&addr, &["cache-flush"]);
    assert!(flush.status.success());
    assert!(String::from_utf8_lossy(&flush.stdout).contains("\"flushed\""));

    let shutdown = rpaclient(&addr, &["shutdown"]);
    assert!(shutdown.status.success());
    let exit = child.wait().unwrap();
    assert!(exit.success(), "daemon exited {exit}");
    let _ = std::fs::remove_dir_all(&dir);
}
