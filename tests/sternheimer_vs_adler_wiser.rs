//! Cross-crate correctness: the perturbation-theory path (Sternheimer
//! solves, Eqs. 4–5 of the paper) must agree with the explicit
//! Adler–Wiser construction (Eq. 2) of χ⁰ — the central identity the whole
//! method rests on.

// Test code: panics are failures, and exact float comparisons assert
// bitwise-reproducible results (DESIGN.md §9).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use mbrpa::core::{dense_chi0, dense_dielectric, full_spectrum};
use mbrpa::prelude::*;

struct Fixture {
    ham: Hamiltonian,
    psi: Mat<f64>,
    energies: Vec<f64>,
    coulomb: CoulombOperator,
    h_dense: Mat<f64>,
    n_occ: usize,
}

fn fixture() -> Fixture {
    let crystal = SiliconSpec {
        points_per_cell: 5,
        perturbation: 0.04,
        seed: 31,
        ..SiliconSpec::default()
    }
    .build();
    let ham = Hamiltonian::new(&crystal, 2, &PotentialParams::default());
    let n_occ = 5;
    let ks = solve_occupied_dense(&ham, n_occ, 0).unwrap();
    let spectral = SpectralLaplacian::new(crystal.grid, 2).unwrap();
    Fixture {
        h_dense: ham.to_dense(),
        psi: ks.occupied_orbitals(),
        energies: ks.occupied_energies().to_vec(),
        ham,
        coulomb: CoulombOperator::new(spectral),
        n_occ,
    }
}

fn dielectric_op<'a>(f: &'a Fixture, omega: f64) -> DielectricOperator<'a> {
    DielectricOperator::new(
        &f.ham,
        &f.psi,
        &f.energies,
        &f.coulomb,
        omega,
        SternheimerSettings {
            tol: 1e-10,
            max_iters: 3000,
            ..SternheimerSettings::default()
        },
        1,
    )
}

#[test]
fn chi0_apply_matches_dense_adler_wiser() {
    let f = fixture();
    let eig = full_spectrum(&f.h_dense).unwrap();
    for omega in [0.1, 1.0, 10.0] {
        let chi0 = dense_chi0(&eig, f.n_occ, omega);
        let op = dielectric_op(&f, omega);
        let n = f.ham.dim();
        let v = Mat::from_fn(n, 2, |i, j| ((i * 13 + 7 * j) % 31) as f64 * 0.05 - 0.7);
        let fast = op.apply_chi0_block(&v);
        let exact = mbrpa::linalg::matmul(&chi0, &v);
        let err = fast.max_abs_diff(&exact) / exact.max_abs().max(1e-300);
        assert!(
            err < 1e-6,
            "ω = {omega}: Sternheimer path differs from Adler–Wiser by {err}"
        );
    }
}

#[test]
fn dielectric_apply_matches_dense_sandwich() {
    let f = fixture();
    let eig = full_spectrum(&f.h_dense).unwrap();
    let omega = 0.7;
    let chi0 = dense_chi0(&eig, f.n_occ, omega);
    let m = dense_dielectric(&chi0, &f.coulomb);
    let op = dielectric_op(&f, omega);
    let n = f.ham.dim();
    let v = Mat::from_fn(n, 1, |i, _| ((i % 19) as f64 - 9.0) * 0.04);
    let fast = op.apply_dielectric_block(&v);
    let exact = mbrpa::linalg::matmul(&m, &v);
    let err = fast.max_abs_diff(&exact) / exact.max_abs().max(1e-300);
    assert!(err < 1e-6, "ν½χ⁰ν½ mismatch: {err}");
}

#[test]
fn galerkin_guess_does_not_change_the_answer() {
    let f = fixture();
    let n = f.ham.dim();
    let v = Mat::from_fn(n, 2, |i, j| ((i + 3 * j) % 11) as f64 * 0.08 - 0.4);
    let with = DielectricOperator::new(
        &f.ham,
        &f.psi,
        &f.energies,
        &f.coulomb,
        0.4,
        SternheimerSettings {
            tol: 1e-10,
            max_iters: 3000,
            use_galerkin_guess: true,
            ..SternheimerSettings::default()
        },
        1,
    );
    let without = DielectricOperator::new(
        &f.ham,
        &f.psi,
        &f.energies,
        &f.coulomb,
        0.4,
        SternheimerSettings {
            tol: 1e-10,
            max_iters: 3000,
            use_galerkin_guess: false,
            ..SternheimerSettings::default()
        },
        1,
    );
    let a = with.apply_chi0_block(&v);
    let b = without.apply_chi0_block(&v);
    assert!(
        a.max_abs_diff(&b) < 1e-6 * a.max_abs().max(1.0),
        "Eq. 13 guess changed χ⁰v by {}",
        a.max_abs_diff(&b)
    );
}

#[test]
fn chi0_decays_with_frequency() {
    // large ω suppresses the response (Eq. 2 denominators grow)
    let f = fixture();
    let n = f.ham.dim();
    let v = Mat::from_fn(n, 1, |i, _| ((i % 7) as f64 - 3.0) * 0.1);
    let lo = dielectric_op(&f, 0.2).apply_chi0_block(&v).fro_norm();
    let hi = dielectric_op(&f, 50.0).apply_chi0_block(&v).fro_norm();
    assert!(hi < 0.05 * lo, "χ⁰ must decay with ω: {hi} vs {lo}");
}
