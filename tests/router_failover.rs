//! Router failover e2e: spawn two real `rpaserved` workers sharing a
//! checkpoint root, front them with a real `rparouter`, submit a job,
//! `kill -9` the worker that owns it mid-run, and assert the surviving
//! worker adopts the job and finishes it with an energy bit-identical
//! to an uninterrupted in-process run of the same input.

#![allow(clippy::unwrap_used)]

use mbrpa::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Several cheap frequencies, so the kill usually lands mid-run and the
/// adopting worker has checkpoints to restore and work left to do.
const JOB_INPUT: &str = "\
N_NUCHI_EIGS: 6
N_OMEGA: 8
TOL_EIG: 1e-2
TOL_STERN_RES: 1e-2
MAXIT_FILTERING: 6
CHEB_DEGREE_RPA: 2
BOUNDARY: DIRICHLET
CELLS_Z: 1
POINTS_PER_CELL: 5
MESH: 0.69
PERTURBATION: 0.02
SYSTEM_SEED: 7
NP: 1
";

fn spawn_worker(root: &Path, ckpt_root: &Path, port_file: &Path) -> Child {
    let _ = std::fs::remove_file(port_file);
    Command::new(env!("CARGO_BIN_EXE_rpaserved"))
        .arg("-root")
        .arg(root)
        .arg("-ckpt-root")
        .arg(ckpt_root)
        .args(["-addr", "127.0.0.1:0", "-executors", "1"])
        .arg("-port-file")
        .arg(port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("rpaserved should start")
}

fn spawn_router(root: &Path, workers: &[&str], port_file: &Path) -> Child {
    let _ = std::fs::remove_file(port_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rparouter"));
    cmd.arg("-root")
        .arg(root)
        .args(["-addr", "127.0.0.1:0"])
        .arg("-port-file")
        .arg(port_file)
        // fast detection so the test does not dawdle: two missed probes
        // 150 ms apart declare a worker dead
        .args(["-poll-ms", "150", "-probe-timeout-ms", "500"])
        .args(["-fail-threshold", "2"]);
    for worker in workers {
        cmd.args(["-worker", worker]);
    }
    cmd.stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("rparouter should start")
}

fn read_addr(port_file: &Path, child: &mut Child, who: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if !text.trim().is_empty() {
                return text.trim().to_string();
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("{who} exited before binding: {status}");
        }
        assert!(Instant::now() < deadline, "{who} never wrote its address");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split(' ').nth(1).unwrap().parse().unwrap();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Pull a `"key": value` scalar out of a flat JSON body without a
/// parser dependency in this integration test.
fn json_member(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = body[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        return Some(stripped[..stripped.find('"')?].to_string());
    }
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    Some(rest[..end].to_string())
}

#[test]
fn worker_loss_hands_the_job_off_bit_for_bit() {
    let scratch = std::env::temp_dir().join(format!("mbrpa-router-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let ckpt_root: PathBuf = scratch.join("ckpt");

    // reference: an uninterrupted in-process run of the same input
    let input = mbrpa::core::parse_rpa_input(JOB_INPUT).unwrap();
    let setup = RpaSetup::prepare(
        input.system.build(),
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 4 },
    )
    .unwrap();
    let reference = setup.run(&input.config).unwrap();
    let reference_bits = format!("{:016x}", reference.total_energy.to_bits());

    // two workers on one shared checkpoint root, one router in front
    let port_a = scratch.join("a.txt");
    let port_b = scratch.join("b.txt");
    let port_r = scratch.join("r.txt");
    let mut worker_a = spawn_worker(&scratch.join("store-a"), &ckpt_root, &port_a);
    let addr_a = read_addr(&port_a, &mut worker_a, "worker a");
    let mut worker_b = spawn_worker(&scratch.join("store-b"), &ckpt_root, &port_b);
    let addr_b = read_addr(&port_b, &mut worker_b, "worker b");
    let mut router = spawn_router(&scratch.join("router"), &[&addr_a, &addr_b], &port_r);
    let router_addr = read_addr(&port_r, &mut router, "rparouter");

    let submit = format!(
        "{{\"schema\":\"mbrpa.job/1\",\"input\":{}}}",
        mbrpa::serve::json::s(JOB_INPUT).to_json()
    );
    let (status, body) = http(&router_addr, "POST", "/v1/jobs", Some(&submit));
    assert_eq!(status, 201, "{body}");
    let rid = json_member(&body, "id").unwrap();
    assert!(
        rid.starts_with("rjob-"),
        "router must re-key the id: {body}"
    );

    // which worker owns the job? (rendezvous picks either)
    let (status, routes) = http(&router_addr, "GET", "/v1/routes", None);
    assert_eq!(status, 200, "{routes}");
    let owner = json_member(&routes, "worker").unwrap();
    assert!(
        owner == addr_a || owner == addr_b,
        "route names an unknown worker: {routes}"
    );

    // wait until at least one frequency is checkpointed, so the adopter
    // has prior state to restore
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut finished_before_kill = false;
    loop {
        let (status, body) = http(&router_addr, "GET", &format!("/v1/jobs/{rid}"), None);
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            json_member(&body, "id").as_deref(),
            Some(rid.as_str()),
            "proxied status must carry the router id: {body}"
        );
        let state = json_member(&body, "state").unwrap();
        if state == "completed" {
            // machine too fast: the job finished before we could kill its
            // owner; the bit-identity assertion below still applies
            finished_before_kill = true;
            break;
        }
        assert_ne!(state, "failed", "{body}");
        let completed: usize = json_member(&body, "completed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if state == "running" && completed >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "no progress before the kill");
        std::thread::sleep(Duration::from_millis(10));
    }

    eprintln!(
        "failover path: {}",
        if finished_before_kill {
            "NOT exercised (job finished first)"
        } else {
            "exercising kill -9 on the owner"
        }
    );
    let mut killed_mid_run = false;
    if !finished_before_kill {
        // SIGKILL the owner: no drain, no checkpoint flush beyond what
        // per-frequency journaling already wrote
        let doomed = if owner == addr_a {
            &mut worker_a
        } else {
            &mut worker_b
        };
        doomed.kill().unwrap();
        doomed.wait().unwrap();
        killed_mid_run = true;

        // the router must detect the loss, hand the job to the survivor,
        // and the survivor must finish it from the shared checkpoints
        let deadline = Instant::now() + Duration::from_secs(180);
        loop {
            let (status, body) = http(&router_addr, "GET", &format!("/v1/jobs/{rid}"), None);
            assert_eq!(status, 200, "{body}");
            let state = json_member(&body, "state").unwrap();
            if state == "completed" {
                break;
            }
            assert_ne!(state, "failed", "{body}");
            assert!(Instant::now() < deadline, "adopted job never finished");
            std::thread::sleep(Duration::from_millis(100));
        }

        // the route must have moved off the dead worker and count the
        // failover
        let (status, routes) = http(&router_addr, "GET", "/v1/routes", None);
        assert_eq!(status, 200, "{routes}");
        let now_on = json_member(&routes, "worker").unwrap();
        assert_ne!(now_on, owner, "route still names the dead worker");
        let failovers: usize = json_member(&routes, "failovers")
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(failovers >= 1, "failover not recorded: {routes}");

        let (status, health) = http(&router_addr, "GET", "/v1/health", None);
        assert_eq!(status, 200, "{health}");
        let counted: usize = json_member(&health, "failovers")
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(counted >= 1, "health must report the failover: {health}");
    }

    // the adopted result must be bit-identical to the uninterrupted run
    let (status, body) = http(&router_addr, "GET", &format!("/v1/jobs/{rid}/result"), None);
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        json_member(&body, "total_energy_bits").as_deref(),
        Some(reference_bits.as_str()),
        "adopted energy differs from the uninterrupted run: {body}"
    );
    if killed_mid_run {
        let n_restored: usize = json_member(&body, "n_restored")
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(
            n_restored >= 1,
            "the adopter restored nothing from the dead worker's checkpoints: {body}"
        );
    }

    // the persisted route table must validate against its schema
    let table = scratch.join("router").join("route-table.json");
    let out = Command::new(env!("CARGO_BIN_EXE_rparouter"))
        .args(["-validate", "route-table"])
        .arg(&table)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "route table invalid: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // graceful exits: router first, then the surviving worker(s)
    let (status, _) = http(&router_addr, "POST", "/v1/shutdown", None);
    assert_eq!(status, 202);
    let exit = router.wait().unwrap();
    assert!(exit.success(), "router exited {exit}");
    for (addr, mut worker) in [(addr_a, worker_a), (addr_b, worker_b)] {
        if let Ok(Some(_)) = worker.try_wait() {
            continue; // the one we killed
        }
        let (status, _) = http(&addr, "POST", "/v1/shutdown", None);
        assert_eq!(status, 202);
        let exit = worker.wait().unwrap();
        assert!(exit.success(), "worker exited {exit}");
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
