//! Trace estimation showdown — §II's three integrand approximations and
//! the §V future-work path, side by side on one system:
//!
//! 1. **subspace iteration** over the lowest `n_eig` eigenvalues (the
//!    paper's evaluated method; truncates the trace),
//! 2. **scalar Lanczos quadrature** (§V: no eigensolve, full spectrum),
//! 3. **block Lanczos quadrature** (§V: "can additionally take advantage
//!    of a block-type algorithm"),
//! 4. the **exact dense trace** as ground truth.
//!
//! Run with `cargo run --release --example trace_estimators`.

use mbrpa::core::{
    block_lanczos_trace, dielectric_spectrum, frequency_quadrature, full_spectrum, lanczos_trace,
    random_orthonormal_block, subspace_iteration, trace_term, BlockTraceOptions,
    TraceEstimatorOptions,
};
use mbrpa::prelude::*;
use std::time::Instant;

fn main() {
    let crystal = SiliconSpec {
        points_per_cell: 6,
        perturbation: 0.02,
        seed: 7,
        ..SiliconSpec::default()
    }
    .build();
    let n_s = crystal.n_occupied();
    let setup = RpaSetup::prepare(
        crystal,
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .expect("setup");
    let psi = setup.ks.occupied_orbitals();
    let energies = setup.ks.occupied_energies().to_vec();
    let omega = frequency_quadrature(8)[4].omega;
    let n_eig = 64;
    println!(
        "Tr[ln(I − νχ⁰) + νχ⁰] at ω = {omega:.3} for {} (n_d = {}, n_s = {n_s})\n",
        setup.crystal.label,
        setup.crystal.n_grid()
    );

    // ground truth
    let eig_h = full_spectrum(&setup.ham.to_dense()).expect("spectrum");
    let spectrum =
        dielectric_spectrum(&eig_h, n_s, omega, &setup.coulomb).expect("dielectric spectrum");
    let exact: f64 = spectrum.iter().map(|&m| (1.0 - m).ln() + m).sum();
    println!("exact dense trace                  : {exact:+.6} Ha");

    let settings = SternheimerSettings {
        tol: 1e-4,
        ..SternheimerSettings::default()
    };
    let op = DielectricOperator::new(
        &setup.ham,
        &psi,
        &energies,
        &setup.coulomb,
        omega,
        settings,
        4,
    );

    // 1. subspace iteration (truncated to n_eig)
    let t0 = Instant::now();
    let v0 = random_orthonormal_block(setup.ham.dim(), n_eig, 5);
    let sub = subspace_iteration(&op, v0, 5e-4, 30, 2).expect("subspace");
    let t_sub = t0.elapsed().as_secs_f64();
    println!(
        "subspace iteration (n_eig = {n_eig})   : {:+.6} Ha   [{t_sub:.1} s, truncated]",
        trace_term(&sub.eigenvalues)
    );

    // 2. scalar Lanczos quadrature
    let f = |mu: f64| {
        let mu = mu.min(0.0);
        (1.0 - mu).ln() + mu
    };
    let t0 = Instant::now();
    let scalar = lanczos_trace(
        &op,
        &f,
        &TraceEstimatorOptions {
            n_probes: 16,
            lanczos_steps: 20,
            seed: 31,
        },
    )
    .expect("scalar lanczos");
    let t_scalar = t0.elapsed().as_secs_f64();
    println!(
        "scalar Lanczos (16 probes)         : {:+.6} ± {:.4} Ha   [{t_scalar:.1} s, full spectrum]",
        scalar.trace, scalar.std_error
    );

    // 3. block Lanczos quadrature
    let t0 = Instant::now();
    let block = block_lanczos_trace(
        &op,
        &f,
        &BlockTraceOptions {
            n_blocks: 4,
            block_size: 4,
            steps: 10,
            seed: 31,
        },
    )
    .expect("block lanczos");
    let t_block = t0.elapsed().as_secs_f64();
    println!(
        "block Lanczos (4 blocks × 4)       : {:+.6} ± {:.4} Ha   [{t_block:.1} s, full spectrum]",
        block.trace, block.std_error
    );

    println!();
    println!("the subspace path truncates to the {n_eig} most-negative eigenvalues; the");
    println!("Lanczos paths are unbiased estimators of the FULL trace (§V) and need no");
    println!("Rayleigh–Ritz eigensolve — the kernel the paper flags as the scaling limit.");
}
