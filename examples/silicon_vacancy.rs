//! The §IV-A chemical-accuracy experiment: the RPA correlation-energy
//! difference between a perturbed Si₈-like crystal and the same crystal
//! with a vacancy (Si₇), checked against the exact direct (Adler–Wiser)
//! reference — our stand-in for the paper's ABINIT comparison, where
//! ΔE agreed to within chemical accuracy (≈ 1.6 mHa/atom).
//!
//! Run with `cargo run --release --example silicon_vacancy`.

use mbrpa::core::{direct_rpa_energy, frequency_quadrature};
use mbrpa::prelude::*;

fn run_both(label: &str, setup: &RpaSetup, config: &RpaConfig) -> (f64, f64) {
    let iterative = setup.run(config).expect("RPA failed");
    let quad = frequency_quadrature(config.n_omega);
    let direct = direct_rpa_energy(
        &setup.ham.to_dense(),
        setup.ks.n_occupied,
        &setup.coulomb,
        &quad,
    )
    .expect("direct reference failed");
    println!(
        "{label}: iterative E = {:+.6} Ha | direct E = {:+.6} Ha | atoms = {}",
        iterative.total_energy,
        direct.total,
        setup.crystal.atoms.len()
    );
    (iterative.total_energy, direct.total)
}

fn main() {
    let spec = SiliconSpec {
        points_per_cell: 6,
        perturbation: 0.03,
        seed: 21,
        ..SiliconSpec::default()
    };

    let pristine = RpaSetup::prepare(
        spec.build(),
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .expect("pristine setup");
    let vacancy = RpaSetup::prepare(
        spec.build_with_vacancy(4),
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 2 },
    )
    .expect("vacancy setup");

    let config = RpaConfig {
        n_eig: 8 * 8,
        n_omega: 8,
        tol_sternheimer: 1e-2,
        n_workers: 2,
        ..RpaConfig::default()
    };
    let config_vac = RpaConfig {
        n_eig: 7 * 8,
        ..config.clone()
    };

    println!("== perturbed crystal vs vacancy: RPA correlation energy ==");
    let (e8_it, e8_dir) = run_both("Si8 (pristine)", &pristine, &config);
    let (e7_it, e7_dir) = run_both("Si7 (vacancy) ", &vacancy, &config_vac);

    // energy difference per atom, iterative vs exact reference
    let de_it = (e8_it / 8.0) - (e7_it / 7.0);
    let de_dir = (e8_dir / 8.0) - (e7_dir / 7.0);
    let err = (de_it - de_dir).abs();
    println!();
    println!("ΔE_RPA per atom (iterative): {de_it:+.6} Ha/atom");
    println!("ΔE_RPA per atom (direct)   : {de_dir:+.6} Ha/atom");
    println!("|difference|               : {err:.2e} Ha/atom");
    println!(
        "chemical accuracy (1.6e-3 Ha/atom): {}",
        if err < 1.6e-3 {
            "ACHIEVED"
        } else {
            "not achieved at this n_eig — raise n_eig"
        }
    );
}
