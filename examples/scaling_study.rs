//! Mini scaling study (the Figure 6 shape): total RPA solve time vs the
//! number of grid points across the replicated-cell ladder, with a
//! log–log least-squares fit of the complexity exponent.
//!
//! Run with `cargo run --release --example scaling_study`.
//! The full-size sweep lives in `crates/bench/src/bin/fig6_complexity.rs`.

use mbrpa::prelude::*;

fn main() {
    let mut rows = Vec::new();
    for cells in 1..=3usize {
        let crystal = SiliconSpec {
            points_per_cell: 6,
            cells_z: cells,
            perturbation: 0.02,
            seed: 5,
            ..SiliconSpec::default()
        }
        .build();
        let label = crystal.label.clone();
        let atoms = crystal.atoms.len();
        let n_d = crystal.n_grid();
        let setup = RpaSetup::prepare(
            crystal,
            &PotentialParams::default(),
            2,
            KsSolver::Chefsi(ChefsiOptions {
                tol: 1e-7,
                ..ChefsiOptions::default()
            }),
        )
        .expect("setup");
        let config = RpaConfig {
            n_eig: atoms * 8,
            n_omega: 8,
            n_workers: 4,
            ..RpaConfig::default()
        };
        let result = setup.run(&config).expect("rpa");
        println!(
            "{label:>5}: n_d = {n_d:>5}  n_s = {:>3}  n_eig = {:>4}  E = {:+.5} Ha  t = {:>7.2} s",
            result.n_s,
            result.n_eig,
            result.total_energy,
            result.wall_time.as_secs_f64()
        );
        rows.push((n_d as f64, result.wall_time.as_secs_f64()));
    }

    // least-squares slope of log t vs log n_d
    let n = rows.len() as f64;
    let (sx, sy, sxx, sxy) = rows.iter().fold((0.0, 0.0, 0.0, 0.0), |acc, &(x, y)| {
        let (lx, ly) = (x.ln(), y.ln());
        (acc.0 + lx, acc.1 + ly, acc.2 + lx * lx, acc.3 + lx * ly)
    });
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    println!();
    println!("fitted complexity: time ~ n_d^{slope:.2}");
    println!("(the paper reports O(n_d^2.95) on 24 cores and O(n_d^2.87) on 192 cores)");
}
