//! Quickstart: compute the RPA correlation energy of a small perturbed
//! silicon-like crystal and print the paper-style output report.
//!
//! Run with `cargo run --release --example quickstart`.

use mbrpa::core::report;
use mbrpa::prelude::*;

fn main() {
    // An 8-atom diamond-cubic cell on a 7³ grid (laptop-friendly scale;
    // raise `points_per_cell` toward the paper's 15 for production runs).
    let crystal = SiliconSpec {
        points_per_cell: 7,
        perturbation: 0.02,
        seed: 7,
        ..SiliconSpec::default()
    }
    .build();
    println!(
        "system: {} — {} atoms, n_d = {}, n_s = {}",
        crystal.label,
        crystal.atoms.len(),
        crystal.n_grid(),
        crystal.n_occupied()
    );

    // Prior KS-DFT stage: model pseudopotential + occupied orbitals.
    let setup = RpaSetup::prepare(
        crystal,
        &PotentialParams::default(),
        2, // stencil radius (the paper uses high-order stencils; radius 2 = O(h⁴))
        KsSolver::Dense { extra: 4 },
    )
    .expect("KS stage failed");
    if let Some(gap) = setup.ks.gap() {
        println!("KS gap estimate: {gap:.4} Ha");
    }

    // RPA stage: Table I parameters at reduced n_eig per atom.
    let config = RpaConfig {
        n_eig: 8 * 12, // 12 eigenvalues of νχ⁰ per atom
        n_omega: 8,
        tol_sternheimer: 1e-2,
        n_workers: 4,
        ..RpaConfig::default()
    };

    let result = setup.run(&config).expect("RPA stage failed");
    print!("{}", report::full_report(&config, &result));

    println!();
    println!(
        "E_RPA = {:.6} Ha ({:.6} Ha/atom), computed in {:.2} s",
        result.total_energy,
        result.energy_per_atom,
        result.wall_time.as_secs_f64()
    );
}
