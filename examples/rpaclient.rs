//! `rpaclient` — a minimal command-line client for `rpaserved`.
//!
//! ```text
//! cargo run --release --example rpaclient -- submit inputs/cluster_smoke.rpa -name smoke
//! cargo run --release --example rpaclient -- wait job-000001
//! cargo run --release --example rpaclient -- result job-000001
//! ```
//!
//! Hand-rolled HTTP/1.1 over `std::net`, mirroring the daemon's own
//! zero-dependency server. Every command prints the response body (JSON
//! for everything but `report`) to stdout and exits nonzero on any
//! non-2xx status, surfacing the server's JSON `error` member — and the
//! `Retry-After` header when one is sent (429 backpressure, 503 drains)
//! — on stderr so scripts see why a request was refused and when to
//! resubmit.

use mbrpa::serve::json::{self, obj, s, u, JsonValue};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!("usage: rpaclient [-addr <ip:port>] <command> [args]");
    eprintln!("  submit <file.rpa> [-name L] [-priority 0..9]   submit a job");
    eprintln!("  status <id>       show queue state and progress");
    eprintln!("  result <id>       fetch the result document");
    eprintln!("  profile <id>      fetch the telemetry profile");
    eprintln!("  report <id>       fetch the human-readable report");
    eprintln!("  cancel <id>       request cancellation");
    eprintln!("  wait <id>         poll until the job reaches a terminal state");
    eprintln!("  list              list all jobs");
    eprintln!("  health            daemon liveness and queue occupancy");
    eprintln!("  cache             result-cache statistics");
    eprintln!("  cache-flush       drop every cached result");
    eprintln!("  shutdown          request a graceful drain");
    eprintln!("default address: 127.0.0.1:8377");
    ExitCode::FAILURE
}

/// A parsed HTTP reply: status code, lowercased header names, body.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

/// One HTTP exchange.
fn exchange(addr: &str, method: &str, path: &str, body: Option<&str>) -> Result<Reply, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{payload}",
        payload.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send failed: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("receive failed: {e}"))?;
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed response: {raw:.60}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1) // the status line
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Ok(Reply {
        status,
        headers,
        body,
    })
}

/// A response header value, by lowercase name.
fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Run an exchange, print the body, and translate the status to an exit
/// code.
fn run(addr: &str, method: &str, path: &str, body: Option<&str>) -> ExitCode {
    match exchange(addr, method, path, body) {
        Ok(Reply {
            status,
            headers,
            body,
        }) => {
            println!("{body}");
            if (200..300).contains(&status) {
                ExitCode::SUCCESS
            } else {
                // surface the server's own diagnosis, not just the code:
                // error replies carry {"error": "..."} in the body
                let reason = json::parse(&body).ok().and_then(|doc| {
                    doc.get("error")
                        .and_then(JsonValue::as_str)
                        .map(String::from)
                });
                match reason {
                    Some(reason) => eprintln!("HTTP {status}: {reason}"),
                    None => eprintln!("HTTP {status}"),
                }
                // backpressure, not failure: tell scripts when to retry
                // (any status may carry the header — 429 and 503 do)
                if let Some(seconds) = header(&headers, "retry-after") {
                    eprintln!("retry after {seconds} s");
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn submit(addr: &str, args: &[String]) -> ExitCode {
    let Some(file) = args.first() else {
        eprintln!("submit needs a .rpa file");
        return usage();
    };
    let input = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut name: Option<String> = None;
    let mut priority: Option<usize> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-name" => name = it.next().cloned(),
            "-priority" => priority = it.next().and_then(|v| v.parse().ok()),
            other => {
                eprintln!("unknown submit option `{other}`");
                return usage();
            }
        }
    }
    let mut pairs = vec![("schema", s("mbrpa.job/1")), ("input", s(&input))];
    if let Some(name) = &name {
        pairs.push(("name", s(name)));
    }
    if let Some(priority) = priority {
        pairs.push(("priority", u(priority)));
    }
    let body = obj(pairs).to_json();
    run(addr, "POST", "/v1/jobs", Some(&body))
}

fn wait(addr: &str, id: &str) -> ExitCode {
    loop {
        let Reply { status, body, .. } =
            match exchange(addr, "GET", &format!("/v1/jobs/{id}"), None) {
                Ok(reply) => reply,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
        if status != 200 {
            eprintln!("HTTP {status}: {body}");
            return ExitCode::FAILURE;
        }
        let doc = match json::parse(&body) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("malformed status body: {e}");
                return ExitCode::FAILURE;
            }
        };
        let state = doc
            .get("state")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown")
            .to_string();
        match state.as_str() {
            "completed" => {
                println!("{body}");
                return ExitCode::SUCCESS;
            }
            "failed" | "cancelled" => {
                println!("{body}");
                eprintln!("job ended as {state}");
                return ExitCode::FAILURE;
            }
            _ => {
                let progress = match (
                    doc.get("completed").and_then(JsonValue::as_u64),
                    doc.get("n_omega").and_then(JsonValue::as_u64),
                ) {
                    (Some(done), Some(total)) => format!(" ({done}/{total} frequencies)"),
                    _ => String::new(),
                };
                eprintln!("{id}: {state}{progress}");
                std::thread::sleep(Duration::from_millis(500));
            }
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:8377".to_string();
    if args.first().map(String::as_str) == Some("-addr") {
        if args.len() < 2 {
            eprintln!("-addr needs an address");
            return usage();
        }
        addr = args[1].clone();
        args.drain(..2);
    }
    let Some(command) = args.first().cloned() else {
        return usage();
    };
    let rest = &args[1..];
    let id_path = |suffix: &str| -> Option<String> {
        rest.first().map(|id| format!("/v1/jobs/{id}{suffix}"))
    };
    match command.as_str() {
        "submit" => submit(&addr, rest),
        "status" => match id_path("") {
            Some(path) => run(&addr, "GET", &path, None),
            None => usage(),
        },
        "result" => match id_path("/result") {
            Some(path) => run(&addr, "GET", &path, None),
            None => usage(),
        },
        "profile" => match id_path("/profile") {
            Some(path) => run(&addr, "GET", &path, None),
            None => usage(),
        },
        "report" => match id_path("/report") {
            Some(path) => run(&addr, "GET", &path, None),
            None => usage(),
        },
        "cancel" => match id_path("/cancel") {
            Some(path) => run(&addr, "POST", &path, None),
            None => usage(),
        },
        "wait" => match rest.first() {
            Some(id) => wait(&addr, id),
            None => usage(),
        },
        "list" => run(&addr, "GET", "/v1/jobs", None),
        "health" => run(&addr, "GET", "/v1/health", None),
        "cache" => run(&addr, "GET", "/v1/cache", None),
        "cache-flush" => run(&addr, "POST", "/v1/cache/flush", None),
        "shutdown" => run(&addr, "POST", "/v1/shutdown", None),
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
