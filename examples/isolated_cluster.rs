//! Isolated-cluster RPA under Dirichlet boundary conditions.
//!
//! The paper motivates real-space approaches partly because they are "more
//! amenable than reciprocal space approaches to Dirichlet boundary
//! conditions (for simulating molecules, wires, and surfaces)" — something
//! plane-wave RPA codes cannot do without supercell tricks. This example
//! runs the identical pipeline on an isolated tetrahedral cluster: only
//! the boundary condition changes; every operator (stencil, ν, ν½,
//! Sternheimer solves) adapts automatically.
//!
//! Run with `cargo run --release --example isolated_cluster`.

use mbrpa::dft::Atom;
use mbrpa::prelude::*;

fn main() {
    // A tetrahedral 4-atom cluster centred in a hard-wall box.
    let n = 11;
    let h = 0.8;
    let grid = Grid3::cubic(n, h, Boundary::Dirichlet);
    let box_len = (n + 1) as f64 * h;
    let c = 0.5 * box_len;
    let d = 0.16 * box_len;
    let atoms = vec![
        Atom {
            position: (c + d, c + d, c + d),
            valence: 4,
        },
        Atom {
            position: (c - d, c - d, c + d),
            valence: 4,
        },
        Atom {
            position: (c - d, c + d, c - d),
            valence: 4,
        },
        Atom {
            position: (c + d, c - d, c - d),
            valence: 4,
        },
    ];
    let crystal = Crystal {
        grid,
        atoms,
        label: "Si4-tetrahedron".into(),
    };
    println!(
        "system: {} — {} atoms in a {:.1}³ Bohr box, n_d = {}, n_s = {}",
        crystal.label,
        crystal.atoms.len(),
        box_len,
        crystal.n_grid(),
        crystal.n_occupied()
    );

    let setup = RpaSetup::prepare(
        crystal,
        &PotentialParams::default(),
        2,
        KsSolver::Chefsi(ChefsiOptions {
            tol: 1e-8,
            ..ChefsiOptions::default()
        }),
    )
    .expect("KS stage");
    println!(
        "occupied energies: {:?}",
        setup
            .ks
            .occupied_energies()
            .iter()
            .map(|e| (e * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    );

    let config = RpaConfig {
        n_eig: 4 * 12,
        n_omega: 8,
        n_workers: 4,
        ..RpaConfig::default()
    };
    let result = setup.run(&config).expect("RPA stage");

    println!();
    for rep in &result.per_omega {
        println!(
            "omega {:>7.3}: E_k = {:>10.5} Ha, ncheb = {}, err = {:.1e}",
            rep.omega, rep.energy_term, rep.filter_rounds, rep.error
        );
    }
    println!();
    println!(
        "E_RPA = {:.6} Ha ({:.6} Ha/atom) in {:.2} s — Dirichlet BCs, no supercell needed",
        result.total_energy,
        result.energy_per_atom,
        result.wall_time.as_secs_f64()
    );
}
