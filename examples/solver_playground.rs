//! Solver playground: block COCG vs GMRES on Sternheimer systems of
//! varying difficulty — the §III-B story in one binary.
//!
//! Builds real Sternheimer matrices `H − λ_j I + iω_k I` from a model
//! crystal and reports iteration counts and matvec counts for
//! (a) the easy `(j=1, k=1)` pair, (b) the hard `(j=n_s, k=ℓ)` pair,
//! (c) block sizes 1/2/4, and (d) the GMRES baseline.
//!
//! Run with `cargo run --release --example solver_playground`.

use mbrpa::core::frequency_quadrature;
use mbrpa::dft::SternheimerLinOp;
use mbrpa::prelude::*;
use mbrpa::solver::true_relative_residual;

fn random_rhs(n: usize, s: usize, seed: u64) -> Mat<C64> {
    let mut state = seed | 1;
    Mat::from_fn(n, s, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let re = (state as f64 / u64::MAX as f64) - 0.5;
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        C64::new(re, (state as f64 / u64::MAX as f64) - 0.5)
    })
}

fn main() {
    let crystal = SiliconSpec {
        points_per_cell: 7,
        perturbation: 0.02,
        seed: 3,
        ..SiliconSpec::default()
    }
    .build();
    let n_s = crystal.n_occupied();
    let ham = Hamiltonian::new(&crystal, 2, &PotentialParams::default());
    let ks = solve_occupied_dense(&ham, n_s, 0).expect("KS solve");
    let quad = frequency_quadrature(8);
    let n = ham.dim();

    println!("system: {} (n_d = {n}, n_s = {n_s})", crystal.label);
    println!();
    println!(
        "pair           ω        spectrum-shift λ_j   solver      s   iters  matvecs  residual"
    );

    let cases = [
        ("(1,1) easy ", ks.energies[0], quad[0].omega),
        ("(ns,ℓ) hard", ks.energies[n_s - 1], quad[7].omega),
    ];
    for (label, lambda, omega) in cases {
        let stern = SternheimerLinOp::new(SternheimerOperator::new(&ham, lambda, omega));
        for s in [1usize, 2, 4] {
            let b = random_rhs(n, s, 42);
            let opts = CocgOptions {
                tol: 1e-6,
                max_iters: 3000,
                ..CocgOptions::default()
            };
            let (x, rep) = block_cocg(&stern, &b, None, &opts);
            let res = true_relative_residual(&stern, &b, &x);
            println!(
                "{label}  {omega:>7.3}  {lambda:>18.4}   block COCG  {s}  {:>6}  {:>7}  {res:.1e}",
                rep.iterations, rep.matvecs
            );
        }
        // GMRES baseline, one right-hand side
        let b = random_rhs(n, 1, 42);
        let (xg, repg) = gmres(
            &stern,
            b.col(0),
            None,
            &GmresOptions {
                tol: 1e-6,
                restart: 80,
                max_matvecs: 20_000,
                track_residuals: false,
            },
        );
        let xm = Mat::col_vector(xg);
        let res = true_relative_residual(&stern, &b, &xm);
        println!(
            "{label}  {omega:>7.3}  {lambda:>18.4}   GMRES(80)   1  {:>6}  {:>7}  {res:.1e}",
            repg.iterations, repg.matvecs
        );
    }

    println!();
    println!("takeaways (cf. §III-B): the hard pair needs far more iterations; block");
    println!("sizes s > 1 cut the iteration count; COCG keeps O(1) memory while GMRES");
    println!("grows its basis with every iteration.");
}
