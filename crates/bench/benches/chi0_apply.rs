//! The headline kernel: one `ν½χ⁰ν½` block application (Algorithm 7) at an
//! easy and a hard quadrature frequency — the dominant cost of the whole
//! calculation (Figure 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbrpa_bench::prepare_ladder_system;
use mbrpa_core::{frequency_quadrature, DielectricOperator, SternheimerSettings};
use mbrpa_linalg::Mat;
use std::hint::black_box;

fn bench_chi0(c: &mut Criterion) {
    let setup = prepare_ladder_system(1, 6);
    let psi = setup.ks.occupied_orbitals();
    let energies = setup.ks.occupied_energies().to_vec();
    let n = setup.ham.dim();
    let quad = frequency_quadrature(8);
    let v = Mat::from_fn(n, 8, |i, j| ((i * 13 + j * 5) % 89) as f64 * 1e-2 - 0.4);

    let mut group = c.benchmark_group("dielectric_apply");
    group.sample_size(10);
    for (label, omega) in [
        ("omega_large", quad[0].omega),
        ("omega_small", quad[7].omega),
    ] {
        let op = DielectricOperator::new(
            &setup.ham,
            &psi,
            &energies,
            &setup.coulomb,
            omega,
            SternheimerSettings::default(),
            1,
        );
        group.bench_with_input(BenchmarkId::new(label, 8), &8, |b, _| {
            b.iter(|| black_box(op.apply_dielectric_block(black_box(&v))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chi0);
criterion_main!(benches);
