//! Ablation (§III-F): subspace iteration at a mid-ladder frequency warm-
//! started from the neighbouring frequency's converged eigenvectors vs
//! cold-started from a random block.

use criterion::{criterion_group, criterion_main, Criterion};
use mbrpa_bench::prepare_ladder_system;
use mbrpa_core::{
    frequency_quadrature, random_orthonormal_block, subspace_iteration, DielectricOperator,
    SternheimerSettings,
};
use std::hint::black_box;

fn bench_warm_start(c: &mut Criterion) {
    let setup = prepare_ladder_system(1, 6);
    let psi = setup.ks.occupied_orbitals();
    let energies = setup.ks.occupied_energies().to_vec();
    let n = setup.ham.dim();
    let n_eig = 24;
    let quad = frequency_quadrature(8);
    let settings = SternheimerSettings::default();

    // converge at ω₄ once; benchmark solving ω₅ from either start
    let op_prev = DielectricOperator::new(
        &setup.ham,
        &psi,
        &energies,
        &setup.coulomb,
        quad[3].omega,
        settings,
        1,
    );
    let v_rand = random_orthonormal_block(n, n_eig, 11);
    let warm = subspace_iteration(&op_prev, v_rand.clone(), 5e-4, 30, 2)
        .expect("previous-frequency solve")
        .vectors;

    let mut group = c.benchmark_group("ablation_warm_start");
    group.sample_size(10);
    for (label, v0) in [("warm_from_prev_omega", &warm), ("cold_random", &v_rand)] {
        let op = DielectricOperator::new(
            &setup.ham,
            &psi,
            &energies,
            &setup.coulomb,
            quad[4].omega,
            settings,
            1,
        );
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(subspace_iteration(&op, v0.clone(), 5e-4, 30, 2).expect("subspace solve"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_warm_start);
criterion_main!(benches);
