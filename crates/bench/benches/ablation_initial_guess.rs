//! Ablation (§III-F, Eq. 13): χ⁰ application with and without the
//! Galerkin initial guess, at the hard smallest frequency where the guess
//! deflates the problematic negative-real-part eigendirections.

use criterion::{criterion_group, criterion_main, Criterion};
use mbrpa_bench::prepare_ladder_system;
use mbrpa_core::{frequency_quadrature, DielectricOperator, SternheimerSettings};
use mbrpa_linalg::Mat;
use std::hint::black_box;

fn bench_guess(c: &mut Criterion) {
    let setup = prepare_ladder_system(1, 6);
    let psi = setup.ks.occupied_orbitals();
    let energies = setup.ks.occupied_energies().to_vec();
    let n = setup.ham.dim();
    let omega = frequency_quadrature(8)[7].omega; // hardest frequency
    let v = Mat::from_fn(n, 4, |i, j| ((i * 11 + j * 3) % 71) as f64 * 1e-2 - 0.35);

    let mut group = c.benchmark_group("ablation_galerkin_guess");
    group.sample_size(10);
    for (label, use_guess) in [("with_eq13_guess", true), ("zero_guess", false)] {
        let op = DielectricOperator::new(
            &setup.ham,
            &psi,
            &energies,
            &setup.coulomb,
            omega,
            SternheimerSettings {
                use_galerkin_guess: use_guess,
                ..SternheimerSettings::default()
            },
            1,
        );
        group.bench_function(label, |b| {
            b.iter(|| black_box(op.apply_chi0_block(black_box(&v))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_guess);
criterion_main!(benches);
