//! §III-B bench: block COCG across block sizes on real Sternheimer
//! matrices of both difficulty extremes — the `(1,1)` easy pair and the
//! `(n_s, ℓ)` hard pair of Eq. 9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbrpa_bench::prepare_ladder_system;
use mbrpa_core::frequency_quadrature;
use mbrpa_dft::{SternheimerLinOp, SternheimerOperator};
use mbrpa_linalg::{Mat, C64};
use mbrpa_solver::{block_cocg, CocgOptions};
use std::hint::black_box;

fn rhs(n: usize, s: usize, seed: u64) -> Mat<C64> {
    let mut state = seed | 1;
    Mat::from_fn(n, s, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let re = (state as f64 / u64::MAX as f64) - 0.5;
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        C64::new(re, (state as f64 / u64::MAX as f64) - 0.5)
    })
}

fn bench_cocg(c: &mut Criterion) {
    let setup = prepare_ladder_system(1, 6);
    let n = setup.ham.dim();
    let n_s = setup.ks.n_occupied;
    let quad = frequency_quadrature(8);

    let cases = [
        ("easy_1_1", setup.ks.energies[0], quad[0].omega),
        ("hard_ns_l", setup.ks.energies[n_s - 1], quad[7].omega),
    ];
    let opts = CocgOptions {
        tol: 1e-2, // the paper's production tolerance
        max_iters: 2000,
        ..CocgOptions::default()
    };

    let mut group = c.benchmark_group("block_cocg");
    group.sample_size(15);
    for (label, lambda, omega) in cases {
        let op = SternheimerLinOp::new(SternheimerOperator::new(&setup.ham, lambda, omega));
        for s in [1usize, 2, 4, 8] {
            let b = rhs(n, s, 99);
            group.bench_with_input(BenchmarkId::new(label, s), &s, |bch, _| {
                bch.iter(|| black_box(block_cocg(&op, black_box(&b), None, &opts)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cocg);
criterion_main!(benches);
