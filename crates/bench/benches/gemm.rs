//! Dense kernel bench: the tall-and-skinny GEMM shapes dominating the
//! Rayleigh–Ritz stage (`V·Q` updates and `VᵀW` Gram products), the
//! paper's "matmult" kernel of Figure 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbrpa_linalg::{matmul, matmul_tn, Mat};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("tall_skinny_gemm");
    group.sample_size(15);
    for &(n_d, n_eig) in &[(3375usize, 64usize), (6750, 128)] {
        let v = Mat::from_fn(n_d, n_eig, |i, j| ((i + j * 7) % 101) as f64 * 1e-2);
        let q = Mat::from_fn(n_eig, n_eig, |i, j| ((i * 3 + j) % 53) as f64 * 1e-2);
        group.bench_with_input(
            BenchmarkId::new("rotate_VQ", format!("{n_d}x{n_eig}")),
            &n_d,
            |b, _| b.iter(|| black_box(matmul(black_box(&v), black_box(&q)))),
        );
        group.bench_with_input(
            BenchmarkId::new("gram_VtV", format!("{n_d}x{n_eig}")),
            &n_d,
            |b, _| b.iter(|| black_box(matmul_tn(black_box(&v), black_box(&v)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
