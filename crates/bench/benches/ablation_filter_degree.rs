//! Ablation (§III-A, Table I): Chebyshev filter degree 0 (plain subspace
//! iteration) vs the paper's degree 2 vs higher degrees, measured as the
//! wall time to converge one cold-started frequency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbrpa_bench::prepare_ladder_system;
use mbrpa_core::{
    frequency_quadrature, random_orthonormal_block, subspace_iteration, DielectricOperator,
    SternheimerSettings,
};
use std::hint::black_box;

fn bench_filter_degree(c: &mut Criterion) {
    let setup = prepare_ladder_system(1, 6);
    let psi = setup.ks.occupied_orbitals();
    let energies = setup.ks.occupied_energies().to_vec();
    let n = setup.ham.dim();
    let n_eig = 24;
    let omega = frequency_quadrature(8)[3].omega;
    let v0 = random_orthonormal_block(n, n_eig, 21);

    let mut group = c.benchmark_group("ablation_filter_degree");
    group.sample_size(10);
    for degree in [1usize, 2, 3] {
        let op = DielectricOperator::new(
            &setup.ham,
            &psi,
            &energies,
            &setup.coulomb,
            omega,
            SternheimerSettings::default(),
            1,
        );
        group.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, &deg| {
            b.iter(|| {
                black_box(
                    subspace_iteration(&op, v0.clone(), 4e-3, 40, deg).expect("subspace solve"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filter_degree);
criterion_main!(benches);
