//! §III-C bench: stencil application one-vector-at-a-time vs
//! simultaneously across `s` vectors. The paper's arithmetic-intensity
//! analysis predicts the one-at-a-time variant wins because the fast
//! memory budget per vector shrinks by `1/s` in the simultaneous layout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbrpa_grid::{Boundary, Grid3, Laplacian};
use mbrpa_linalg::Mat;
use std::hint::black_box;

fn bench_stencil(c: &mut Criterion) {
    let g = Grid3::cubic(24, 0.69, Boundary::Periodic);
    let lap = Laplacian::new(g, 4); // high-order stencil, (6·4+1) points
    let n = g.len();

    let mut group = c.benchmark_group("stencil_layouts");
    group.sample_size(20);
    for s in [1usize, 4, 8] {
        let v = Mat::from_fn(n, s, |i, j| ((i * 31 + j * 17) % 997) as f64 * 1e-3);
        let mut out = Mat::zeros(n, s);
        group.bench_with_input(BenchmarkId::new("one_vector_at_a_time", s), &s, |b, _| {
            b.iter(|| {
                lap.apply_block(black_box(&v), &mut out);
                black_box(&out);
            })
        });
        group.bench_with_input(BenchmarkId::new("simultaneous", s), &s, |b, _| {
            b.iter(|| {
                lap.apply_block_simultaneous(black_box(&v), &mut out);
                black_box(&out);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stencil);
criterion_main!(benches);
