//! §III-B baseline bench: short-term-recurrence COCG vs long-recurrence
//! restarted GMRES on a hard Sternheimer system. COCG's per-iteration cost
//! is constant; GMRES orthogonalizes against its whole basis.

use criterion::{criterion_group, criterion_main, Criterion};
use mbrpa_bench::prepare_ladder_system;
use mbrpa_core::frequency_quadrature;
use mbrpa_dft::{SternheimerLinOp, SternheimerOperator};
use mbrpa_linalg::C64;
use mbrpa_solver::{cocg, gmres, CocgOptions, GmresOptions};
use std::hint::black_box;

fn bench_baseline(c: &mut Criterion) {
    let setup = prepare_ladder_system(1, 6);
    let n = setup.ham.dim();
    let n_s = setup.ks.n_occupied;
    let quad = frequency_quadrature(8);
    let op = SternheimerLinOp::new(SternheimerOperator::new(
        &setup.ham,
        setup.ks.energies[n_s - 1],
        quad[7].omega,
    ));
    let b: Vec<C64> = (0..n)
        .map(|i| {
            C64::new(
                ((i * 29) % 83) as f64 * 1e-2 - 0.4,
                ((i * 7) % 31) as f64 * 1e-2,
            )
        })
        .collect();

    let mut group = c.benchmark_group("solver_baselines_hard_system");
    group.sample_size(12);
    group.bench_function("cocg", |bch| {
        let opts = CocgOptions {
            tol: 1e-4,
            max_iters: 5000,
            ..CocgOptions::default()
        };
        bch.iter(|| black_box(cocg(&op, black_box(&b), None, &opts)))
    });
    group.bench_function("gmres_restart40", |bch| {
        let opts = GmresOptions {
            tol: 1e-4,
            restart: 40,
            max_matvecs: 20_000,
            track_residuals: false,
        };
        bch.iter(|| black_box(gmres(&op, black_box(&b), None, &opts)))
    });
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
