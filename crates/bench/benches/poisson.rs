//! Grid kernel bench: spectral Poisson solves and `ν½` applications via
//! the Kronecker eigenbasis — the machinery behind `ν = −4π(∇²)⁻¹` whose
//! cheapness the paper relies on (§III-A: "the multiplications by ν½
//! contribute only a small fraction of the overall time").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbrpa_grid::{Boundary, CoulombOperator, Grid3, SpectralLaplacian};
use std::hint::black_box;

fn bench_poisson(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_laplacian");
    group.sample_size(20);
    for &npts in &[15usize, 24] {
        let g = Grid3::cubic(npts, 0.69, Boundary::Periodic);
        let spec = SpectralLaplacian::new(g, 4).unwrap();
        let nu = CoulombOperator::new(spec.clone());
        let n = g.len();
        let v: Vec<f64> = (0..n)
            .map(|i| ((i * 37) % 211) as f64 * 1e-2 - 1.0)
            .collect();
        let mut out = vec![0.0; n];
        group.bench_with_input(BenchmarkId::new("poisson_solve", npts), &npts, |b, _| {
            b.iter(|| {
                spec.solve_poisson(black_box(&v), &mut out);
                black_box(&out);
            })
        });
        group.bench_with_input(BenchmarkId::new("nu_sqrt_apply", npts), &npts, |b, _| {
            b.iter(|| {
                nu.apply_nu_sqrt(black_box(&v), &mut out);
                black_box(&out);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_poisson);
criterion_main!(benches);
