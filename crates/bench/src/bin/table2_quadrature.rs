//! Regenerates **Table II** of the paper: the 8 Gauss–Legendre quadrature
//! points and weights on `(0, ∞)`.
//!
//! This table is reproduced *exactly* (it is pure quadrature mathematics,
//! independent of any substitution).

use mbrpa_bench::print_table;
use mbrpa_core::frequency_quadrature;

fn main() {
    println!("Table II: Gaussian quadrature points and weights (paper values in parens)\n");
    let paper: [(f64, f64); 8] = [
        (49.36, 128.4),
        (8.836, 10.76),
        (3.215, 2.787),
        (1.449, 1.088),
        (0.690, 0.518),
        (0.311, 0.270),
        (0.113, 0.138),
        (0.020, 0.053),
    ];
    let pts = frequency_quadrature(8);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .zip(paper.iter())
        .enumerate()
        .map(|(k, (pt, &(po, pw)))| {
            vec![
                format!("{}", k + 1),
                format!("{:.3}", pt.omega),
                format!("({po:.3})"),
                format!("{:.3}", pt.weight),
                format!("({pw:.3})"),
                format!("{:.3}", pt.unit_node),
            ]
        })
        .collect();
    print_table(
        &["k", "omega_k", "paper", "w_k", "paper", "0~1 node"],
        &rows,
    );

    let max_err = pts
        .iter()
        .zip(paper.iter())
        .map(|(pt, &(po, pw))| {
            ((pt.omega - po) / po)
                .abs()
                .max(((pt.weight - pw) / pw).abs())
        })
        .fold(0.0, f64::max);
    println!("\nmax relative deviation from the paper's printed values: {max_err:.2e}");
}
