//! Regenerates **Figure 1** of the paper: the spectrum of `νχ⁰(iω)` for
//! the smallest system at every quadrature point, computed exactly via the
//! direct Adler–Wiser path. Prints CSV series (index, μ) per frequency.
//!
//! Expected shape: every spectrum decays rapidly toward zero, and the
//! lowest-magnitude portion converges to a fixed spectrum as ω → 0.

use mbrpa_bench::{prepare_ladder_system, HarnessOptions};
use mbrpa_core::{dielectric_spectrum, frequency_quadrature, full_spectrum};

fn main() {
    let opts = HarnessOptions::from_args();
    let setup = prepare_ladder_system(1, opts.points_per_cell());
    eprintln!(
        "system {}: n_d = {}, n_s = {}",
        setup.crystal.label,
        setup.crystal.n_grid(),
        setup.ks.n_occupied
    );

    let eig_h = full_spectrum(&setup.ham.to_dense()).expect("dense spectrum of H");
    let quad = frequency_quadrature(8);

    println!("# Figure 1: spectrum of nu*chi0(i*omega), ascending eigenvalue index");
    print!("index");
    for pt in &quad {
        print!(",omega={:.3}", pt.omega);
    }
    println!();

    let spectra: Vec<Vec<f64>> = quad
        .iter()
        .map(|pt| {
            dielectric_spectrum(&eig_h, setup.ks.n_occupied, pt.omega, &setup.coulomb)
                .expect("dielectric spectrum")
        })
        .collect();

    let n = spectra[0].len();
    for i in 0..n {
        print!("{i}");
        for s in &spectra {
            print!(",{:.6e}", s[i]);
        }
        println!();
    }

    // headline checks mirrored from the figure caption
    let last = &spectra[spectra.len() - 1]; // smallest omega
    let prev = &spectra[spectra.len() - 2];
    let drift = (last[0] - prev[0]).abs() / last[0].abs();
    eprintln!();
    eprintln!("lowest eigenvalue at the two smallest omegas differs by {drift:.2e} (converging as omega -> 0)");
    for (pt, s) in quad.iter().zip(spectra.iter()) {
        let mu0 = s[0].abs();
        let median = s[n / 2].abs();
        eprintln!(
            "omega {:>7.3}: mu_0 = {:>10.3e}, median |mu| = {:>10.3e} ({:.1}% of mu_0)",
            pt.omega,
            s[0],
            median,
            100.0 * median / mu0
        );
    }
}
