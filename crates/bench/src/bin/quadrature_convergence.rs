//! Quadrature convergence study: `E_RPA` vs the number of frequency
//! points `ℓ`, substantiating the paper's choice of ℓ = 8 (Table I/II) —
//! the transformed Gauss–Legendre rule converges fast enough that 8
//! points reach well past chemical accuracy on the energy *difference*
//! scale.
//!
//! Uses the direct (exact-trace) path so quadrature is the only error
//! source.

use mbrpa_bench::{prepare_ladder_system, print_table, HarnessOptions};
use mbrpa_core::{direct_rpa_energy, frequency_quadrature};

fn main() {
    let opts = HarnessOptions::from_args();
    let setup = prepare_ladder_system(1, opts.points_per_cell());
    eprintln!(
        "system {}: n_d = {} (direct path: quadrature is the only error)",
        setup.crystal.label,
        setup.crystal.n_grid()
    );
    let h_dense = setup.ham.to_dense();

    // reference: a generously fine rule
    let reference = direct_rpa_energy(
        &h_dense,
        setup.ks.n_occupied,
        &setup.coulomb,
        &frequency_quadrature(48),
    )
    .expect("reference")
    .total;

    println!("\nE_RPA vs quadrature points (reference: ℓ = 48 → {reference:.8} Ha)\n");
    let mut rows = Vec::new();
    for ell in [2usize, 4, 6, 8, 12, 16, 24] {
        let e = direct_rpa_energy(
            &h_dense,
            setup.ks.n_occupied,
            &setup.coulomb,
            &frequency_quadrature(ell),
        )
        .expect("direct")
        .total;
        let err = (e - reference).abs();
        let err_per_atom = err / setup.crystal.atoms.len() as f64;
        rows.push(vec![
            ell.to_string(),
            format!("{e:.8}"),
            format!("{err:.2e}"),
            format!("{err_per_atom:.2e}"),
            if err_per_atom < 1.6e-3 { "yes" } else { "no" }.to_string(),
        ]);
    }
    print_table(
        &[
            "ℓ",
            "E_RPA (Ha)",
            "|error| (Ha)",
            "per atom",
            "< chem. acc.",
        ],
        &rows,
    );
    println!("\n(the paper runs ℓ = 8; chemical accuracy threshold 1.6e-3 Ha/atom)");
}
