//! Regenerates **Figure 5** of the paper: the timing breakdown of the
//! major computational kernels (`ν½χ⁰ν½` application, dense matmult,
//! generalized eigensolve, error evaluation) for the largest ladder system
//! across a thread sweep.
//!
//! The kernel totals come from the shared `mbrpa-obs` telemetry spans — the
//! same source of truth `rpacalc -profile` reports — by aggregating every
//! span whose leaf name matches the kernel (`apply`, `matmult`,
//! `eigensolve`, `eval_error`) across all frequencies.
//!
//! Expected shape: the `ν½χ⁰ν½` kernel dominates and scales well; the
//! dense eigensolve and the tall-skinny matmults scale poorly and
//! eventually cap the overall parallel efficiency.

use mbrpa_bench::{
    ladder_config, prepare_ladder_system, print_table, with_threads, HarnessOptions,
};

fn main() {
    let opts = HarnessOptions::from_args();
    let cells = opts.cells.unwrap_or(3);
    let max_threads = opts
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));

    let setup = prepare_ladder_system(cells, opts.points_per_cell());
    let atoms = setup.crystal.atoms.len();
    println!(
        "Figure 5: kernel breakdown for {} (n_d = {}, n_eig = {})\n",
        setup.crystal.label,
        setup.crystal.n_grid(),
        atoms * opts.eig_per_atom()
    );

    let mut thread_counts = vec![1usize];
    while *thread_counts.last().unwrap() * 2 <= max_threads {
        let next = thread_counts.last().unwrap() * 2;
        thread_counts.push(next);
    }

    mbrpa_obs::set_enabled(true);
    let mut rows = Vec::new();
    for &threads in &thread_counts {
        if atoms * opts.eig_per_atom() / threads < 4 {
            continue;
        }
        let config = ladder_config(atoms, opts.eig_per_atom(), threads);
        eprintln!("{} thread(s)…", threads);
        mbrpa_obs::reset();
        let result = with_threads(threads, || setup.run(&config).expect("RPA failed"));
        let report = mbrpa_obs::report();
        rows.push(vec![
            threads.to_string(),
            format!("{:.2}", report.sum_leaf("apply")),
            format!("{:.3}", report.sum_leaf("matmult")),
            format!("{:.3}", report.sum_leaf("eigensolve")),
            format!("{:.4}", report.sum_leaf("eval_error")),
            format!("{:.2}", result.wall_time.as_secs_f64()),
        ]);
    }
    mbrpa_obs::set_enabled(false);
    print_table(
        &[
            "threads",
            "nu.chi0.nu (s)",
            "matmult (s)",
            "eigensolve (s)",
            "eval error (s)",
            "total (s)",
        ],
        &rows,
    );
    println!(
        "\n(matmult/eigensolve run on the shared dense layer — the ScaLAPACK part of\n\
         the paper — and do not speed up with the worker partition, mirroring the\n\
         paper's observation that they cap scaling at high processor counts)"
    );
}
