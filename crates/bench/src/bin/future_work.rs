//! The paper's §V future-work directions, implemented and measured:
//!
//! 1. **Lanczos quadrature** replacing the subspace-iteration eigensolve
//!    (embarrassingly parallel over probes, no `n_eig` truncation),
//! 2. **manager-worker work distribution** replacing the static column
//!    partition (removes slowest-worker load imbalance),
//! 3. **inverse shifted-Laplacian preconditioning**, applied dynamically
//!    to the difficult Sternheimer systems only,
//! 4. plus the **seed-projection method** of §II as the rejected-design
//!    baseline for block COCG.

use mbrpa_bench::{ladder_config, prepare_ladder_system, print_table, HarnessOptions};
use mbrpa_core::{
    compute_rpa_energy_lanczos, frequency_quadrature, PrecondPolicy, TraceEstimatorOptions,
    WorkDistribution,
};
use mbrpa_dft::{SternheimerLinOp, SternheimerOperator};
use mbrpa_linalg::{Mat, C64};
use mbrpa_solver::{block_cocg, seed_cocg, CocgOptions};
use std::time::Instant;

fn main() {
    let opts = HarnessOptions::from_args();
    let workers = opts
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
    let setup = prepare_ladder_system(opts.cells.unwrap_or(1), opts.points_per_cell());
    let atoms = setup.crystal.atoms.len();
    println!(
        "future-work ablations on {} (n_d = {}, n_s = {})\n",
        setup.crystal.label,
        setup.crystal.n_grid(),
        setup.ks.n_occupied
    );

    // -------- 1. subspace iteration vs Lanczos quadrature --------
    let config = ladder_config(atoms, opts.eig_per_atom(), workers);
    eprintln!("subspace-iteration path…");
    let t0 = Instant::now();
    let subspace = setup.run(&config).expect("subspace path");
    let t_subspace = t0.elapsed().as_secs_f64();
    eprintln!("Lanczos-quadrature path…");
    let estimator = TraceEstimatorOptions {
        n_probes: 16,
        lanczos_steps: 24,
        seed: 31,
    };
    let t0 = Instant::now();
    let lanczos = compute_rpa_energy_lanczos(
        &setup.crystal,
        &setup.ham,
        &setup.ks,
        &setup.coulomb,
        &config,
        &estimator,
    )
    .expect("lanczos path");
    let t_lanczos = t0.elapsed().as_secs_f64();
    println!("§V.1: trace evaluation method\n");
    print_table(
        &["method", "E_RPA (Ha)", "σ (Ha)", "time (s)"],
        &[
            vec![
                "subspace iteration".into(),
                format!("{:.6}", subspace.total_energy),
                "-".into(),
                format!("{t_subspace:.2}"),
            ],
            vec![
                "Lanczos quadrature".into(),
                format!("{:.6}", lanczos.total_energy),
                format!("{:.4}", lanczos.total_std_error),
                format!("{t_lanczos:.2}"),
            ],
        ],
    );

    // -------- 2. static partition vs work stealing --------
    println!("\n§V.2: work distribution (time per full RPA solve)\n");
    let mut rows = Vec::new();
    for (label, dist) in [
        ("static columns (§III-D)", WorkDistribution::StaticColumns),
        (
            "work stealing (§V)",
            WorkDistribution::WorkStealing { chunk_width: 4 },
        ),
    ] {
        let mut c = config.clone();
        c.distribution = dist;
        eprintln!("{label}…");
        let r = setup.run(&c).expect("rpa");
        rows.push(vec![
            label.to_string(),
            format!("{:.6}", r.total_energy),
            format!("{:.2}", r.wall_time.as_secs_f64()),
        ]);
    }
    print_table(&["distribution", "E_RPA (Ha)", "time (s)"], &rows);

    // -------- 3. dynamic preconditioning --------
    println!("\n§V.3: inverse shifted-Laplacian preconditioning\n");
    let mut rows = Vec::new();
    for (label, policy) in [
        ("unpreconditioned (paper)", PrecondPolicy::Never),
        (
            "hard systems only",
            PrecondPolicy::HardOnly {
                omega_max: 0.5,
                top_orbital_frac: 0.25,
            },
        ),
        ("always", PrecondPolicy::Always),
    ] {
        let mut c = config.clone();
        c.precondition = policy;
        eprintln!("{label}…");
        let r = setup.run(&c).expect("rpa");
        rows.push(vec![
            label.to_string(),
            format!("{:.6}", r.total_energy),
            format!("{}", r.solver_stats.iterations),
            format!("{:.2}", r.wall_time.as_secs_f64()),
        ]);
    }
    print_table(
        &["preconditioning", "E_RPA (Ha)", "COCG iters", "time (s)"],
        &rows,
    );

    // -------- 4. seed method vs block COCG (§II baseline) --------
    println!("\n§II baseline: seed projection vs block COCG on a hard system\n");
    let n = setup.ham.dim();
    let n_s = setup.ks.n_occupied;
    let quad = frequency_quadrature(8);
    let op = SternheimerLinOp::new(SternheimerOperator::new(
        &setup.ham,
        setup.ks.energies[n_s - 1],
        quad[7].omega,
    ));
    let mut state = 71u64;
    let b = Mat::from_fn(n, 8, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let re = (state as f64 / u64::MAX as f64) - 0.5;
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        C64::new(re, (state as f64 / u64::MAX as f64) - 0.5)
    });
    let sopts = CocgOptions {
        tol: 1e-4,
        max_iters: 4000,
        ..CocgOptions::default()
    };
    let t0 = Instant::now();
    let (_, block_rep) = block_cocg(&op, &b, None, &sopts);
    let t_block = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let (_, seed_rep) = seed_cocg(&op, &b, &sopts);
    let t_seed = t0.elapsed().as_secs_f64();
    let mean_proj = seed_rep.projected_residuals.iter().sum::<f64>()
        / seed_rep.projected_residuals.len().max(1) as f64;
    print_table(
        &["solver", "iterations", "matvecs", "time (s)", "note"],
        &[
            vec![
                "block COCG (s=8)".into(),
                block_rep.iterations.to_string(),
                block_rep.matvecs.to_string(),
                format!("{t_block:.3}"),
                "-".into(),
            ],
            vec![
                "seed projection".into(),
                seed_rep.total.iterations.to_string(),
                seed_rep.total.matvecs.to_string(),
                format!("{t_seed:.3}"),
                format!("mean projected residual {mean_proj:.2}"),
            ],
        ],
    );
    println!(
        "\n(random Sternheimer right-hand sides project poorly onto the seed Krylov\n\
         subspace — the reason §II dismisses seed methods for this application)"
    );
}
