//! Regenerates the **§IV-C direct-vs-iterative comparison** (the paper's
//! ABINIT stand-in): time-to-solution of the explicit Adler–Wiser direct
//! method vs the Krylov-subspace iterative method on the smallest systems,
//! plus the energy agreement between the two.
//!
//! Expected shape: the iterative/direct time ratio grows steeply with
//! `n_d` (direct is quartic-dominated, iterative cubic), so the iterative
//! method takes over and the gap keeps widening. On the paper's substrate
//! (n_d = 3375, MKL dense kernels) the crossover is already passed at the
//! smallest system (40× for Si₈); at this harness's laptop-scale sizes the
//! crossover is extrapolated from the fitted exponents and reported.

use mbrpa_bench::{
    ladder_config, loglog_slope, prepare_ladder_system, print_table, HarnessOptions,
};
use mbrpa_core::{direct_rpa_energy, frequency_quadrature};
use std::time::Instant;

fn main() {
    let opts = HarnessOptions::from_args();
    let max_cells = opts.cells.unwrap_or(2);
    let workers = opts
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));

    let quad = frequency_quadrature(8);
    let mut rows = Vec::new();
    let mut iter_points = Vec::new();
    let mut direct_points = Vec::new();
    for cells in 1..=max_cells {
        let setup = prepare_ladder_system(cells, opts.points_per_cell());
        let atoms = setup.crystal.atoms.len();
        let label = setup.crystal.label.clone();

        eprintln!("{label}: iterative…");
        let config = ladder_config(atoms, opts.eig_per_atom(), workers);
        let t0 = Instant::now();
        let iterative = setup.run(&config).expect("iterative RPA failed");
        let t_iter = t0.elapsed().as_secs_f64();

        eprintln!("{label}: direct (full spectrum + explicit chi0)…");
        let t0 = Instant::now();
        let direct = direct_rpa_energy(
            &setup.ham.to_dense(),
            setup.ks.n_occupied,
            &setup.coulomb,
            &quad,
        )
        .expect("direct RPA failed");
        let t_direct = t0.elapsed().as_secs_f64();

        iter_points.push((setup.crystal.n_grid() as f64, t_iter));
        direct_points.push((setup.crystal.n_grid() as f64, t_direct));
        let captured = iterative.total_energy / direct.total;
        rows.push(vec![
            label,
            setup.crystal.n_grid().to_string(),
            format!("{t_iter:.2}"),
            format!("{t_direct:.2}"),
            format!("{:.1}x", t_direct / t_iter),
            format!("{:.5}", iterative.total_energy),
            format!("{:.5}", direct.total),
            format!("{:.1}%", 100.0 * captured),
        ]);
    }

    println!("\n§IV-C: direct vs iterative time-to-solution\n");
    print_table(
        &[
            "System",
            "n_d",
            "iterative (s)",
            "direct (s)",
            "speedup",
            "E iter (Ha)",
            "E direct (Ha)",
            "captured",
        ],
        &rows,
    );
    if iter_points.len() >= 2 {
        let p_iter = loglog_slope(&iter_points);
        let p_direct = loglog_slope(&direct_points);
        println!();
        println!("fitted scaling: iterative ~ n_d^{p_iter:.2}, direct ~ n_d^{p_direct:.2}");
        if p_direct > p_iter {
            // extrapolate t_iter(n) = t_direct(n): solve in log space from
            // the last measured point
            let (n0, ti) = *iter_points.last().unwrap();
            let (_, td) = *direct_points.last().unwrap();
            let cross = n0 * (ti / td).powf(1.0 / (p_direct - p_iter));
            println!(
                "extrapolated crossover at n_d ≈ {cross:.0} (paper substrate: already \
                 passed at n_d = 3375, 40x for Si8)"
            );
        }
    }
    println!(
        "\n(the iterative energy captures the trace over its n_eig lowest eigenvalues;\n\
         the salient reproduction target is the growth of the ratio with n_d — the\n\
         direct method's steeper exponent — not the absolute crossover point)"
    );
}
