//! One-shot artifact driver: runs every table/figure harness in sequence
//! and writes their outputs under `results/`.
//!
//! ```text
//! cargo run --release -p mbrpa-bench --bin reproduce_all [-- --cells N --paper-scale]
//! ```
//!
//! Each harness is an independent binary; this driver simply shells out to
//! the already-built siblings so a single command regenerates the full
//! evaluation (EXPERIMENTS.md documents the expected shapes).

use std::path::Path;
use std::process::Command;

const HARNESSES: &[(&str, &[&str])] = &[
    ("table2_quadrature", &[]),
    ("table3_systems", &[]),
    ("fig1_spectrum", &[]),
    ("fig2_warmstart_overlap", &[]),
    ("fig3_tolerance_sweep", &[]),
    ("table4_block_sizes", &["--cells", "2"]),
    ("fig4_strong_scaling", &["--cells", "2"]),
    ("fig5_kernel_breakdown", &["--cells", "2"]),
    ("fig6_complexity", &["--cells", "3"]),
    ("direct_vs_iterative", &["--cells", "2"]),
    ("quadrature_convergence", &[]),
    ("mesh_convergence", &[]),
    ("solver_convergence_curves", &[]),
    ("future_work", &[]),
];

fn main() {
    let extra: Vec<String> = std::env::args().skip(1).collect();
    std::fs::create_dir_all("results").expect("create results dir");
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");

    let mut failures = Vec::new();
    for (name, default_args) in HARNESSES {
        let exe = bin_dir.join(name);
        if !Path::new(&exe).exists() {
            eprintln!("skipping {name}: binary not built (run `cargo build --release -p mbrpa-bench --bins`)");
            failures.push(*name);
            continue;
        }
        println!("==> {name}");
        let out_path = format!("results/{name}.txt");
        let log_path = format!("results/{name}.log");
        let output = Command::new(&exe)
            .args(default_args.iter())
            .args(extra.iter())
            .output();
        match output {
            Ok(out) => {
                std::fs::write(&out_path, &out.stdout).expect("write stdout");
                std::fs::write(&log_path, &out.stderr).expect("write stderr");
                if out.status.success() {
                    println!("    wrote {out_path}");
                } else {
                    eprintln!(
                        "    FAILED (status {:?}); see {log_path}",
                        out.status.code()
                    );
                    failures.push(*name);
                }
            }
            Err(e) => {
                eprintln!("    FAILED to launch: {e}");
                failures.push(*name);
            }
        }
    }

    println!();
    if failures.is_empty() {
        println!("all harnesses completed; outputs in results/");
    } else {
        println!("completed with failures: {failures:?}");
        std::process::exit(1);
    }
}
