//! Regenerates **Figure 4** of the paper: strong scaling of the complete
//! RPA solve for every ladder system over a doubling thread sweep. The
//! worker partition mirrors the paper's MPI layout (`p` ranks over the
//! `n_eig` columns, `p = threads`).
//!
//! Expected shape: near-ideal speedup while `n_eig/p` stays large; the
//! dense Rayleigh–Ritz algebra caps scaling at high thread counts.
//!
//! On single-core machines the thread sweep degenerates to one row; the
//! harness then still reports the **logical-worker load imbalance**
//! (max/mean per-worker Sternheimer time), the §III-D effect that
//! ultimately caps the paper's strong scaling: wall time follows the
//! slowest worker.

use mbrpa_bench::{
    ladder_config, prepare_ladder_system, print_table, with_threads, HarnessOptions,
};

fn main() {
    let opts = HarnessOptions::from_args();
    let max_cells = opts.cells.unwrap_or(3);
    let max_threads = opts
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));

    let mut thread_counts = vec![1usize];
    while *thread_counts.last().unwrap() * 2 <= max_threads {
        let next = thread_counts.last().unwrap() * 2;
        thread_counts.push(next);
    }

    println!("Figure 4: strong scaling (time in seconds; speedup vs 1 thread)\n");
    let mut rows = Vec::new();
    for cells in 1..=max_cells {
        let setup = prepare_ladder_system(cells, opts.points_per_cell());
        let atoms = setup.crystal.atoms.len();
        let label = setup.crystal.label.clone();
        let mut t1 = 0.0f64;
        for &threads in &thread_counts {
            // the paper keeps n_eig/p >= 4 so dynamic selection stays active
            if atoms * opts.eig_per_atom() / threads < 4 {
                continue;
            }
            let config = ladder_config(atoms, opts.eig_per_atom(), threads);
            eprintln!("{label} @ {threads} thread(s)…");
            let result = with_threads(threads, || setup.run(&config).expect("RPA failed"));
            let t = result.wall_time.as_secs_f64();
            if threads == 1 {
                t1 = t;
            }
            let speedup = if t1 > 0.0 { t1 / t } else { 1.0 };
            // load imbalance across logical workers: max/mean solve time
            let loads: Vec<f64> = result.worker_load.iter().map(|d| d.as_secs_f64()).collect();
            let mean = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
            let max = loads.iter().cloned().fold(0.0, f64::max);
            let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
            rows.push(vec![
                label.clone(),
                threads.to_string(),
                format!("{t:.2}"),
                format!("{speedup:.2}x"),
                format!("{:.0}%", 100.0 * speedup / threads as f64),
                format!("{imbalance:.2}"),
                format!("{:.6}", result.total_energy),
            ]);
        }
    }
    print_table(
        &[
            "System",
            "threads",
            "time (s)",
            "speedup",
            "efficiency",
            "imbalance",
            "E_RPA (Ha)",
        ],
        &rows,
    );
    println!(
        "\n(imbalance = max/mean per-worker Sternheimer time at p = threads logical\n\
         workers; values > 1 are the §III-D load imbalance that caps scaling)"
    );

    // Logical-worker imbalance sweep: measurable even on one core, since
    // per-worker solve time is CPU time spent on that worker's columns.
    println!("\nLogical-worker load imbalance (largest system, any thread count):\n");
    let setup = prepare_ladder_system(max_cells, opts.points_per_cell());
    let atoms = setup.crystal.atoms.len();
    let mut rows = Vec::new();
    for p in [2usize, 4, 8, 16] {
        if atoms * opts.eig_per_atom() / p < 4 {
            break;
        }
        let config = ladder_config(atoms, opts.eig_per_atom(), p);
        let result = setup.run(&config).expect("RPA failed");
        let loads: Vec<f64> = result.worker_load.iter().map(|d| d.as_secs_f64()).collect();
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        rows.push(vec![
            p.to_string(),
            format!("{mean:.2}"),
            format!("{min:.2}"),
            format!("{max:.2}"),
            format!("{:.2}", if mean > 0.0 { max / mean } else { 1.0 }),
        ]);
    }
    print_table(&["p", "mean (s)", "min (s)", "max (s)", "max/mean"], &rows);
    println!(
        "\n(the paper: \"the time to perform ν½χ⁰ν½V is governed by the slowest\n\
         processor, and this slowest time scales with poor parallel efficiency as\n\
         n_eig/p decreases\")"
    );
}
