//! Regenerates **Figure 6** of the paper: total solve time vs the number
//! of grid points `n_d` across the ladder, at two thread counts, with a
//! log–log least-squares fit of the complexity exponent.
//!
//! Expected shape: sub-cubic fitted exponents (the paper reports
//! `O(n_d^2.95)` at 24 cores and `O(n_d^2.87)` at 192 cores).

use mbrpa_bench::{
    ladder_config, loglog_slope, prepare_ladder_system, print_table, with_threads, HarnessOptions,
};

fn main() {
    let opts = HarnessOptions::from_args();
    let max_cells = opts.cells.unwrap_or(4);
    let max_threads = opts
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
    let thread_counts = if max_threads >= 4 {
        vec![1usize, max_threads]
    } else {
        vec![1usize]
    };

    println!("Figure 6: time vs n_d (complexity fit)\n");
    let mut rows = Vec::new();
    let mut fits = Vec::new();
    for &threads in &thread_counts {
        let mut points = Vec::new();
        for cells in 1..=max_cells {
            let setup = prepare_ladder_system(cells, opts.points_per_cell());
            let atoms = setup.crystal.atoms.len();
            if atoms * opts.eig_per_atom() / threads < 4 {
                continue;
            }
            let config = ladder_config(atoms, opts.eig_per_atom(), threads);
            eprintln!("{} @ {threads} thread(s)…", setup.crystal.label);
            let result = with_threads(threads, || setup.run(&config).expect("RPA failed"));
            let t = result.wall_time.as_secs_f64();
            points.push((setup.crystal.n_grid() as f64, t));
            rows.push(vec![
                setup.crystal.label.clone(),
                threads.to_string(),
                setup.crystal.n_grid().to_string(),
                format!("{t:.2}"),
            ]);
        }
        if points.len() >= 2 {
            fits.push((threads, loglog_slope(&points)));
        }
    }
    print_table(&["System", "threads", "n_d", "time (s)"], &rows);
    println!();
    for (threads, slope) in fits {
        println!("fit @ {threads} thread(s): time ~ n_d^{slope:.2}");
    }
    println!("(paper: n_d^2.95 at 24 cores, n_d^2.87 at 192 cores)");
}
