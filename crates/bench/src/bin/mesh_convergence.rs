//! Mesh (discretization) convergence study: `E_RPA` per atom vs the grid
//! spacing, substantiating the paper's Table I mesh of 0.69 Bohr — chosen
//! as "the loosest … necessary to achieve chemical accuracy in energy
//! differences".
//!
//! Uses the direct (exact-trace) path on a fixed physical cell with an
//! increasingly fine grid, so discretization is the only error source.
//! The convergence target is the energy *difference* between the perturbed
//! crystal and its vacancy companion (the paper's §IV-A observable).

use mbrpa_bench::print_table;
use mbrpa_core::{direct_rpa_energy, frequency_quadrature, KsSolver, RpaSetup};
use mbrpa_dft::{PotentialParams, SiliconSpec};

fn delta_e_per_atom(points: usize) -> (usize, f64, f64) {
    // fixed physical lattice constant: a = 15 · 0.69/… scaled to the
    // 6-point default cell (a = 4.14 Bohr here); finer grids divide it
    let a = 6.0 * 0.69;
    let spec = SiliconSpec {
        points_per_cell: points,
        mesh: a / points as f64,
        perturbation: 0.03,
        seed: 21,
        ..SiliconSpec::default()
    };
    let quad = frequency_quadrature(8);
    let run = |vacancy: Option<usize>| -> f64 {
        let crystal = match vacancy {
            Some(site) => spec.build_with_vacancy(site),
            None => spec.build(),
        };
        let atoms = crystal.atoms.len() as f64;
        let setup = RpaSetup::prepare(
            crystal,
            &PotentialParams::default(),
            2,
            KsSolver::Dense { extra: 0 },
        )
        .expect("setup");
        direct_rpa_energy(
            &setup.ham.to_dense(),
            setup.ks.n_occupied,
            &setup.coulomb,
            &quad,
        )
        .expect("direct")
        .total
            / atoms
    };
    let pristine = run(None);
    let vacancy = run(Some(4));
    (points, pristine, pristine - vacancy)
}

fn main() {
    println!("Mesh convergence of E_RPA (direct path, fixed cell, 8-atom crystal)\n");
    let meshes = [5usize, 6, 7, 8];
    let results: Vec<(usize, f64, f64)> = meshes.iter().map(|&p| delta_e_per_atom(p)).collect();
    let reference = results.last().unwrap().2;

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(p, e, de)| {
            let h = 6.0 * 0.69 / p as f64;
            vec![
                format!("{p}³"),
                format!("{h:.3}"),
                format!("{e:.6}"),
                format!("{de:+.6}"),
                format!("{:.2e}", (de - reference).abs()),
            ]
        })
        .collect();
    print_table(
        &[
            "grid",
            "h (Bohr)",
            "E/atom (Ha)",
            "ΔE vac (Ha/atom)",
            "|ΔΔE| vs finest",
        ],
        &rows,
    );
    println!(
        "\n(the paper tunes its 0.69 Bohr mesh the same way: the loosest spacing\n\
         whose energy *differences* stay within chemical accuracy, 1.6e-3 Ha/atom)"
    );
}
