//! Regenerates **Table IV** of the paper: dynamic block-size selection
//! frequencies, summed over all workers and all Sternheimer solves, for
//! the smallest three ladder systems — plus a dynamic-vs-fixed wall-time
//! ablation of Algorithm 4.

use mbrpa_bench::{ladder_config, prepare_ladder_system, print_table, HarnessOptions};
use mbrpa_solver::{BlockPolicy, BlockSizeHistogram};
use std::collections::BTreeSet;
use std::time::Duration;

fn main() {
    let opts = HarnessOptions::from_args();
    let max_cells = opts.cells.unwrap_or(3);
    let workers = opts.threads.unwrap_or_else(num_workers);

    let mut histograms: Vec<(String, BlockSizeHistogram)> = Vec::new();
    let mut ablation: Vec<(String, Duration, Duration)> = Vec::new();

    for cells in 1..=max_cells {
        let setup = prepare_ladder_system(cells, opts.points_per_cell());
        let label = setup.crystal.label.clone();
        let atoms = setup.crystal.atoms.len();
        let mut config = ladder_config(atoms, opts.eig_per_atom(), workers);
        config.block_policy = BlockPolicy::DynamicTimed;
        eprintln!("running {label} (dynamic block sizes)…");
        let dynamic = setup.run(&config).expect("RPA failed");
        histograms.push((label.clone(), dynamic.solver_stats.block_sizes.clone()));

        config.block_policy = BlockPolicy::Fixed(1);
        eprintln!("running {label} (fixed s = 1)…");
        let fixed = setup.run(&config).expect("RPA failed");
        ablation.push((label, dynamic.wall_time, fixed.wall_time));
    }

    println!("\nTable IV: dynamic block size frequencies (all workers, all solves)\n");
    let sizes: BTreeSet<usize> = histograms
        .iter()
        .flat_map(|(_, h)| h.iter().map(|(s, _)| s))
        .collect();
    let mut headers: Vec<String> = vec!["Block size".to_string()];
    headers.extend(histograms.iter().map(|(l, _)| l.clone()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&s| {
            let mut row = vec![s.to_string()];
            row.extend(histograms.iter().map(|(_, h)| h.count(s).to_string()));
            row
        })
        .collect();
    print_table(&header_refs, &rows);

    println!("\nAblation: Algorithm 4 (dynamic) vs fixed s = 1 wall time\n");
    let rows: Vec<Vec<String>> = ablation
        .iter()
        .map(|(l, dyn_t, fix_t)| {
            vec![
                l.clone(),
                format!("{:.2}", dyn_t.as_secs_f64()),
                format!("{:.2}", fix_t.as_secs_f64()),
                format!("{:.2}x", fix_t.as_secs_f64() / dyn_t.as_secs_f64()),
            ]
        })
        .collect();
    print_table(
        &["System", "dynamic (s)", "fixed s=1 (s)", "speedup"],
        &rows,
    );
    println!(
        "\n(the paper's Si8/Si16 select s = 2 ~90% of the time and s = 1 dominates as\n\
         systems grow; easy systems make s = 1 optimal since iterations barely drop)"
    );
}

fn num_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}
