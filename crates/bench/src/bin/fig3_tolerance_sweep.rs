//! Regenerates **Figure 3** of the paper: RPA correlation energy and total
//! wall time for the smallest system across a sweep of Sternheimer
//! tolerances, with the block size fixed at `s = 1` (the paper's
//! configuration for this figure).
//!
//! Expected shape: time drops rapidly as the tolerance loosens while the
//! energy stays flat until ~2e-2, beyond which subspace iteration fails to
//! converge.

use mbrpa_bench::{ladder_config, prepare_ladder_system, print_table, HarnessOptions};
use mbrpa_solver::BlockPolicy;

fn main() {
    let opts = HarnessOptions::from_args();
    let workers = opts
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
    let setup = prepare_ladder_system(1, opts.points_per_cell());
    let atoms = setup.crystal.atoms.len();
    eprintln!(
        "system {}: n_d = {}, sweeping TOL_STERN_RES at fixed s = 1",
        setup.crystal.label,
        setup.crystal.n_grid()
    );

    let tolerances = [1e-4, 4e-4, 1e-3, 4e-3, 1e-2, 2e-2, 4e-2, 8e-2];
    let mut rows = Vec::new();
    for &tol in &tolerances {
        let mut config = ladder_config(atoms, opts.eig_per_atom(), workers);
        config.tol_sternheimer = tol;
        config.block_policy = BlockPolicy::Fixed(1);
        match setup.run(&config) {
            Ok(result) => {
                let all_converged = result.per_omega.iter().all(|r| r.converged);
                rows.push(vec![
                    format!("{tol:.0e}"),
                    format!("{:.6}", result.total_energy),
                    format!("{:.6}", result.energy_per_atom),
                    format!("{:.2}", result.wall_time.as_secs_f64()),
                    if all_converged { "yes" } else { "NO" }.to_string(),
                ]);
            }
            Err(e) => rows.push(vec![
                format!("{tol:.0e}"),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("failed: {e}"),
            ]),
        }
    }

    println!("\nFigure 3: energy & time vs Sternheimer tolerance (s = 1)\n");
    print_table(
        &["tol", "E_RPA (Ha)", "E/atom (Ha)", "time (s)", "converged"],
        &rows,
    );
    println!(
        "\n(the paper selects 1e-2 for production: loosest tolerance that leaves the\n\
         energy unchanged; convergence fails past ~4e-2)"
    );
}
