//! Residual convergence curves: block COCG (s = 1, 2, 4) vs restarted
//! GMRES on an easy and a hard Sternheimer system — the per-iteration view
//! behind the §III-B discussion (COCG's non-monotone residuals with no
//! optimality property vs GMRES's monotone but increasingly expensive
//! iterations). Prints CSV series suitable for plotting.

use mbrpa_bench::prepare_ladder_system;
use mbrpa_core::frequency_quadrature;
use mbrpa_dft::{SternheimerLinOp, SternheimerOperator};
use mbrpa_linalg::{Mat, C64};
use mbrpa_solver::{block_cocg, gmres, qmr_sym, CocgOptions, GmresOptions, QmrOptions};

fn rhs(n: usize, s: usize, seed: u64) -> Mat<C64> {
    let mut state = seed | 1;
    Mat::from_fn(n, s, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let re = (state as f64 / u64::MAX as f64) - 0.5;
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        C64::new(re, (state as f64 / u64::MAX as f64) - 0.5)
    })
}

fn main() {
    let setup = prepare_ladder_system(1, 6);
    let n = setup.ham.dim();
    let n_s = setup.ks.n_occupied;
    let quad = frequency_quadrature(8);

    for (label, lambda, omega) in [
        ("easy_1_1", setup.ks.energies[0], quad[0].omega),
        ("hard_ns_l", setup.ks.energies[n_s - 1], quad[7].omega),
    ] {
        let op = SternheimerLinOp::new(SternheimerOperator::new(&setup.ham, lambda, omega));
        let mut series: Vec<(String, Vec<f64>)> = Vec::new();
        for s in [1usize, 2, 4] {
            let b = rhs(n, s, 5);
            let opts = CocgOptions {
                tol: 1e-8,
                max_iters: 3000,
                track_residuals: true,
                ..CocgOptions::default()
            };
            let (_, rep) = block_cocg(&op, &b, None, &opts);
            series.push((format!("cocg_s{s}"), rep.residual_history));
        }
        let b1 = rhs(n, 1, 5);
        let (_, rep) = gmres(
            &op,
            b1.col(0),
            None,
            &GmresOptions {
                tol: 1e-8,
                restart: 100,
                max_matvecs: 20_000,
                track_residuals: true,
            },
        );
        series.push(("gmres_r100".into(), rep.residual_history));
        let (_, rep) = qmr_sym(
            &op,
            b1.col(0),
            None,
            &QmrOptions {
                tol: 1e-8,
                max_iters: 3000,
                track_residuals: true,
                ..QmrOptions::default()
            },
        );
        series.push(("qmr_sym".into(), rep.residual_history));

        println!("# {label}: omega = {omega:.4}, lambda_shift = {lambda:.4}");
        let longest = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        print!("iter");
        for (name, _) in &series {
            print!(",{name}");
        }
        println!();
        for i in 0..longest {
            print!("{i}");
            for (_, v) in &series {
                match v.get(i) {
                    Some(r) => print!(",{r:.3e}"),
                    None => print!(","),
                }
            }
            println!();
        }
        println!();
        // headline: iterations to 1e-6
        eprint!("{label}: iterations to 1e-6 →");
        for (name, v) in &series {
            let k = v.iter().position(|&r| r < 1e-6);
            match k {
                Some(k) => eprint!("  {name}: {k}"),
                None => eprint!("  {name}: >{}", v.len()),
            }
        }
        eprintln!();
    }
}
