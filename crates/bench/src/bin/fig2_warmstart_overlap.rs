//! Regenerates **Figure 2** of the paper: `log₁₀|V₇ᴴV₈|`, the overlap of
//! the exact lowest eigenvectors of `νχ⁰(iω₇)` and `νχ⁰(iω₈)` — whose
//! diagonal dominance justifies warm-starting subspace iteration across
//! quadrature points (§III-F).

use mbrpa_bench::{prepare_ladder_system, HarnessOptions};
use mbrpa_core::{dielectric_eigenpairs, frequency_quadrature, full_spectrum};
use mbrpa_linalg::matmul_tn;

fn main() {
    let opts = HarnessOptions::from_args();
    let setup = prepare_ladder_system(1, opts.points_per_cell());
    let n_eig = setup.crystal.atoms.len() * opts.eig_per_atom();
    eprintln!(
        "system {}: n_d = {}, lowest {} eigenvectors",
        setup.crystal.label,
        setup.crystal.n_grid(),
        n_eig
    );

    let eig_h = full_spectrum(&setup.ham.to_dense()).expect("dense spectrum of H");
    let quad = frequency_quadrature(8);
    let (w7, w8) = (quad[6].omega, quad[7].omega);

    let e7 = dielectric_eigenpairs(&eig_h, setup.ks.n_occupied, w7, &setup.coulomb).unwrap();
    let e8 = dielectric_eigenpairs(&eig_h, setup.ks.n_occupied, w8, &setup.coulomb).unwrap();
    let v7 = e7.vectors.columns(0, n_eig.min(e7.vectors.cols()));
    let v8 = e8.vectors.columns(0, n_eig.min(e8.vectors.cols()));

    let overlap = matmul_tn(&v7, &v8);
    let m = overlap.rows();

    println!("# Figure 2: log10 |V7^H V8| ({m} x {m}); CSV");
    for i in 0..m {
        let row: Vec<String> = (0..m)
            .map(|j| format!("{:.2}", overlap[(i, j)].abs().max(1e-300).log10()))
            .collect();
        println!("{}", row.join(","));
    }

    // headline statistics. Two levels:
    // (a) per-vector diagonal dominance — the paper's Figure 2 statistic;
    //     on small substrates individual eigenvectors rotate within
    //     near-degenerate clusters, so also report
    // (b) subspace capture ‖V₇ᵀV₈‖²_F / n_eig — the quantity warm-started
    //     *subspace* iteration actually needs (1.0 = identical span).
    let mut diag_hi = 0usize;
    for i in 0..m {
        if overlap[(i, i)].abs() > 0.5 {
            diag_hi += 1;
        }
    }
    let capture = overlap.fro_norm().powi(2) / m as f64;
    // principal angles between the two spans (SVD of the overlap)
    let cosines = mbrpa_linalg::principal_cosines(&v7, &v8).unwrap_or_default();
    let min_cos = cosines.last().copied().unwrap_or(0.0);
    eprintln!();
    eprintln!("omega_7 = {w7:.3}, omega_8 = {w8:.3} over the lowest {m} eigenvectors:");
    eprintln!("  per-vector: {diag_hi}/{m} diagonal entries above 0.5 (paper's Fig. 2 view)");
    eprintln!("  subspace capture ||V7^T V8||_F^2 / n_eig = {capture:.4} (1.0 = same span)");
    eprintln!("  smallest principal cosine = {min_cos:.4}");
    eprintln!(
        "(individual vectors may rotate inside near-degenerate clusters; the warm\n\
         start of SIII-F needs only the span, which the capture measures)"
    );
}
