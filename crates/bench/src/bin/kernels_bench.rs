//! Micro-benchmarks of the hot kernels (runtime-dispatched SIMD stencil
//! block applies, packed GEMM microkernels, and the lane-split reduction
//! suite) against in-tree copies of the PR-3 implementations — the
//! autovectorized fused/packed kernels this PR's explicit SIMD layer
//! replaced — emitting a schema-versioned `BENCH_kernels.json`.
//!
//! Flags:
//!
//! * `--smoke` — tiny shapes (seconds, CI-friendly) instead of
//!   paper-relevant ones,
//! * `--out PATH` — output path (default `BENCH_kernels.json`),
//! * `--threads N` — rayon pool size for both kernel families,
//! * `--validate PATH` — parse PATH and check it against the
//!   `mbrpa.kernels-bench/2` schema, then exit (no benchmarks run).
//!
//! The active SIMD dispatch path (settable via `MBRPA_SIMD`) is recorded
//! in the emitted document, and every case records wall seconds for the
//! new and reference kernels, the speedup, the new kernel's scalar
//! GFLOP/s, and full shape metadata, so regressions are attributable
//! without rerunning.

use mbrpa_dft::{Hamiltonian, PotentialParams, SiliconSpec, SternheimerOperator};
use mbrpa_grid::{Boundary, Grid3, Laplacian};
use mbrpa_linalg::{matmul_hn_into, matmul_into, vecops, Mat, Scalar, C64};
use std::hint::black_box;
use std::time::Instant;

/// In-tree copies of the PR-3 kernels — the fused single-pass stencil,
/// the packed register-blocked GEMM with a generic (autovectorized)
/// microkernel, the 4×4-tiled Gram product, and the plain-loop vector
/// reductions — exactly as they stood before the runtime-dispatched
/// SIMD layer replaced them. Kept verbatim so the speedup column
/// measures the explicit-SIMD rewrite, not incidental drift.
mod reference {
    use mbrpa_grid::{Boundary, Laplacian};
    use mbrpa_linalg::{Mat, Scalar};
    use rayon::prelude::*;

    const PANEL: usize = 512;
    const PAR_THRESHOLD: usize = 1 << 16;
    const A_BLOCK_BYTES: usize = 1 << 18;

    // -- PR-3 vector kernels (plain loops; the serial dependency chain in
    //    the reductions is what the lane-split SIMD versions break) --

    pub fn dot_t<T: Scalar>(x: &[T], y: &[T]) -> T {
        let mut acc = T::zero();
        for (&a, &b) in x.iter().zip(y.iter()) {
            acc += a * b;
        }
        acc
    }

    pub fn dot_h<T: Scalar>(x: &[T], y: &[T]) -> T {
        let mut acc = T::zero();
        for (&a, &b) in x.iter().zip(y.iter()) {
            acc += a.conj() * b;
        }
        acc
    }

    pub fn norm2<T: Scalar>(x: &[T]) -> f64 {
        x.iter().map(|v| v.abs_sq()).sum::<f64>().sqrt()
    }

    pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
        for (yi, &xi) in y.iter_mut().zip(x.iter()) {
            *yi += alpha * xi;
        }
    }

    pub fn axpby<T: Scalar>(alpha: T, x: &[T], beta: T, y: &mut [T]) {
        for (yi, &xi) in y.iter_mut().zip(x.iter()) {
            *yi = alpha * xi + beta * *yi;
        }
    }

    fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
        for xi in x.iter_mut() {
            *xi *= alpha;
        }
    }

    // -- PR-3 fused single-pass stencil --

    /// Stencil coefficients reconstructed from a [`Laplacian`]'s public
    /// surface, applied by the PR-3 fused (but scalar-loop) sweep.
    pub struct RefStencil {
        nx: usize,
        ny: usize,
        nz: usize,
        periodic: bool,
        radius: usize,
        cx: Vec<f64>,
        cy: Vec<f64>,
        cz: Vec<f64>,
        diag: f64,
    }

    impl RefStencil {
        pub fn from_laplacian(lap: &Laplacian) -> Self {
            let g = lap.grid();
            let w = mbrpa_grid::second_derivative_weights(lap.radius());
            let scale = |h: f64| -> Vec<f64> { w.iter().map(|c| c / (h * h)).collect() };
            let (cx, cy, cz) = (scale(g.hx), scale(g.hy), scale(g.hz));
            let diag = cx[0] + cy[0] + cz[0];
            Self {
                nx: g.nx,
                ny: g.ny,
                nz: g.nz,
                periodic: g.bc == Boundary::Periodic,
                radius: lap.radius(),
                cx,
                cy,
                cz,
                diag,
            }
        }

        /// The PR-3 `Laplacian::apply_raw`: single fused sweep per
        /// z-slice with paired ±t runs, relying on autovectorization.
        pub fn apply<T: Scalar>(&self, v: &[T], out: &mut [T]) {
            let (nx, ny, nz) = (self.nx, self.ny, self.nz);
            let periodic = self.periodic;
            let r = self.radius;
            let slice = nx * ny;

            #[inline(always)]
            fn pair_add<T: Scalar>(ol: &mut [T], plus: Option<&[T]>, minus: Option<&[T]>, c: f64) {
                match (plus, minus) {
                    (Some(p), Some(m)) => {
                        for ((o, &a), &b) in ol.iter_mut().zip(p.iter()).zip(m.iter()) {
                            *o += a.scale(c);
                            *o += b.scale(c);
                        }
                    }
                    (Some(p), None) => {
                        for (o, &a) in ol.iter_mut().zip(p.iter()) {
                            *o += a.scale(c);
                        }
                    }
                    (None, Some(m)) => {
                        for (o, &b) in ol.iter_mut().zip(m.iter()) {
                            *o += b.scale(c);
                        }
                    }
                    (None, None) => {}
                }
            }

            for k in 0..nz {
                let ks = k * slice;
                {
                    let os = &mut out[ks..ks + slice];
                    let vs = &v[ks..ks + slice];
                    for (o, &x) in os.iter_mut().zip(vs.iter()) {
                        *o = x.scale(self.diag);
                    }
                }
                for j in 0..ny {
                    let base = ks + j * nx;
                    let vl = &v[base..base + nx];
                    let ol = &mut out[base..base + nx];
                    for t in 1..=r {
                        let c = self.cx[t];
                        for i in t..nx - t {
                            ol[i] += (vl[i - t] + vl[i + t]).scale(c);
                        }
                        if periodic {
                            for i in 0..t {
                                ol[i] += (vl[i + nx - t] + vl[i + t]).scale(c);
                            }
                            for i in nx - t..nx {
                                ol[i] += (vl[i - t] + vl[i + t - nx]).scale(c);
                            }
                        } else {
                            for i in 0..t {
                                ol[i] += vl[i + t].scale(c);
                            }
                            for i in nx - t..nx {
                                ol[i] += vl[i - t].scale(c);
                            }
                        }
                    }
                }
                for t in 1..=r {
                    let c = self.cy[t];
                    let band = (ny - 2 * t) * nx;
                    {
                        let o = &mut out[ks + t * nx..ks + t * nx + band];
                        let p = &v[ks + 2 * t * nx..ks + 2 * t * nx + band];
                        let m = &v[ks..ks + band];
                        pair_add(o, Some(p), Some(m), c);
                    }
                    {
                        let len = t * nx;
                        let o = &mut out[ks..ks + len];
                        let p = &v[ks + t * nx..ks + t * nx + len];
                        let m = periodic.then(|| &v[ks + (ny - t) * nx..ks + ny * nx]);
                        pair_add(o, Some(p), m, c);
                    }
                    {
                        let len = t * nx;
                        let o = &mut out[ks + (ny - t) * nx..ks + ny * nx];
                        let m = &v[ks + (ny - 2 * t) * nx..ks + (ny - t) * nx];
                        let p = periodic.then(|| &v[ks..ks + len]);
                        pair_add(o, p, Some(m), c);
                    }
                }
                for t in 1..=r {
                    let c = self.cz[t];
                    let o = &mut out[ks..ks + slice];
                    let p = (k + t < nz || periodic).then(|| {
                        let b = ((k + t) % nz) * slice;
                        &v[b..b + slice]
                    });
                    let m = (k >= t || periodic).then(|| {
                        let b = ((k + nz - t) % nz) * slice;
                        &v[b..b + slice]
                    });
                    pair_add(o, p, m, c);
                }
            }
        }
    }

    // -- PR-3 packed register-blocked GEMM (generic microkernel) --

    fn pack_a<T: Scalar, const MR: usize>(
        a: &Mat<T>,
        row0: usize,
        mc: usize,
        k: usize,
        buf: &mut [T],
    ) {
        let n_panels = mc.div_ceil(MR);
        for ip in 0..n_panels {
            let i0 = row0 + ip * MR;
            let mre = MR.min(row0 + mc - i0);
            let panel = &mut buf[ip * MR * k..(ip + 1) * MR * k];
            for l in 0..k {
                let src = &a.col(l)[i0..i0 + mre];
                let dst = &mut panel[l * MR..(l + 1) * MR];
                dst[..mre].copy_from_slice(src);
                for d in dst.iter_mut().skip(mre) {
                    *d = T::zero();
                }
            }
        }
    }

    fn pack_b<T: Scalar, const NR: usize>(b: &Mat<T>, alpha: T, k: usize, n: usize, buf: &mut [T]) {
        let n_panels = n.div_ceil(NR);
        for jp in 0..n_panels {
            let j0 = jp * NR;
            let nre = NR.min(n - j0);
            let panel = &mut buf[jp * NR * k..(jp + 1) * NR * k];
            for jj in 0..nre {
                let bj = &b.col(j0 + jj)[..k];
                for l in 0..k {
                    panel[l * NR + jj] = alpha * bj[l];
                }
            }
            for jj in nre..NR {
                for l in 0..k {
                    panel[l * NR + jj] = T::zero();
                }
            }
        }
    }

    /// The PR-3 microkernel: interleaved `T` accumulators, compile-time
    /// MR×NR unroll, autovectorized (`*`/`+=`, no explicit FMA).
    #[inline(always)]
    fn micro_kernel<T: Scalar, const MR: usize, const NR: usize>(
        k: usize,
        ap: &[T],
        bp: &[T],
        acc: &mut [[T; MR]; NR],
    ) {
        for (al, bl) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(k) {
            let al: &[T; MR] = al.try_into().expect("MR-sized chunk");
            let bl: &[T; NR] = bl.try_into().expect("NR-sized chunk");
            for jj in 0..NR {
                let b = bl[jj];
                for ii in 0..MR {
                    acc[jj][ii] += al[ii] * b;
                }
            }
        }
    }

    #[inline(always)]
    fn store_tile_col<T: Scalar>(dst: &mut [T], src: &[T], beta: T) {
        if beta == T::zero() {
            dst.copy_from_slice(src);
        } else if beta == T::one() {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += *s;
            }
        } else {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = *s + beta * *d;
            }
        }
    }

    fn strip_gemm<T: Scalar, const MR: usize, const NR: usize>(
        a: &Mat<T>,
        bpack: &[T],
        r0: usize,
        h: usize,
        k: usize,
        n: usize,
        mut write_tile: impl FnMut(usize, usize, &[[T; MR]; NR], usize, usize),
    ) {
        let mc_elems = (A_BLOCK_BYTES / std::mem::size_of::<T>() / k.max(1)).max(MR);
        let mc_max = (mc_elems / MR * MR).min(h.div_ceil(MR) * MR);
        let mut a_buf = vec![T::zero(); mc_max * k];
        let n_col_panels = n.div_ceil(NR);

        let mut off = 0;
        while off < h {
            let mc = mc_max.min(h - off);
            pack_a::<T, MR>(a, r0 + off, mc, k, &mut a_buf);
            let n_row_panels = mc.div_ceil(MR);
            for jp in 0..n_col_panels {
                let nre = NR.min(n - jp * NR);
                let bp = &bpack[jp * NR * k..(jp + 1) * NR * k];
                for ip in 0..n_row_panels {
                    let mre = MR.min(mc - ip * MR);
                    let ap = &a_buf[ip * MR * k..(ip + 1) * MR * k];
                    let mut acc = [[T::zero(); MR]; NR];
                    micro_kernel::<T, MR, NR>(k, ap, bp, &mut acc);
                    write_tile(off + ip * MR, jp * NR, &acc, mre, nre);
                }
            }
            off += mc;
        }
    }

    fn gemm_driver<T: Scalar, const MR: usize, const NR: usize>(
        alpha: T,
        a: &Mat<T>,
        b: &Mat<T>,
        beta: T,
        c: &mut Mat<T>,
    ) {
        let (m, k) = a.shape();
        let n = b.cols();
        assert_eq!(c.shape(), (m, n), "output shape mismatch");
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 || alpha == T::zero() {
            let data = c.as_mut_slice();
            if beta == T::zero() {
                data.iter_mut().for_each(|x| *x = T::zero());
            } else if beta != T::one() {
                scal(beta, data);
            }
            return;
        }

        let mut b_buf = vec![T::zero(); n.div_ceil(NR) * NR * k];
        pack_b::<T, NR>(b, alpha, k, n, &mut b_buf);

        let work = m * n * k;
        let slots = rayon::current_num_threads();
        let p = if work < PAR_THRESHOLD || slots == 1 {
            1
        } else {
            slots.min(m.div_ceil(4 * MR)).max(1)
        };

        if p == 1 {
            let c_data = c.as_mut_slice();
            strip_gemm::<T, MR, NR>(a, &b_buf, 0, m, k, n, |i0, j0, acc, mre, nre| {
                for jj in 0..nre {
                    let col = &mut c_data[(j0 + jj) * m + i0..(j0 + jj) * m + i0 + mre];
                    store_tile_col(col, &acc[jj][..mre], beta);
                }
            });
            return;
        }

        let h_strip = m.div_ceil(p).div_ceil(MR) * MR;
        let strips: Vec<(usize, usize)> = (0..m.div_ceil(h_strip))
            .map(|s| (s * h_strip, h_strip.min(m - s * h_strip)))
            .collect();
        let mut col_segs: Vec<Vec<&mut [T]>> =
            strips.iter().map(|_| Vec::with_capacity(n)).collect();
        let mut rest = c.as_mut_slice();
        for _ in 0..n {
            let (mut col, tail) = rest.split_at_mut(m);
            rest = tail;
            for (s, &(_, h)) in strips.iter().enumerate() {
                let (seg, col_tail) = col.split_at_mut(h);
                col_segs[s].push(seg);
                col = col_tail;
            }
        }
        let b_ref = &b_buf;
        strips
            .par_iter()
            .zip(col_segs.into_par_iter())
            .for_each(|(&(r0, h), mut segs)| {
                strip_gemm::<T, MR, NR>(a, b_ref, r0, h, k, n, |i0, j0, acc, mre, nre| {
                    for jj in 0..nre {
                        let col = &mut segs[j0 + jj][i0..i0 + mre];
                        store_tile_col(col, &acc[jj][..mre], beta);
                    }
                });
            });
    }

    /// The PR-3 `matmul_into`: 8×4 tiles for f64, 4×4 for Complex64,
    /// interleaved accumulators either way.
    pub fn matmul_into<T: Scalar>(alpha: T, a: &Mat<T>, b: &Mat<T>, beta: T, c: &mut Mat<T>) {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        if T::COMPONENTS >= 2 {
            gemm_driver::<T, 4, 4>(alpha, a, b, beta, c);
        } else {
            gemm_driver::<T, 8, 4>(alpha, a, b, beta, c);
        }
    }

    // -- PR-3 Gram product (4×4 dot tiles over PANEL chunks) --

    fn gram_chunk<T: Scalar>(
        a: &Mat<T>,
        b: &Mat<T>,
        mul: impl Fn(T, T) -> T + Copy,
        row0: usize,
        h: usize,
        out: &mut [T],
    ) {
        let kc = a.cols();
        let n = b.cols();
        let mut j0 = 0;
        while j0 < n {
            let nj = (n - j0).min(4);
            let mut i0 = 0;
            while i0 < kc {
                let ni = (kc - i0).min(4);
                if ni == 4 && nj == 4 {
                    let ac = [
                        &a.col(i0)[row0..row0 + h],
                        &a.col(i0 + 1)[row0..row0 + h],
                        &a.col(i0 + 2)[row0..row0 + h],
                        &a.col(i0 + 3)[row0..row0 + h],
                    ];
                    let bc = [
                        &b.col(j0)[row0..row0 + h],
                        &b.col(j0 + 1)[row0..row0 + h],
                        &b.col(j0 + 2)[row0..row0 + h],
                        &b.col(j0 + 3)[row0..row0 + h],
                    ];
                    let mut acc = [[T::zero(); 4]; 4];
                    for r in 0..h {
                        let av = [ac[0][r], ac[1][r], ac[2][r], ac[3][r]];
                        let bv = [bc[0][r], bc[1][r], bc[2][r], bc[3][r]];
                        for jj in 0..4 {
                            for ii in 0..4 {
                                acc[jj][ii] += mul(av[ii], bv[jj]);
                            }
                        }
                    }
                    for jj in 0..4 {
                        for ii in 0..4 {
                            out[(j0 + jj) * kc + i0 + ii] = acc[jj][ii];
                        }
                    }
                } else {
                    for jj in 0..nj {
                        let bj = &b.col(j0 + jj)[row0..row0 + h];
                        for ii in 0..ni {
                            let ai = &a.col(i0 + ii)[row0..row0 + h];
                            let mut acc = T::zero();
                            for r in 0..h {
                                acc += mul(ai[r], bj[r]);
                            }
                            out[(j0 + jj) * kc + i0 + ii] = acc;
                        }
                    }
                }
                i0 += ni;
            }
            j0 += nj;
        }
    }

    /// The PR-3 conjugated Gram product `AᴴB` with index-ordered
    /// partial folding.
    pub fn matmul_hn<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
        let (m, kc) = a.shape();
        let n = b.cols();
        let mul = |x: T, y: T| x.conj() * y;
        let mut out = Mat::zeros(kc, n);
        let work = m * n * kc;
        if work < PAR_THRESHOLD || m < 2 * PANEL {
            gram_chunk(a, b, mul, 0, m, out.as_mut_slice());
            return out;
        }
        let n_chunks = m.div_ceil(PANEL);
        let mut partials = vec![T::zero(); n_chunks * kc * n];
        let chunk_of = |p: usize, buf: &mut [T]| {
            let row0 = p * PANEL;
            gram_chunk(a, b, mul, row0, PANEL.min(m - row0), buf);
        };
        if rayon::current_num_threads() > 1 {
            let chunk_refs: Vec<(usize, &mut [T])> =
                partials.chunks_mut(kc * n).enumerate().collect();
            chunk_refs
                .into_par_iter()
                .for_each(|(p, buf)| chunk_of(p, buf));
        } else {
            for (p, buf) in partials.chunks_mut(kc * n).enumerate() {
                chunk_of(p, buf);
            }
        }
        let out_data = out.as_mut_slice();
        out_data.copy_from_slice(&partials[..kc * n]);
        for p in 1..n_chunks {
            for (o, x) in out_data.iter_mut().zip(&partials[p * kc * n..]) {
                *o += *x;
            }
        }
        out
    }
}

/// One benchmark result row.
struct Case {
    name: String,
    shape: String,
    secs_new: f64,
    secs_ref: f64,
    gflops: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        if self.secs_new > 0.0 {
            self.secs_ref / self.secs_new
        } else {
            0.0
        }
    }
}

/// Best-of-`reps` wall time of `f` per invocation, in seconds.
fn time_best(reps: usize, f: &mut dyn FnMut()) -> f64 {
    f(); // warm-up: pools, pack arenas, page faults
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn filled<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Mat<T> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) - 0.5
    };
    Mat::from_fn(rows, cols, |_, _| T::from_re(next()))
}

fn stencil_cases(smoke: bool, reps: usize, cases: &mut Vec<Case>) {
    let (dims, radius) = if smoke { (10, 2) } else { (30, 4) };
    let g = Grid3::new((dims, dims, dims), (0.45, 0.45, 0.45), Boundary::Periodic);
    let lap = Laplacian::new(g, radius);
    let refk = reference::RefStencil::from_laplacian(&lap);
    let n = g.len();
    for s in [8usize, 32] {
        let v = filled::<f64>(n, s, 0x5eed + s as u64);
        let mut out_new = Mat::zeros(n, s);
        let mut out_ref = Mat::zeros(n, s);
        let secs_new = time_best(reps, &mut || lap.apply_block(&v, &mut out_new));
        let secs_ref = time_best(reps, &mut || {
            for j in 0..s {
                refk.apply(v.col(j), out_ref.col_mut(j));
            }
        });
        // The SIMD path fuses `o += c·(p+m)` into one rounding, so the
        // PR-3 reference differs in the last ulps — compare to tolerance.
        assert!(
            out_new.max_abs_diff(&out_ref) <= 1e-10,
            "fused SIMD stencil diverged from the PR-3 reference"
        );
        let flops = lap.apply_flops_per_vector() as f64 * s as f64;
        cases.push(Case {
            name: format!("laplacian_block_f64_s{s}"),
            shape: format!("grid={dims}x{dims}x{dims} radius={radius} s={s}"),
            secs_new,
            secs_ref,
            gflops: flops / secs_new * 1e-9,
        });
    }
}

fn sternheimer_case(smoke: bool, reps: usize, cases: &mut Vec<Case>) {
    let spec = SiliconSpec {
        points_per_cell: if smoke { 5 } else { 15 },
        cells_z: 2,
        perturbation: 0.02,
        seed: 7,
        ..SiliconSpec::default()
    };
    let crystal = spec.build();
    let radius = if smoke { 2 } else { 4 };
    let ham = Hamiltonian::new(&crystal, radius, &PotentialParams::default());
    let (lambda, omega) = (0.3, 0.5);
    let op = SternheimerOperator::new(&ham, lambda, omega);
    let lap = ham.laplacian();
    let refk = reference::RefStencil::from_laplacian(lap);
    let g = lap.grid();
    let n = ham.dim();
    let s = 8usize;
    let v = filled::<C64>(n, s, 0xabcd);
    let mut out_new = Mat::zeros(n, s);
    let mut out_ref = Mat::zeros(n, s);
    let secs_new = time_best(reps, &mut || op.apply_block(&v, &mut out_new));
    // PR-3 path: per column, fused scalar stencil + Hamiltonian tail + shift
    let shift = C64::new(-lambda, omega);
    let secs_ref = time_best(reps, &mut || {
        for j in 0..s {
            let (x, o) = (v.col(j), out_ref.col_mut(j));
            refk.apply(x, o);
            for ((ov, &xv), &p) in o.iter_mut().zip(x.iter()).zip(ham.vloc().iter()) {
                *ov = ov.scale(-0.5) + xv.scale(p);
            }
            if let Some(nl) = ham.nonlocal() {
                nl.apply_add(x, o);
            }
            for (ov, &xv) in o.iter_mut().zip(x.iter()) {
                *ov += shift * xv;
            }
        }
    });
    assert!(
        out_new.max_abs_diff(&out_ref) <= 1e-10,
        "sternheimer block diverged from the PR-3 reference"
    );
    let flops = op.apply_flops() as f64 * s as f64;
    cases.push(Case {
        name: "sternheimer_block_c64_s8".into(),
        shape: format!(
            "grid={}x{}x{} radius={radius} s={s} lambda={lambda} omega={omega}",
            g.nx, g.ny, g.nz
        ),
        secs_new,
        secs_ref,
        gflops: flops / secs_new * 1e-9,
    });
}

fn gemm_cases(smoke: bool, reps: usize, cases: &mut Vec<Case>) {
    // Rayleigh–Ritz update shape: tall grid block times small subspace
    // matrix (`V·Q`, `P·β`), and the conjugated projection `VᴴW`.
    let (m, k) = if smoke { (4096, 32) } else { (27_000, 96) };
    let n = k;

    let a64 = filled::<f64>(m, k, 1);
    let b64 = filled::<f64>(k, n, 2);
    let mut c_new = Mat::zeros(m, n);
    let mut c_ref = Mat::zeros(m, n);
    let secs_new = time_best(reps, &mut || matmul_into(1.0, &a64, &b64, 0.0, &mut c_new));
    let secs_ref = time_best(reps, &mut || {
        reference::matmul_into(1.0, &a64, &b64, 0.0, &mut c_ref)
    });
    assert!(
        c_new.max_abs_diff(&c_ref) <= 1e-12 * k as f64,
        "f64 GEMM diverged from the PR-3 reference"
    );
    cases.push(Case {
        name: "gemm_nn_f64".into(),
        shape: format!("m={m} k={k} n={n}"),
        secs_new,
        secs_ref,
        gflops: 2.0 * (m * k * n) as f64 / secs_new * 1e-9,
    });

    let ac = filled::<C64>(m, k, 3);
    let bc = filled::<C64>(k, n, 4);
    let one = C64::new(1.0, 0.0);
    let zero = C64::new(0.0, 0.0);
    let mut cc_new = Mat::zeros(m, n);
    let mut cc_ref = Mat::zeros(m, n);
    let secs_new = time_best(reps, &mut || matmul_into(one, &ac, &bc, zero, &mut cc_new));
    let secs_ref = time_best(reps, &mut || {
        reference::matmul_into(one, &ac, &bc, zero, &mut cc_ref)
    });
    assert!(
        cc_new.max_abs_diff(&cc_ref) <= 1e-12 * k as f64,
        "C64 GEMM diverged from the PR-3 reference"
    );
    cases.push(Case {
        name: "gemm_nn_c64_rayleigh_ritz".into(),
        shape: format!("m={m} k={k} n={n}"),
        secs_new,
        secs_ref,
        gflops: 8.0 * (m * k * n) as f64 / secs_new * 1e-9,
    });

    // The Gram benchmark squares a block against itself (`VᴴV`), the
    // orthonormality-check shape.
    let mut g_new = Mat::zeros(k, n);
    let secs_new = time_best(reps, &mut || matmul_hn_into(&ac, &ac, &mut g_new));
    let secs_ref = time_best(reps, &mut || {
        let _ = reference::matmul_hn(&ac, &ac);
    });
    cases.push(Case {
        name: "gram_hn_c64".into(),
        shape: format!("m={m} k={k} n={k}"),
        secs_new,
        secs_ref,
        gflops: 8.0 * (m * k * k) as f64 / secs_new * 1e-9,
    });
}

/// The reduction suite: lane-split dispatched dot/norm/axpy/axpby versus
/// the PR-3 plain loops. The serial dependency chain in a scalar
/// reduction is the bottleneck the fixed lane split removes, so the dot
/// and norm cases are where the accumulation-tree redesign shows up.
fn reduce_cases(smoke: bool, cases: &mut Vec<Case>) {
    let n = if smoke { 1 << 14 } else { 1 << 21 };
    let reps = if smoke { 11 } else { 31 };
    let shape = format!("n={n}");

    // -- dot_t f64 --
    let x = filled::<f64>(n, 1, 0x11);
    let y = filled::<f64>(n, 1, 0x12);
    let (xs, ys) = (x.col(0), y.col(0));
    let d_new = vecops::dot_t(xs, ys);
    let d_ref = reference::dot_t(xs, ys);
    assert!((d_new - d_ref).abs() <= 1e-9 * d_ref.abs().max(1.0));
    let secs_new = time_best(reps, &mut || {
        black_box(vecops::dot_t(black_box(xs), black_box(ys)));
    });
    let secs_ref = time_best(reps, &mut || {
        black_box(reference::dot_t(black_box(xs), black_box(ys)));
    });
    cases.push(Case {
        name: "reduce_dot_t_f64".into(),
        shape: shape.clone(),
        secs_new,
        secs_ref,
        gflops: 2.0 * n as f64 / secs_new * 1e-9,
    });

    // -- dot_h c64 --
    let xc = filled::<C64>(n / 2, 1, 0x13);
    let yc = filled::<C64>(n / 2, 1, 0x14);
    let (xcs, ycs) = (xc.col(0), yc.col(0));
    let d_new = vecops::dot_h(xcs, ycs);
    let d_ref = reference::dot_h(xcs, ycs);
    assert!((d_new - d_ref).norm() <= 1e-9 * d_ref.norm().max(1.0));
    let secs_new = time_best(reps, &mut || {
        black_box(vecops::dot_h(black_box(xcs), black_box(ycs)));
    });
    let secs_ref = time_best(reps, &mut || {
        black_box(reference::dot_h(black_box(xcs), black_box(ycs)));
    });
    cases.push(Case {
        name: "reduce_dot_h_c64".into(),
        shape: format!("n={}", n / 2),
        secs_new,
        secs_ref,
        gflops: 8.0 * (n / 2) as f64 / secs_new * 1e-9,
    });

    // -- nrm2 f64 --
    let d_new = vecops::norm2(xs);
    let d_ref = reference::norm2(xs);
    assert!((d_new - d_ref).abs() <= 1e-9 * d_ref.max(1.0));
    let secs_new = time_best(reps, &mut || {
        black_box(vecops::norm2(black_box(xs)));
    });
    let secs_ref = time_best(reps, &mut || {
        black_box(reference::norm2(black_box(xs)));
    });
    cases.push(Case {
        name: "reduce_nrm2_f64".into(),
        shape: shape.clone(),
        secs_new,
        secs_ref,
        gflops: 2.0 * n as f64 / secs_new * 1e-9,
    });

    // -- axpy f64 (streaming update: both sides bandwidth-bound) --
    let mut y_new = y.clone();
    let mut y_ref = y.clone();
    vecops::axpy(0.5, xs, y_new.col_mut(0));
    reference::axpy(0.5, xs, y_ref.col_mut(0));
    assert!(y_new.max_abs_diff(&y_ref) <= 1e-12);
    let secs_new = time_best(reps, &mut || {
        vecops::axpy(black_box(0.5), black_box(xs), y_new.col_mut(0));
    });
    let secs_ref = time_best(reps, &mut || {
        reference::axpy(black_box(0.5), black_box(xs), y_ref.col_mut(0));
    });
    cases.push(Case {
        name: "reduce_axpy_f64".into(),
        shape: shape.clone(),
        secs_new,
        secs_ref,
        gflops: 2.0 * n as f64 / secs_new * 1e-9,
    });

    // -- axpby c64 (the xpay-style update inside COCG's recurrences) --
    let alpha = C64::new(0.3, -0.2);
    let beta = C64::new(0.5, 0.1);
    let mut w_new = yc.clone();
    let mut w_ref = yc.clone();
    vecops::axpby(alpha, xcs, beta, w_new.col_mut(0));
    reference::axpby(alpha, xcs, beta, w_ref.col_mut(0));
    assert!(w_new.max_abs_diff(&w_ref) <= 1e-12);
    let secs_new = time_best(reps, &mut || {
        vecops::axpby(
            black_box(alpha),
            black_box(xcs),
            black_box(beta),
            w_new.col_mut(0),
        );
    });
    let secs_ref = time_best(reps, &mut || {
        reference::axpby(
            black_box(alpha),
            black_box(xcs),
            black_box(beta),
            w_ref.col_mut(0),
        );
    });
    cases.push(Case {
        name: "reduce_axpby_c64".into(),
        shape: format!("n={}", n / 2),
        secs_new,
        secs_ref,
        gflops: 14.0 * (n / 2) as f64 / secs_new * 1e-9,
    });
}

// ---------------------------------------------------------------------
// JSON emission + validation (schema `mbrpa_schema::KERNELS_BENCH`)
// ---------------------------------------------------------------------

const SCHEMA: &str = mbrpa_schema::KERNELS_BENCH;

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

fn emit_json(cases: &[Case], dispatch: &str, threads: usize, smoke: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{SCHEMA}\",\"dispatch\":\"{dispatch}\",\"threads\":{threads},\"smoke\":{smoke},\"cases\":["
    ));
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"shape\":\"{}\",\"secs_new\":{},\"secs_ref\":{},\"speedup\":{},\"gflops\":{}}}",
            c.name,
            c.shape,
            json_f64(c.secs_new),
            json_f64(c.secs_ref),
            json_f64(c.speedup()),
            json_f64(c.gflops),
        ));
    }
    out.push_str("]}\n");
    out
}

/// Minimal JSON value for the hand-rolled validator.
#[derive(Debug)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            b: text.as_bytes(),
            pos: 0,
        }
    }
    fn ws(&mut self) {
        while self.pos < self.b.len() && (self.b[self.pos] as char).is_ascii_whitespace() {
            self.pos += 1;
        }
    }
    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.pos < self.b.len() && self.b[self.pos] == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }
    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.pos).copied()
    }
    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }
    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.b.len()
            && matches!(
                self.b[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while self.pos < self.b.len() {
            let c = self.b[self.pos];
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.b.get(self.pos).ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = std::str::from_utf8(
                                self.b.get(self.pos..self.pos + 4).ok_or("truncated \\u")?,
                            )
                            .map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(cp).ok_or("bad codepoint")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".into())
    }
    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Validate `text` against the `mbrpa.kernels-bench/2` schema.
fn validate(text: &str) -> Result<usize, String> {
    let mut p = Parser::new(text);
    let root = p.value()?;
    p.ws();
    if p.pos != p.b.len() {
        return Err("trailing garbage after JSON document".into());
    }
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field 'schema'")?;
    if schema != SCHEMA {
        return Err(format!("schema '{schema}', expected '{SCHEMA}'"));
    }
    let dispatch = root
        .get("dispatch")
        .and_then(Json::as_str)
        .ok_or("missing string field 'dispatch'")?;
    if !["scalar", "avx2", "neon"].contains(&dispatch) {
        return Err(format!("unknown 'dispatch' path '{dispatch}'"));
    }
    let threads = root
        .get("threads")
        .and_then(Json::as_num)
        .ok_or("missing numeric field 'threads'")?;
    if threads < 1.0 {
        return Err("'threads' must be >= 1".into());
    }
    root.get("smoke")
        .and_then(Json::as_bool)
        .ok_or("missing boolean field 'smoke'")?;
    let cases = match root.get("cases") {
        Some(Json::Arr(items)) if !items.is_empty() => items,
        Some(Json::Arr(_)) => return Err("'cases' must be non-empty".into()),
        _ => return Err("missing array field 'cases'".into()),
    };
    for (i, case) in cases.iter().enumerate() {
        for key in ["name", "shape"] {
            case.get(key)
                .and_then(Json::as_str)
                .ok_or(format!("case {i}: missing string field '{key}'"))?;
        }
        for key in ["secs_new", "secs_ref", "speedup", "gflops"] {
            let v = case
                .get(key)
                .and_then(Json::as_num)
                .ok_or(format!("case {i}: missing numeric field '{key}'"))?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("case {i}: '{key}' must be finite and >= 0"));
            }
        }
    }
    Ok(cases.len())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut smoke = false;
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut threads: Option<usize> = None;
    let mut validate_path: Option<String> = None;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = it.next().cloned().unwrap_or(out_path.clone()),
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()),
            "--validate" => validate_path = it.next().cloned(),
            other => eprintln!("(ignoring unknown flag {other})"),
        }
    }

    if let Some(path) = validate_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate(&text) {
            Ok(n) => println!("{path}: valid {SCHEMA} document ({n} cases)"),
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Resolve (and honor MBRPA_SIMD) before any kernel runs, so the
    // recorded dispatch is exactly what every case measured.
    let dispatch = match mbrpa_simd::init_from_env() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!("SIMD dispatch: {}", dispatch.name());

    let threads = threads.unwrap_or_else(rayon::current_num_threads);
    let reps = if smoke { 3 } else { 9 };
    // Stencil cases run in ~1 ms, so a best-of-7 is one scheduler blip
    // away from garbage; they get more samples for the same wall time.
    let stencil_reps = if smoke { 5 } else { 25 };
    let run = || {
        let mut cases: Vec<Case> = Vec::new();
        stencil_cases(smoke, stencil_reps, &mut cases);
        sternheimer_case(smoke, stencil_reps, &mut cases);
        gemm_cases(smoke, reps, &mut cases);
        reduce_cases(smoke, &mut cases);
        cases
    };
    let cases = mbrpa_bench::with_threads(threads, run);

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.shape.clone(),
                format!("{:.2}", c.secs_new * 1e3),
                format!("{:.2}", c.secs_ref * 1e3),
                format!("{:.2}x", c.speedup()),
                format!("{:.2}", c.gflops),
            ]
        })
        .collect();
    mbrpa_bench::print_table(
        &["kernel", "shape", "new [ms]", "ref [ms]", "speedup", "GF/s"],
        &rows,
    );

    let doc = emit_json(&cases, dispatch.name(), threads, smoke);
    if let Err(e) = validate(&doc) {
        eprintln!("internal error: emitted JSON failed validation: {e}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, &doc).expect("write BENCH json");
    println!("wrote {out_path} ({} cases, schema {SCHEMA})", cases.len());
}
