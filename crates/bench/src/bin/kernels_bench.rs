//! Micro-benchmarks of the hot kernels (fused stencil block applies,
//! packed register-blocked GEMM) against in-tree copies of the pre-PR
//! implementations, emitting a schema-versioned `BENCH_kernels.json`.
//!
//! Flags:
//!
//! * `--smoke` — tiny shapes (seconds, CI-friendly) instead of
//!   paper-relevant ones,
//! * `--out PATH` — output path (default `BENCH_kernels.json`),
//! * `--threads N` — rayon pool size for the "new" kernels,
//! * `--validate PATH` — parse PATH and check it against the
//!   `mbrpa.kernels-bench/1` schema, then exit (no benchmarks run).
//!
//! Every case records wall seconds for the new and reference kernels, the
//! speedup, the new kernel's scalar GFLOP/s, and full shape metadata, so
//! regressions are attributable without rerunning.

use mbrpa_dft::{Hamiltonian, PotentialParams, SiliconSpec, SternheimerOperator};
use mbrpa_grid::{Boundary, Grid3, Laplacian};
use mbrpa_linalg::{matmul_hn_into, matmul_into, Mat, Scalar, C64};
use std::time::Instant;

/// In-tree copies of the pre-PR kernels (multi-pass stencil apply,
/// axpy-panel GEMM, dot-product Gram) — the baselines the packed /
/// fused kernels replaced. Kept verbatim so the speedup column measures
/// the kernel rewrite, not incidental drift.
mod reference {
    use mbrpa_grid::{Boundary, Laplacian};
    use mbrpa_linalg::{vecops, Mat, Scalar};
    use rayon::prelude::*;

    const PANEL: usize = 512;
    const PAR_THRESHOLD: usize = 1 << 16;

    /// Stencil coefficients reconstructed from a [`Laplacian`]'s public
    /// surface, as the pre-PR four-pass `apply` consumed them.
    pub struct RefStencil {
        nx: usize,
        ny: usize,
        nz: usize,
        periodic: bool,
        radius: usize,
        cx: Vec<f64>,
        cy: Vec<f64>,
        cz: Vec<f64>,
        diag: f64,
    }

    impl RefStencil {
        pub fn from_laplacian(lap: &Laplacian) -> Self {
            let g = lap.grid();
            let w = mbrpa_grid::second_derivative_weights(lap.radius());
            let scale = |h: f64| -> Vec<f64> { w.iter().map(|c| c / (h * h)).collect() };
            let (cx, cy, cz) = (scale(g.hx), scale(g.hy), scale(g.hz));
            let diag = cx[0] + cy[0] + cz[0];
            Self {
                nx: g.nx,
                ny: g.ny,
                nz: g.nz,
                periodic: g.bc == Boundary::Periodic,
                radius: lap.radius(),
                cx,
                cy,
                cz,
                diag,
            }
        }

        /// The pre-PR `Laplacian::apply`: one full sweep per term family
        /// (diagonal, X, Y, Z), four-plus passes over `out`.
        pub fn apply<T: Scalar>(&self, v: &[T], out: &mut [T]) {
            let (nx, ny, nz) = (self.nx, self.ny, self.nz);
            let periodic = self.periodic;

            for (o, &x) in out.iter_mut().zip(v.iter()) {
                *o = x.scale(self.diag);
            }

            for line in 0..ny * nz {
                let base = line * nx;
                let vl = &v[base..base + nx];
                let ol = &mut out[base..base + nx];
                for t in 1..=self.radius {
                    let c = self.cx[t];
                    for i in t..nx - t {
                        ol[i] += (vl[i - t] + vl[i + t]).scale(c);
                    }
                    if periodic {
                        for i in 0..t {
                            ol[i] += (vl[i + nx - t] + vl[i + t]).scale(c);
                        }
                        for i in nx - t..nx {
                            ol[i] += (vl[i - t] + vl[i + t - nx]).scale(c);
                        }
                    } else {
                        for i in 0..t {
                            ol[i] += vl[i + t].scale(c);
                        }
                        for i in nx - t..nx {
                            ol[i] += vl[i - t].scale(c);
                        }
                    }
                }
            }

            let slice = nx * ny;
            for k in 0..nz {
                let sbase = k * slice;
                for t in 1..=self.radius {
                    let c = self.cy[t];
                    for j in 0..ny {
                        let obase = sbase + j * nx;
                        if j + t < ny || periodic {
                            let jp = (j + t) % ny;
                            let pbase = sbase + jp * nx;
                            for i in 0..nx {
                                let add = v[pbase + i].scale(c);
                                out[obase + i] += add;
                            }
                        }
                        if j >= t || periodic {
                            let jm = (j + ny - t) % ny;
                            let mbase = sbase + jm * nx;
                            for i in 0..nx {
                                let add = v[mbase + i].scale(c);
                                out[obase + i] += add;
                            }
                        }
                    }
                }
            }

            for t in 1..=self.radius {
                let c = self.cz[t];
                for k in 0..nz {
                    let obase = k * slice;
                    if k + t < nz || periodic {
                        let kp = (k + t) % nz;
                        let pbase = kp * slice;
                        for i in 0..slice {
                            let add = v[pbase + i].scale(c);
                            out[obase + i] += add;
                        }
                    }
                    if k >= t || periodic {
                        let km = (k + nz - t) % nz;
                        let mbase = km * slice;
                        for i in 0..slice {
                            let add = v[mbase + i].scale(c);
                            out[obase + i] += add;
                        }
                    }
                }
            }
        }
    }

    /// The pre-PR `matmul_into`: axpy-panel kernel, k passes over each
    /// output column panel, parallel path collecting owned panels and
    /// copying them back serially.
    pub fn matmul_into<T: Scalar>(alpha: T, a: &Mat<T>, b: &Mat<T>, beta: T, c: &mut Mat<T>) {
        let (m, k) = a.shape();
        let (kb, n) = b.shape();
        assert_eq!(k, kb, "inner dimension mismatch: {k} vs {kb}");
        assert_eq!(c.shape(), (m, n), "output shape mismatch");
        if m == 0 || n == 0 {
            return;
        }
        let work = m * n * k;
        let a_data = a.as_slice();
        let b_ref = b;

        let panel_op = |row0: usize, c_panel: &mut [T]| {
            let h = c_panel.len() / n;
            for j in 0..n {
                let cj = &mut c_panel[j * h..(j + 1) * h];
                if beta == T::zero() {
                    cj.iter_mut().for_each(|x| *x = T::zero());
                } else if beta != T::one() {
                    vecops::scal(beta, cj);
                }
                for l in 0..k {
                    let blj = alpha * b_ref[(l, j)];
                    if blj == T::zero() {
                        continue;
                    }
                    let al = &a_data[l * m + row0..l * m + row0 + h];
                    vecops::axpy(blj, al, cj);
                }
            }
        };

        if work < PAR_THRESHOLD || m < 2 * PANEL {
            let mut scratch = vec![T::zero(); PANEL.min(m) * n];
            let mut row0 = 0;
            while row0 < m {
                let h = PANEL.min(m - row0);
                for j in 0..n {
                    for i in 0..h {
                        scratch[j * h + i] = c[(row0 + i, j)];
                    }
                }
                panel_op(row0, &mut scratch[..h * n]);
                for j in 0..n {
                    for i in 0..h {
                        c[(row0 + i, j)] = scratch[j * h + i];
                    }
                }
                row0 += h;
            }
            return;
        }

        let n_panels = m.div_ceil(PANEL);
        let mut panels: Vec<Vec<T>> = (0..n_panels)
            .into_par_iter()
            .map(|p| {
                let row0 = p * PANEL;
                let h = PANEL.min(m - row0);
                let mut panel = vec![T::zero(); h * n];
                if beta != T::zero() {
                    for j in 0..n {
                        for i in 0..h {
                            panel[j * h + i] = c[(row0 + i, j)];
                        }
                    }
                }
                panel_op(row0, &mut panel);
                panel
            })
            .collect();

        for (p, panel) in panels.drain(..).enumerate() {
            let row0 = p * PANEL;
            let h = PANEL.min(m - row0);
            for j in 0..n {
                for i in 0..h {
                    c[(row0 + i, j)] = panel[j * h + i];
                }
            }
        }
    }

    /// The pre-PR conjugated Gram product `AᴴB` (dot-product panels).
    pub fn matmul_hn<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
        let (m, k) = a.shape();
        let (mb, n) = b.shape();
        assert_eq!(m, mb, "row dimension mismatch: {m} vs {mb}");
        let work = m * n * k;

        let chunk_contrib = |row0: usize, h: usize| -> Mat<T> {
            let mut local = Mat::zeros(k, n);
            for j in 0..n {
                let bj = &b.col(j)[row0..row0 + h];
                for i in 0..k {
                    let ai = &a.col(i)[row0..row0 + h];
                    local[(i, j)] += vecops::dot_h(ai, bj);
                }
            }
            local
        };

        if work < PAR_THRESHOLD || m < 2 * PANEL {
            return chunk_contrib(0, m);
        }
        let n_panels = m.div_ceil(PANEL);
        (0..n_panels)
            .into_par_iter()
            .map(|p| {
                let row0 = p * PANEL;
                let h = PANEL.min(m - row0);
                chunk_contrib(row0, h)
            })
            .reduce(
                || Mat::zeros(k, n),
                |mut acc, x| {
                    acc.axpy(T::one(), &x);
                    acc
                },
            )
    }
}

/// One benchmark result row.
struct Case {
    name: String,
    shape: String,
    secs_new: f64,
    secs_ref: f64,
    gflops: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        if self.secs_new > 0.0 {
            self.secs_ref / self.secs_new
        } else {
            0.0
        }
    }
}

/// Best-of-`reps` wall time of `f` per invocation, in seconds.
fn time_best(reps: usize, f: &mut dyn FnMut()) -> f64 {
    f(); // warm-up: pools, pack arenas, page faults
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn filled<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Mat<T> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) - 0.5
    };
    Mat::from_fn(rows, cols, |_, _| T::from_re(next()))
}

fn stencil_cases(smoke: bool, reps: usize, cases: &mut Vec<Case>) {
    let (dims, radius) = if smoke { (10, 2) } else { (30, 4) };
    let g = Grid3::new((dims, dims, dims), (0.45, 0.45, 0.45), Boundary::Periodic);
    let lap = Laplacian::new(g, radius);
    let refk = reference::RefStencil::from_laplacian(&lap);
    let n = g.len();
    for s in [8usize, 32] {
        let v = filled::<f64>(n, s, 0x5eed + s as u64);
        let mut out_new = Mat::zeros(n, s);
        let mut out_ref = Mat::zeros(n, s);
        let secs_new = time_best(reps, &mut || lap.apply_block(&v, &mut out_new));
        let secs_ref = time_best(reps, &mut || {
            for j in 0..s {
                refk.apply(v.col(j), out_ref.col_mut(j));
            }
        });
        assert_eq!(out_new, out_ref, "fused stencil diverged from reference");
        let flops = lap.apply_flops_per_vector() as f64 * s as f64;
        cases.push(Case {
            name: format!("laplacian_block_f64_s{s}"),
            shape: format!("grid={dims}x{dims}x{dims} radius={radius} s={s}"),
            secs_new,
            secs_ref,
            gflops: flops / secs_new * 1e-9,
        });
    }
}

fn sternheimer_case(smoke: bool, reps: usize, cases: &mut Vec<Case>) {
    let spec = SiliconSpec {
        points_per_cell: if smoke { 5 } else { 15 },
        cells_z: 2,
        perturbation: 0.02,
        seed: 7,
        ..SiliconSpec::default()
    };
    let crystal = spec.build();
    let radius = if smoke { 2 } else { 4 };
    let ham = Hamiltonian::new(&crystal, radius, &PotentialParams::default());
    let (lambda, omega) = (0.3, 0.5);
    let op = SternheimerOperator::new(&ham, lambda, omega);
    let lap = ham.laplacian();
    let refk = reference::RefStencil::from_laplacian(lap);
    let g = lap.grid();
    let n = ham.dim();
    let s = 8usize;
    let v = filled::<C64>(n, s, 0xabcd);
    let mut out_new = Mat::zeros(n, s);
    let mut out_ref = Mat::zeros(n, s);
    let secs_new = time_best(reps, &mut || op.apply_block(&v, &mut out_new));
    // pre-PR path: per column, four-pass stencil + Hamiltonian tail + shift
    let shift = C64::new(-lambda, omega);
    let secs_ref = time_best(reps, &mut || {
        for j in 0..s {
            let (x, o) = (v.col(j), out_ref.col_mut(j));
            refk.apply(x, o);
            for ((ov, &xv), &p) in o.iter_mut().zip(x.iter()).zip(ham.vloc().iter()) {
                *ov = ov.scale(-0.5) + xv.scale(p);
            }
            if let Some(nl) = ham.nonlocal() {
                nl.apply_add(x, o);
            }
            for (ov, &xv) in o.iter_mut().zip(x.iter()) {
                *ov += shift * xv;
            }
        }
    });
    assert_eq!(
        out_new, out_ref,
        "sternheimer block diverged from reference"
    );
    let flops = op.apply_flops() as f64 * s as f64;
    cases.push(Case {
        name: "sternheimer_block_c64_s8".into(),
        shape: format!(
            "grid={}x{}x{} radius={radius} s={s} lambda={lambda} omega={omega}",
            g.nx, g.ny, g.nz
        ),
        secs_new,
        secs_ref,
        gflops: flops / secs_new * 1e-9,
    });
}

fn gemm_cases(smoke: bool, reps: usize, cases: &mut Vec<Case>) {
    // Rayleigh–Ritz update shape: tall grid block times small subspace
    // matrix (`V·Q`, `P·β`), and the conjugated projection `VᴴW`.
    let (m, k) = if smoke { (4096, 32) } else { (27_000, 96) };
    let n = k;

    let a64 = filled::<f64>(m, k, 1);
    let b64 = filled::<f64>(k, n, 2);
    let mut c_new = Mat::zeros(m, n);
    let mut c_ref = Mat::zeros(m, n);
    let secs_new = time_best(reps, &mut || matmul_into(1.0, &a64, &b64, 0.0, &mut c_new));
    let secs_ref = time_best(reps, &mut || {
        reference::matmul_into(1.0, &a64, &b64, 0.0, &mut c_ref)
    });
    assert!(
        c_new.max_abs_diff(&c_ref) <= 1e-12 * k as f64,
        "f64 GEMM diverged from reference"
    );
    cases.push(Case {
        name: "gemm_nn_f64".into(),
        shape: format!("m={m} k={k} n={n}"),
        secs_new,
        secs_ref,
        gflops: 2.0 * (m * k * n) as f64 / secs_new * 1e-9,
    });

    let ac = filled::<C64>(m, k, 3);
    let bc = filled::<C64>(k, n, 4);
    let one = C64::new(1.0, 0.0);
    let zero = C64::new(0.0, 0.0);
    let mut cc_new = Mat::zeros(m, n);
    let mut cc_ref = Mat::zeros(m, n);
    let secs_new = time_best(reps, &mut || matmul_into(one, &ac, &bc, zero, &mut cc_new));
    let secs_ref = time_best(reps, &mut || {
        reference::matmul_into(one, &ac, &bc, zero, &mut cc_ref)
    });
    assert!(
        cc_new.max_abs_diff(&cc_ref) <= 1e-12 * k as f64,
        "C64 GEMM diverged from reference"
    );
    cases.push(Case {
        name: "gemm_nn_c64_rayleigh_ritz".into(),
        shape: format!("m={m} k={k} n={n}"),
        secs_new,
        secs_ref,
        gflops: 8.0 * (m * k * n) as f64 / secs_new * 1e-9,
    });

    // The Gram benchmark squares a block against itself (`VᴴV`), the
    // orthonormality-check shape.
    let mut g_new = Mat::zeros(k, n);
    let secs_new = time_best(reps, &mut || matmul_hn_into(&ac, &ac, &mut g_new));
    let secs_ref = time_best(reps, &mut || {
        let _ = reference::matmul_hn(&ac, &ac);
    });
    cases.push(Case {
        name: "gram_hn_c64".into(),
        shape: format!("m={m} k={k} n={k}"),
        secs_new,
        secs_ref,
        gflops: 8.0 * (m * k * k) as f64 / secs_new * 1e-9,
    });
}

// ---------------------------------------------------------------------
// JSON emission + validation (schema "mbrpa.kernels-bench/1")
// ---------------------------------------------------------------------

const SCHEMA: &str = "mbrpa.kernels-bench/1";

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

fn emit_json(cases: &[Case], threads: usize, smoke: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{SCHEMA}\",\"threads\":{threads},\"smoke\":{smoke},\"cases\":["
    ));
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"shape\":\"{}\",\"secs_new\":{},\"secs_ref\":{},\"speedup\":{},\"gflops\":{}}}",
            c.name,
            c.shape,
            json_f64(c.secs_new),
            json_f64(c.secs_ref),
            json_f64(c.speedup()),
            json_f64(c.gflops),
        ));
    }
    out.push_str("]}\n");
    out
}

/// Minimal JSON value for the hand-rolled validator.
#[derive(Debug)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            b: text.as_bytes(),
            pos: 0,
        }
    }
    fn ws(&mut self) {
        while self.pos < self.b.len() && (self.b[self.pos] as char).is_ascii_whitespace() {
            self.pos += 1;
        }
    }
    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.pos < self.b.len() && self.b[self.pos] == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }
    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.pos).copied()
    }
    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }
    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.b.len()
            && matches!(
                self.b[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while self.pos < self.b.len() {
            let c = self.b[self.pos];
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.b.get(self.pos).ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = std::str::from_utf8(
                                self.b.get(self.pos..self.pos + 4).ok_or("truncated \\u")?,
                            )
                            .map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(cp).ok_or("bad codepoint")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".into())
    }
    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Validate `text` against the `mbrpa.kernels-bench/1` schema.
fn validate(text: &str) -> Result<usize, String> {
    let mut p = Parser::new(text);
    let root = p.value()?;
    p.ws();
    if p.pos != p.b.len() {
        return Err("trailing garbage after JSON document".into());
    }
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field 'schema'")?;
    if schema != SCHEMA {
        return Err(format!("schema '{schema}', expected '{SCHEMA}'"));
    }
    let threads = root
        .get("threads")
        .and_then(Json::as_num)
        .ok_or("missing numeric field 'threads'")?;
    if threads < 1.0 {
        return Err("'threads' must be >= 1".into());
    }
    root.get("smoke")
        .and_then(Json::as_bool)
        .ok_or("missing boolean field 'smoke'")?;
    let cases = match root.get("cases") {
        Some(Json::Arr(items)) if !items.is_empty() => items,
        Some(Json::Arr(_)) => return Err("'cases' must be non-empty".into()),
        _ => return Err("missing array field 'cases'".into()),
    };
    for (i, case) in cases.iter().enumerate() {
        for key in ["name", "shape"] {
            case.get(key)
                .and_then(Json::as_str)
                .ok_or(format!("case {i}: missing string field '{key}'"))?;
        }
        for key in ["secs_new", "secs_ref", "speedup", "gflops"] {
            let v = case
                .get(key)
                .and_then(Json::as_num)
                .ok_or(format!("case {i}: missing numeric field '{key}'"))?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("case {i}: '{key}' must be finite and >= 0"));
            }
        }
    }
    Ok(cases.len())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut smoke = false;
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut threads: Option<usize> = None;
    let mut validate_path: Option<String> = None;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = it.next().cloned().unwrap_or(out_path.clone()),
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()),
            "--validate" => validate_path = it.next().cloned(),
            other => eprintln!("(ignoring unknown flag {other})"),
        }
    }

    if let Some(path) = validate_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate(&text) {
            Ok(n) => println!("{path}: valid {SCHEMA} document ({n} cases)"),
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let threads = threads.unwrap_or_else(rayon::current_num_threads);
    let reps = if smoke { 3 } else { 7 };
    let run = || {
        let mut cases: Vec<Case> = Vec::new();
        stencil_cases(smoke, reps, &mut cases);
        sternheimer_case(smoke, reps, &mut cases);
        gemm_cases(smoke, reps, &mut cases);
        cases
    };
    let cases = mbrpa_bench::with_threads(threads, run);

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.shape.clone(),
                format!("{:.2}", c.secs_new * 1e3),
                format!("{:.2}", c.secs_ref * 1e3),
                format!("{:.2}x", c.speedup()),
                format!("{:.2}", c.gflops),
            ]
        })
        .collect();
    mbrpa_bench::print_table(
        &["kernel", "shape", "new [ms]", "ref [ms]", "speedup", "GF/s"],
        &rows,
    );

    let doc = emit_json(&cases, threads, smoke);
    if let Err(e) = validate(&doc) {
        eprintln!("internal error: emitted JSON failed validation: {e}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, &doc).expect("write BENCH json");
    println!("wrote {out_path} ({} cases, schema {SCHEMA})", cases.len());
}
