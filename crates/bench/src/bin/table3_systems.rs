//! Regenerates **Table III** of the paper: the experimental system ladder
//! (`n_d`, `n_s`, `n_eig` per system), at both the paper scale and the
//! scaled defaults used by the other harnesses.

use mbrpa_bench::{print_table, HarnessOptions};
use mbrpa_dft::{silicon_ladder, SiliconSpec};

fn main() {
    let opts = HarnessOptions::from_args();
    let max_cells = opts.cells.unwrap_or(5);

    println!("Table III (paper scale: 15³ points/cell, 96 eigs/atom)\n");
    let paper_ladder = silicon_ladder(SiliconSpec::paper_scale(1), max_cells);
    let rows: Vec<Vec<String>> = paper_ladder
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                c.n_grid().to_string(),
                c.n_occupied().to_string(),
                (c.atoms.len() * 96).to_string(),
            ]
        })
        .collect();
    print_table(&["System", "n_d", "n_s", "n_eig"], &rows);

    println!(
        "\nScaled ladder used by the default harness runs ({}³ points/cell, {} eigs/atom)\n",
        opts.points_per_cell(),
        opts.eig_per_atom()
    );
    let scaled = silicon_ladder(
        SiliconSpec {
            points_per_cell: opts.points_per_cell(),
            ..SiliconSpec::default()
        },
        max_cells,
    );
    let rows: Vec<Vec<String>> = scaled
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                c.n_grid().to_string(),
                c.n_occupied().to_string(),
                (c.atoms.len() * opts.eig_per_atom()).to_string(),
            ]
        })
        .collect();
    print_table(&["System", "n_d", "n_s", "n_eig"], &rows);
}
