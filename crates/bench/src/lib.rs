//! Shared infrastructure for the figure/table regeneration harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index). All harnesses default to a
//! laptop-scale system ladder (6³ grid points per 8-atom cell, 8
//! `νχ⁰`-eigenvalues per atom) and accept:
//!
//! * `--paper-scale` — the paper's 15³ points/cell and 96 eigs/atom
//!   (hours of runtime; intended for cluster-class machines),
//! * `--cells N` — ladder depth (default varies per harness),
//! * `--threads N` — rayon worker threads (defaults to all cores).

#![warn(missing_docs)]

use mbrpa_core::{KsSolver, RpaConfig, RpaSetup};
use mbrpa_dft::{ChefsiOptions, PotentialParams, SiliconSpec};

/// Parsed common command-line options.
#[derive(Clone, Copy, Debug)]
pub struct HarnessOptions {
    /// Use the paper's full-scale parameters.
    pub paper_scale: bool,
    /// Override the cell count.
    pub cells: Option<usize>,
    /// Override the rayon thread count.
    pub threads: Option<usize>,
}

impl HarnessOptions {
    /// Parse from `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = Self {
            paper_scale: false,
            cells: None,
            threads: None,
        };
        let mut it = args.iter().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--paper-scale" => opts.paper_scale = true,
                "--cells" => {
                    opts.cells = it.next().and_then(|v| v.parse().ok());
                }
                "--threads" => {
                    opts.threads = it.next().and_then(|v| v.parse().ok());
                }
                other => eprintln!("(ignoring unknown flag {other})"),
            }
        }
        opts
    }

    /// Grid points per cell for this run.
    pub fn points_per_cell(&self) -> usize {
        if self.paper_scale {
            15
        } else {
            6
        }
    }

    /// `νχ⁰` eigenvalues per atom for this run.
    pub fn eig_per_atom(&self) -> usize {
        if self.paper_scale {
            96
        } else {
            8
        }
    }
}

/// The crystal spec of the scaled Table III ladder entry with `cells`
/// replicated cells.
pub fn ladder_spec(cells: usize, points_per_cell: usize) -> SiliconSpec {
    SiliconSpec {
        points_per_cell,
        cells_z: cells,
        perturbation: 0.02,
        seed: 7,
        ..SiliconSpec::default()
    }
}

/// Prepare the full RPA setup (KS stage included) for a ladder entry.
/// Small systems use the dense KS path (exact); larger ones CheFSI.
pub fn prepare_ladder_system(cells: usize, points_per_cell: usize) -> RpaSetup {
    let crystal = ladder_spec(cells, points_per_cell).build();
    let n_d = crystal.n_grid();
    let solver = if n_d <= 1000 {
        KsSolver::Dense { extra: 4 }
    } else {
        KsSolver::Chefsi(ChefsiOptions {
            tol: 1e-8,
            ..ChefsiOptions::default()
        })
    };
    RpaSetup::prepare(crystal, &PotentialParams::default(), 2, solver)
        .expect("KS preparation failed")
}

/// Table-I-style configuration for a ladder system.
pub fn ladder_config(atoms: usize, eig_per_atom: usize, workers: usize) -> RpaConfig {
    RpaConfig {
        n_eig: atoms * eig_per_atom,
        n_workers: workers.max(1).min(atoms * eig_per_atom),
        ..RpaConfig::default()
    }
}

/// Run a closure inside a rayon pool of `threads` threads.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("rayon pool")
        .install(f)
}

/// Least-squares slope of `ln y` vs `ln x` (complexity exponent fits).
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (sx, sy, sxx, sxy) = points.iter().fold((0.0, 0.0, 0.0, 0.0), |acc, &(x, y)| {
        let (lx, ly) = (x.ln(), y.ln());
        (acc.0 + lx, acc.1 + ly, acc.2 + lx * lx, acc.3 + lx * ly)
    });
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Markdown-ish table printer used by all harnesses.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loglog_slope_recovers_cubic() {
        let pts: Vec<(f64, f64)> = (1..6)
            .map(|i| {
                let x = i as f64 * 100.0;
                (x, 2.5 * x.powi(3))
            })
            .collect();
        let slope = loglog_slope(&pts);
        assert!((slope - 3.0).abs() < 1e-10);
    }

    #[test]
    fn ladder_spec_scales() {
        let s = ladder_spec(3, 6);
        let c = s.build();
        assert_eq!(c.atoms.len(), 24);
        assert_eq!(c.n_grid(), 6 * 6 * 18);
    }

    #[test]
    fn harness_defaults() {
        let o = HarnessOptions {
            paper_scale: false,
            cells: None,
            threads: None,
        };
        assert_eq!(o.points_per_cell(), 6);
        assert_eq!(o.eig_per_atom(), 8);
        let p = HarnessOptions {
            paper_scale: true,
            ..o
        };
        assert_eq!(p.points_per_cell(), 15);
        assert_eq!(p.eig_per_atom(), 96);
    }
}
