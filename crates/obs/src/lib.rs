//! # mbrpa-obs — telemetry for the solver stack
//!
//! A zero-dependency observability layer shared by the whole workspace:
//!
//! * **Spans** — hierarchical scoped wall-clock timers. [`span`] returns a
//!   guard; nested guards build `/`-separated paths
//!   (`rpa/omega[3]/chebyshev/apply`) which are aggregated per path.
//! * **Counters** — named monotonically increasing totals
//!   (stencil applies, GEMM calls, matvecs, deflation events).
//! * **Series** — bounded append-only lists of scalar samples
//!   (per-orbital Sternheimer iteration counts).
//! * **Traces** — bounded sets of per-iteration histories
//!   (block-COCG residual descent per solve, subspace-iteration error).
//!
//! All sinks are **thread-aware**: each thread accumulates into a
//! thread-local buffer which is merged into the global sink when the
//! thread's outermost span closes, or explicitly via [`flush_thread`]
//! (call it at the end of worker-pool closures, which never own a root
//! span). When telemetry is disabled — the default — every entry point is
//! a single relaxed atomic load and an early return, so instrumented hot
//! paths cost nothing measurable.
//!
//! A worker thread can label its flat metrics with a *context*
//! ([`set_context`], e.g. `omega[3]`) so that per-frequency data recorded
//! deep inside the thread pool stays attributable to its frequency.
//!
//! [`report`] snapshots everything into a [`Report`], which serialises to
//! versioned JSON ([`Report::to_json`], schema documented in DESIGN.md)
//! and renders a human-readable summary table ([`Report::summary_table`]).
//!
//! ```
//! mbrpa_obs::reset();
//! mbrpa_obs::set_enabled(true);
//! {
//!     let _root = mbrpa_obs::span("work");
//!     let _inner = mbrpa_obs::span("kernel");
//!     mbrpa_obs::add("kernel.calls", 1);
//! }
//! let report = mbrpa_obs::report();
//! assert_eq!(report.counter("kernel.calls"), 1);
//! assert!(report.span_total("work/kernel") <= report.span_total("work"));
//! mbrpa_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Version of the JSON report layout emitted by [`Report::to_json`].
/// Bump on any backwards-incompatible change and document it in DESIGN.md.
/// v2: added the top-level `dispatch` member (active SIMD path or null)
/// and split reduction FLOPs out of `linalg.gemm_flops` into the
/// `solver.reduce.*` counters.
pub const SCHEMA_VERSION: u32 = 2;

/// Maximum samples retained per series; later samples only bump a
/// `dropped` count so unbounded loops cannot exhaust memory.
pub const SERIES_CAP: usize = 4096;

/// Maximum number of traces retained per trace name.
pub const TRACE_CAP: usize = 8;

/// Maximum points retained per individual trace (prefix is kept).
pub const TRACE_LEN_CAP: usize = 512;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<Global>> = Mutex::new(None);
/// Active SIMD dispatch label (e.g. `"avx2"`), set once by the binary
/// after it resolves the path. Kept outside the resettable sink so a
/// [`reset`] between configuration and the run cannot lose it.
static DISPATCH: Mutex<Option<String>> = Mutex::new(None);

/// Record the active SIMD dispatch path so every subsequent [`Report`]
/// (and its JSON/`summary_table` renderings) is tagged with it. This
/// crate stays dependency-free: the resolved name is pushed in by the
/// binaries rather than queried from the SIMD layer.
pub fn set_dispatch(label: &str) {
    let mut guard = DISPATCH.lock().unwrap_or_else(|p| p.into_inner());
    *guard = Some(label.to_string());
}

/// The SIMD dispatch label recorded via [`set_dispatch`], if any.
pub fn dispatch() -> Option<String> {
    DISPATCH.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

#[derive(Default)]
struct Sink {
    spans: HashMap<String, SpanStat>,
    counters: HashMap<String, u64>,
    series: HashMap<String, Series>,
    traces: HashMap<String, TraceSet>,
}

struct Global {
    epoch: Instant,
    sink: Sink,
}

#[derive(Clone, Copy, Default)]
struct SpanStat {
    total_ns: u128,
    count: u64,
}

#[derive(Clone, Default)]
struct Series {
    values: Vec<f64>,
    dropped: u64,
}

#[derive(Clone, Default)]
struct TraceSet {
    traces: Vec<Trace>,
    dropped_traces: u64,
}

#[derive(Clone)]
struct Trace {
    label: String,
    points: Vec<f64>,
    truncated: u64,
}

#[derive(Default)]
struct Local {
    stack: Vec<String>,
    context: Option<String>,
    sink: Sink,
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::default());
}

impl Sink {
    fn merge_into(&mut self, other: &mut Sink) {
        for (path, stat) in self.spans.drain() {
            let e = other.spans.entry(path).or_default();
            e.total_ns += stat.total_ns;
            e.count += stat.count;
        }
        for (name, n) in self.counters.drain() {
            *other.counters.entry(name).or_default() += n;
        }
        for (name, mut s) in self.series.drain() {
            let e = other.series.entry(name).or_default();
            for v in s.values.drain(..) {
                if e.values.len() < SERIES_CAP {
                    e.values.push(v);
                } else {
                    e.dropped += 1;
                }
            }
            e.dropped += s.dropped;
        }
        for (name, mut set) in self.traces.drain() {
            let e = other.traces.entry(name).or_default();
            for t in set.traces.drain(..) {
                if e.traces.len() < TRACE_CAP {
                    e.traces.push(t);
                } else {
                    e.dropped_traces += 1;
                }
            }
            e.dropped_traces += set.dropped_traces;
        }
    }
}

fn with_global<R>(f: impl FnOnce(&mut Global) -> R) -> R {
    let mut guard = GLOBAL.lock().unwrap_or_else(|p| p.into_inner());
    let global = guard.get_or_insert_with(|| Global {
        epoch: Instant::now(),
        sink: Sink::default(),
    });
    f(global)
}

/// Turn the telemetry sink on or off. Enabling (re)starts the wall-clock
/// epoch used for [`Report::total_wall_s`] if no data has been recorded yet.
pub fn set_enabled(on: bool) {
    if on {
        with_global(|_| ());
    }
    // ord: Relaxed — ENABLED only gates whether telemetry is recorded; the
    // data itself is published under the sink mutex
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the sink is currently enabled.
pub fn enabled() -> bool {
    // ord: Relaxed — gate flag only (see `set_enabled`); a stale read skips
    // or records one extra sample, never corrupts data
    ENABLED.load(Ordering::Relaxed)
}

/// Discard all recorded data (global and this thread's buffer) and restart
/// the wall-clock epoch. Call between independent measurement phases; other
/// threads' buffers are already empty if they ended with [`flush_thread`].
pub fn reset() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.sink = Sink::default();
        l.stack.clear();
        l.context = None;
    });
    let mut guard = GLOBAL.lock().unwrap_or_else(|p| p.into_inner());
    *guard = Some(Global {
        epoch: Instant::now(),
        sink: Sink::default(),
    });
}

/// RAII guard for a scoped timer; created by [`span`]. Dropping the guard
/// records the elapsed wall time under the span's full `/`-joined path.
#[must_use = "a span measures the scope it is alive in; bind it to a variable"]
pub struct SpanGuard {
    start: Option<Instant>,
    path: Option<String>,
}

/// Open a scoped timer named `name` nested under the innermost span still
/// open on this thread. No-op (and allocation-free) when disabled.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            start: None,
            path: None,
        };
    }
    let path = LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let path = match l.stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        l.stack.push(path.clone());
        path
    });
    SpanGuard {
        start: Some(Instant::now()),
        path: Some(path),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(start), Some(path)) = (self.start, self.path.take()) else {
            return;
        };
        let elapsed = start.elapsed().as_nanos();
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            // Pop our own path even if an inner guard leaked past us.
            while let Some(top) = l.stack.pop() {
                if top == path {
                    break;
                }
            }
            let stat = l.sink.spans.entry(path).or_default();
            stat.total_ns += elapsed;
            stat.count += 1;
            if l.stack.is_empty() {
                let mut sink = std::mem::take(&mut l.sink);
                drop(l);
                with_global(|g| sink.merge_into(&mut g.sink));
            }
        });
    }
}

/// Merge this thread's buffered data into the global sink without waiting
/// for a root span to close. Call at the end of thread-pool worker
/// closures, whose threads outlive any span scope.
pub fn flush_thread() {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let mut sink = std::mem::take(&mut l.sink);
        drop(l);
        with_global(|g| sink.merge_into(&mut g.sink));
    });
}

/// Label subsequently recorded *contextual* metrics ([`add_ctx`],
/// [`record_ctx`]) on this thread with `label`, e.g. `omega[3]`.
pub fn set_context(label: &str) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| l.borrow_mut().context = Some(label.to_string()));
}

/// Clear the context label set by [`set_context`].
pub fn clear_context() {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| l.borrow_mut().context = None);
}

/// The current thread's context label, if any.
pub fn context_label() -> Option<String> {
    if !enabled() {
        return None;
    }
    LOCAL.with(|l| l.borrow().context.clone())
}

/// Increment counter `name` by `n`.
pub fn add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        *l.sink.counters.entry(name.to_string()).or_default() += n;
    });
}

/// Increment counter `name` by `n`, prefixing the thread's context label
/// (`ctx/name`) when one is set, so per-frequency totals stay separable.
pub fn add_ctx(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let key = match &l.context {
            Some(c) => format!("{c}/{name}"),
            None => name.to_string(),
        };
        *l.sink.counters.entry(key).or_default() += n;
    });
}

/// Append sample `value` to the bounded series `name`.
pub fn record(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    record_key(name.to_string(), value);
}

/// Append sample `value` to series `name`, prefixing the thread's context
/// label when one is set.
pub fn record_ctx(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let key = LOCAL.with(|l| match &l.borrow().context {
        Some(c) => format!("{c}/{name}"),
        None => name.to_string(),
    });
    record_key(key, value);
}

fn record_key(key: String, value: f64) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let s = l.sink.series.entry(key).or_default();
        if s.values.len() < SERIES_CAP {
            s.values.push(value);
        } else {
            s.dropped += 1;
        }
    });
}

/// Record a complete per-iteration history under trace name `name` with a
/// human-readable `label` (e.g. `omega[3]`). At most [`TRACE_CAP`] traces
/// are kept per name and each keeps its first [`TRACE_LEN_CAP`] points.
pub fn record_trace(name: &str, label: &str, points: &[f64]) {
    if !enabled() {
        return;
    }
    let keep = points.len().min(TRACE_LEN_CAP);
    let trace = Trace {
        label: label.to_string(),
        points: points[..keep].to_vec(),
        truncated: (points.len() - keep) as u64,
    };
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let set = l.sink.traces.entry(name.to_string()).or_default();
        if set.traces.len() < TRACE_CAP {
            set.traces.push(trace);
        } else {
            set.dropped_traces += 1;
        }
    });
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Aggregated wall time of one span path.
#[derive(Clone, Debug)]
pub struct SpanEntry {
    /// Full `/`-joined path, e.g. `rpa/omega[3]/chebyshev/apply`.
    pub path: String,
    /// Total (inclusive) seconds spent under this path.
    pub total_s: f64,
    /// Number of times the span was entered.
    pub count: u64,
}

/// A bounded scalar series in a [`Report`].
#[derive(Clone, Debug)]
pub struct SeriesEntry {
    /// Series name, context-prefixed when recorded via [`record_ctx`].
    pub name: String,
    /// Retained samples (at most [`SERIES_CAP`]).
    pub values: Vec<f64>,
    /// Samples discarded after the cap was reached.
    pub dropped: u64,
}

/// One recorded per-iteration history in a [`Report`].
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Trace name shared by related histories, e.g. `cocg.residual`.
    pub name: String,
    /// Caller-supplied label distinguishing this history, e.g. `omega[3]`.
    pub label: String,
    /// Retained points (at most [`TRACE_LEN_CAP`], prefix of the history).
    pub points: Vec<f64>,
    /// Points beyond the cap that were discarded from this history.
    pub truncated: u64,
    /// Whole histories under `name` discarded after [`TRACE_CAP`].
    pub dropped_traces: u64,
}

/// Immutable snapshot of everything recorded since the last [`reset`].
#[derive(Clone, Debug)]
pub struct Report {
    /// JSON layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Owning job id when the snapshot was taken via [`report_tagged`]
    /// (a serving daemon attributing a profile to one queued job);
    /// `None` for untagged CLI-style runs.
    pub job: Option<String>,
    /// Active SIMD dispatch path (`"scalar"`, `"avx2"`, `"neon"`) as
    /// recorded by [`set_dispatch`]; `None` when the binary never
    /// resolved one (library tests, embedded use).
    pub dispatch: Option<String>,
    /// Wall-clock seconds since the sink was created or [`reset`].
    pub total_wall_s: f64,
    /// Span aggregates sorted by path.
    pub spans: Vec<SpanEntry>,
    /// Counter totals sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Bounded series sorted by name.
    pub series: Vec<SeriesEntry>,
    /// Per-iteration histories sorted by name (insertion order within).
    pub traces: Vec<TraceEntry>,
}

/// Snapshot the global sink (after merging this thread's buffer) into a
/// [`Report`]. Does not clear anything; call [`reset`] for that.
pub fn report() -> Report {
    flush_thread();
    with_global(|g| {
        let mut spans: Vec<SpanEntry> = g
            .sink
            .spans
            .iter()
            .map(|(path, s)| SpanEntry {
                path: path.clone(),
                total_s: s.total_ns as f64 * 1e-9,
                count: s.count,
            })
            .collect();
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        let mut counters: Vec<(String, u64)> = g
            .sink
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut series: Vec<SeriesEntry> = g
            .sink
            .series
            .iter()
            .map(|(name, s)| SeriesEntry {
                name: name.clone(),
                values: s.values.clone(),
                dropped: s.dropped,
            })
            .collect();
        series.sort_by(|a, b| a.name.cmp(&b.name));
        let mut traces: Vec<TraceEntry> = Vec::new();
        let mut names: Vec<&String> = g.sink.traces.keys().collect();
        names.sort();
        for name in names {
            let set = &g.sink.traces[name];
            for t in &set.traces {
                traces.push(TraceEntry {
                    name: name.clone(),
                    label: t.label.clone(),
                    points: t.points.clone(),
                    truncated: t.truncated,
                    dropped_traces: set.dropped_traces,
                });
            }
        }
        Report {
            schema_version: SCHEMA_VERSION,
            job: None,
            dispatch: dispatch(),
            total_wall_s: g.epoch.elapsed().as_secs_f64(),
            spans,
            counters,
            series,
            traces,
        }
    })
}

/// [`report`] with the owning job id stamped into [`Report::job`] (and
/// therefore the JSON `"job"` field), so a daemon serving many jobs can
/// attribute each emitted profile.
pub fn report_tagged(job: &str) -> Report {
    let mut r = report();
    r.job = Some(job.to_string());
    r
}

impl Report {
    /// Total seconds recorded under the exact span path `path` (0 if absent).
    pub fn span_total(&self, path: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.path == path)
            .map(|s| s.total_s)
            .sum()
    }

    /// Total seconds over every span whose **last** path segment equals
    /// `leaf` — e.g. `sum_leaf("apply")` aggregates the apply kernel across
    /// all frequencies and parents.
    pub fn sum_leaf(&self, leaf: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.path.rsplit('/').next() == Some(leaf))
            .map(|s| s.total_s)
            .sum()
    }

    /// Total seconds over root spans (paths without `/`). Because spans are
    /// inclusive, this is the instrumented share of [`Report::total_wall_s`].
    pub fn top_level_total(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| !s.path.contains('/'))
            .map(|s| s.total_s)
            .sum()
    }

    /// Value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Derived kernel throughput rows `(label, GF/s)` computed from the
    /// scalar-flop counters maintained by the hot kernels
    /// (`linalg.gemm_flops`, `grid.stencil_flops`, and the
    /// `solver.reduce.*` family for Gram products and vector
    /// reductions/updates) over **total wall time**: the sustained
    /// average rate each kernel family delivered across the whole run.
    /// The flop counters are global while spans cover only the
    /// instrumented call sites, so wall time is the only denominator
    /// that matches the numerator — per-span division would overstate
    /// the rate wherever a kernel runs outside its span. Counters count
    /// *real* scalar flops (complex arithmetic already expanded), so the
    /// rates are directly comparable to hardware peak; each is a lower
    /// bound on the kernel's in-kernel throughput. When a SIMD dispatch
    /// path was recorded ([`set_dispatch`]) every label carries it, so a
    /// rate is never mistaken for one measured on a different path.
    pub fn derived_rates(&self) -> Vec<(String, f64)> {
        let tag = match &self.dispatch {
            Some(d) => format!(", {d}"),
            None => String::new(),
        };
        let mut rows: Vec<(String, f64)> = Vec::new();
        let mut push = |family: &str, flops: u64| {
            if flops > 0 && self.total_wall_s > 0.0 {
                rows.push((
                    format!("{family} [avg GF/s{tag}]"),
                    flops as f64 * 1e-9 / self.total_wall_s,
                ));
            }
        };
        push("linalg.gemm", self.counter("linalg.gemm_flops"));
        push("grid.stencil", self.counter("grid.stencil_flops"));
        push(
            "solver.reduce",
            self.counter("solver.reduce.gram_flops") + self.counter("solver.reduce.vec_flops"),
        );
        rows
    }

    /// Serialise the report as versioned JSON (schema in DESIGN.md).
    /// Non-finite floats are emitted as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        out.push_str(&format!("\"schema_version\":{},", self.schema_version));
        match &self.job {
            Some(job) => out.push_str(&format!("\"job\":{},", json_str(job))),
            None => out.push_str("\"job\":null,"),
        }
        match &self.dispatch {
            Some(d) => out.push_str(&format!("\"dispatch\":{},", json_str(d))),
            None => out.push_str("\"dispatch\":null,"),
        }
        out.push_str(&format!(
            "\"total_wall_s\":{},",
            json_f64(self.total_wall_s)
        ));
        out.push_str("\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":{},\"total_s\":{},\"count\":{}}}",
                json_str(&s.path),
                json_f64(s.total_s),
                s.count
            ));
        }
        out.push_str("],\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(k), v));
        }
        out.push_str("},\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"dropped\":{},\"values\":[",
                json_str(&s.name),
                s.dropped
            ));
            push_f64_list(&mut out, &s.values);
            out.push_str("]}");
        }
        out.push_str("],\"traces\":[");
        for (i, t) in self.traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"label\":{},\"truncated\":{},\"points\":[",
                json_str(&t.name),
                json_str(&t.label),
                t.truncated
            ));
            push_f64_list(&mut out, &t.points);
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Render an indented plain-text tree of spans with share-of-wall
    /// percentages and entry counts, followed by counter totals — the
    /// summary appended to `rpacalc` run reports under `-profile`.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry summary (schema v{}, wall {:.3} s, instrumented {:.1}%, simd {})\n",
            self.schema_version,
            self.total_wall_s,
            if self.total_wall_s > 0.0 {
                100.0 * self.top_level_total() / self.total_wall_s
            } else {
                0.0
            },
            self.dispatch.as_deref().unwrap_or("unresolved")
        ));
        out.push_str(&format!(
            "  {:<44} {:>12} {:>7} {:>9}\n",
            "span", "total [s]", "share", "count"
        ));
        for s in &self.spans {
            let depth = s.path.matches('/').count();
            let name = s.path.rsplit('/').next().unwrap_or(&s.path);
            let pct = if self.total_wall_s > 0.0 {
                100.0 * s.total_s / self.total_wall_s
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<44} {:>12.4} {:>6.1}% {:>9}\n",
                format!("{}{}", "  ".repeat(depth), name),
                s.total_s,
                pct,
                s.count
            ));
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("  {:<44} {:>12}\n", "counter", "total"));
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<44} {v:>12}\n"));
            }
        }
        let rates = self.derived_rates();
        if !rates.is_empty() {
            out.push_str(&format!("  {:<44} {:>12}\n", "derived rate", "value"));
            for (label, gfs) in &rates {
                out.push_str(&format!("  {label:<44} {gfs:>12.3}\n"));
            }
        }
        out
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

fn push_f64_list(out: &mut String, values: &[f64]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_f64(*v));
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global, so every test funnels through one lock to
    // avoid cross-talk.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _g = exclusive();
        reset();
        set_enabled(false);
        {
            let _s = span("hidden");
            add("hidden.counter", 5);
            record("hidden.series", 1.0);
            record_trace("hidden.trace", "x", &[1.0, 2.0]);
        }
        set_enabled(true);
        let r = report();
        set_enabled(false);
        assert!(r.spans.is_empty());
        assert_eq!(r.counter("hidden.counter"), 0);
        assert!(r.series.is_empty());
        assert!(r.traces.is_empty());
    }

    #[test]
    fn nested_spans_build_paths_and_aggregate() {
        let _g = exclusive();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _root = span("outer");
            let _child = span("inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let r = report();
        set_enabled(false);
        let outer = r.spans.iter().find(|s| s.path == "outer").unwrap();
        let inner = r.spans.iter().find(|s| s.path == "outer/inner").unwrap();
        assert_eq!(outer.count, 3);
        assert_eq!(inner.count, 3);
        assert!(outer.total_s >= inner.total_s);
        assert!(r.top_level_total() > 0.0);
        assert!((r.sum_leaf("inner") - inner.total_s).abs() < 1e-12);
    }

    #[test]
    fn counters_series_and_context_prefixing() {
        let _g = exclusive();
        reset();
        set_enabled(true);
        {
            let _root = span("ctx");
            add("plain", 2);
            add("plain", 3);
            set_context("omega[7]");
            add_ctx("iters", 4);
            record_ctx("per_orbital", 11.0);
            clear_context();
            add_ctx("iters", 1);
            record("flat_series", 9.0);
        }
        let r = report();
        set_enabled(false);
        assert_eq!(r.counter("plain"), 5);
        assert_eq!(r.counter("omega[7]/iters"), 4);
        assert_eq!(r.counter("iters"), 1);
        let s = r.series.iter().find(|s| s.name == "omega[7]/per_orbital");
        assert_eq!(s.unwrap().values, vec![11.0]);
        let f = r.series.iter().find(|s| s.name == "flat_series").unwrap();
        assert_eq!(f.values, vec![9.0]);
    }

    #[test]
    fn worker_threads_merge_via_flush() {
        let _g = exclusive();
        reset();
        set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    add("worker.events", 10);
                    record("worker.series", 1.5);
                    flush_thread();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let r = report();
        set_enabled(false);
        assert_eq!(r.counter("worker.events"), 40);
        let s = r.series.iter().find(|s| s.name == "worker.series").unwrap();
        assert_eq!(s.values.len(), 4);
    }

    #[test]
    fn series_and_traces_are_bounded() {
        let _g = exclusive();
        reset();
        set_enabled(true);
        {
            let _root = span("bound");
            for i in 0..(SERIES_CAP + 100) {
                record("big", i as f64);
            }
            let long: Vec<f64> = (0..(TRACE_LEN_CAP + 50)).map(|i| i as f64).collect();
            for _ in 0..(TRACE_CAP + 3) {
                record_trace("many", "t", &long);
            }
        }
        let r = report();
        set_enabled(false);
        let s = r.series.iter().find(|s| s.name == "big").unwrap();
        assert_eq!(s.values.len(), SERIES_CAP);
        assert_eq!(s.dropped, 100);
        let kept: Vec<_> = r.traces.iter().filter(|t| t.name == "many").collect();
        assert_eq!(kept.len(), TRACE_CAP);
        assert_eq!(kept[0].points.len(), TRACE_LEN_CAP);
        assert_eq!(kept[0].truncated, 50);
        assert_eq!(kept[0].dropped_traces, 3);
    }

    #[test]
    fn json_is_well_formed() {
        let _g = exclusive();
        reset();
        set_enabled(true);
        {
            let _root = span("json");
            let _leaf = span("needs \"escaping\"\n");
            add("count", 7);
            record("series", 1e-12);
            record_trace("trace", "omega[0]", &[1.0, f64::NAN, 0.5]);
        }
        let r = report();
        set_enabled(false);
        let text = r.to_json();
        assert_json(&text);
        assert!(text.contains("\"schema_version\":2"));
        assert!(text.contains("\"dispatch\":"));
        assert!(text.contains("null"), "NaN must serialise to null");
    }

    #[test]
    fn tagged_report_carries_the_job_id_into_json() {
        let _g = exclusive();
        reset();
        set_enabled(true);
        {
            let _root = span("tagged");
            add("tagged.counter", 1);
        }
        let tagged = report_tagged("job-0042");
        let untagged = report();
        set_enabled(false);
        assert_eq!(tagged.job.as_deref(), Some("job-0042"));
        assert!(untagged.job.is_none());
        let json = tagged.to_json();
        assert_json(&json);
        assert!(json.contains("\"job\":\"job-0042\""), "{json}");
        assert!(untagged.to_json().contains("\"job\":null"));
    }

    #[test]
    fn summary_table_mentions_every_span_and_counter() {
        let _g = exclusive();
        reset();
        set_enabled(true);
        {
            let _root = span("table_root");
            let _leaf = span("table_leaf");
            add("table.counter", 3);
        }
        let r = report();
        set_enabled(false);
        let t = r.summary_table();
        assert!(t.contains("table_root"));
        assert!(t.contains("table_leaf"));
        assert!(t.contains("table.counter"));
        assert!(t.contains('%'));
    }

    #[test]
    fn dispatch_label_survives_reset_and_lands_in_reports() {
        let _g = exclusive();
        reset();
        set_dispatch("scalar");
        reset(); // a reset after configuration must not lose the label
        let r = report();
        assert_eq!(r.dispatch.as_deref(), Some("scalar"));
        assert!(r.to_json().contains("\"dispatch\":\"scalar\""));
        assert!(r.summary_table().contains("simd scalar"));
    }

    #[test]
    fn derived_rates_compute_gflops_from_counters_and_spans() {
        // synthetic report: 20e9 scalar GEMM flops over 10 s of wall time
        // → 2 GF/s sustained average; 10e9 stencil flops → 1 GF/s. Spans
        // must not affect the rates — the counters are global while spans
        // cover only instrumented call sites.
        let r = Report {
            schema_version: SCHEMA_VERSION,
            job: None,
            dispatch: Some("avx2".into()),
            total_wall_s: 10.0,
            spans: vec![
                SpanEntry {
                    path: "rayleigh_ritz/matmult".into(),
                    total_s: 0.3,
                    count: 4,
                },
                SpanEntry {
                    path: "other/matmult".into(),
                    total_s: 0.2,
                    count: 1,
                },
            ],
            counters: vec![
                ("grid.stencil_flops".into(), 10_000_000_000),
                ("linalg.gemm_flops".into(), 20_000_000_000),
                ("solver.reduce.gram_flops".into(), 3_000_000_000),
                ("solver.reduce.vec_flops".into(), 2_000_000_000),
            ],
            series: vec![],
            traces: vec![],
        };
        let rates = r.derived_rates();
        assert_eq!(rates.len(), 3);
        assert_eq!(rates[0].0, "linalg.gemm [avg GF/s, avx2]");
        assert!((rates[0].1 - 2.0).abs() < 1e-9, "gemm rate {}", rates[0].1);
        assert_eq!(rates[1].0, "grid.stencil [avg GF/s, avx2]");
        assert!(
            (rates[1].1 - 1.0).abs() < 1e-9,
            "stencil rate {}",
            rates[1].1
        );
        // the two solver.reduce.* counters fold into one family row, so
        // Gram-product flops can never inflate the GEMM rate again
        assert_eq!(rates[2].0, "solver.reduce [avg GF/s, avx2]");
        assert!(
            (rates[2].1 - 0.5).abs() < 1e-9,
            "reduce rate {}",
            rates[2].1
        );
        assert!(r.summary_table().contains("derived rate"));
        assert!(r.summary_table().contains("simd avx2"));

        // no flop counters → no derived rows, no header
        let empty = Report {
            schema_version: SCHEMA_VERSION,
            job: None,
            dispatch: None,
            total_wall_s: 1.0,
            spans: vec![],
            counters: vec![],
            series: vec![],
            traces: vec![],
        };
        assert!(empty.derived_rates().is_empty());
        assert!(!empty.summary_table().contains("derived rate"));
    }

    /// Minimal recursive-descent JSON validator — enough to prove the
    /// hand-rolled writer emits structurally valid documents.
    fn assert_json(text: &str) {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_value(bytes, &mut pos);
        skip_ws(bytes, &mut pos);
        assert_eq!(pos, bytes.len(), "trailing garbage after JSON value");
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn skip_value(b: &[u8], pos: &mut usize) {
        skip_ws(b, pos);
        assert!(*pos < b.len(), "unexpected end of JSON");
        match b[*pos] {
            b'{' => {
                *pos += 1;
                skip_ws(b, pos);
                if b[*pos] == b'}' {
                    *pos += 1;
                    return;
                }
                loop {
                    skip_string(b, pos);
                    skip_ws(b, pos);
                    assert_eq!(b[*pos], b':', "expected ':' in object");
                    *pos += 1;
                    skip_value(b, pos);
                    skip_ws(b, pos);
                    match b[*pos] {
                        b',' => {
                            *pos += 1;
                            skip_ws(b, pos);
                        }
                        b'}' => {
                            *pos += 1;
                            return;
                        }
                        c => panic!("unexpected {:?} in object", c as char),
                    }
                }
            }
            b'[' => {
                *pos += 1;
                skip_ws(b, pos);
                if b[*pos] == b']' {
                    *pos += 1;
                    return;
                }
                loop {
                    skip_value(b, pos);
                    skip_ws(b, pos);
                    match b[*pos] {
                        b',' => *pos += 1,
                        b']' => {
                            *pos += 1;
                            return;
                        }
                        c => panic!("unexpected {:?} in array", c as char),
                    }
                }
            }
            b'"' => skip_string(b, pos),
            b't' => {
                assert!(text_at(b, *pos, "true"));
                *pos += 4;
            }
            b'f' => {
                assert!(text_at(b, *pos, "false"));
                *pos += 5;
            }
            b'n' => {
                assert!(text_at(b, *pos, "null"));
                *pos += 4;
            }
            _ => skip_number(b, pos),
        }
    }

    fn text_at(b: &[u8], pos: usize, lit: &str) -> bool {
        b.len() >= pos + lit.len() && &b[pos..pos + lit.len()] == lit.as_bytes()
    }

    fn skip_string(b: &[u8], pos: &mut usize) {
        skip_ws(b, pos);
        assert_eq!(b[*pos], b'"', "expected string");
        *pos += 1;
        while b[*pos] != b'"' {
            if b[*pos] == b'\\' {
                *pos += 1;
            }
            *pos += 1;
            assert!(*pos < b.len(), "unterminated string");
        }
        *pos += 1;
    }

    fn skip_number(b: &[u8], pos: &mut usize) {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        assert!(*pos > start, "expected a number at byte {start}");
        let s = std::str::from_utf8(&b[start..*pos]).unwrap();
        assert!(s.parse::<f64>().is_ok(), "invalid number literal {s:?}");
    }
}
