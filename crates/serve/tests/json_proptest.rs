//! Property tests of the hand-rolled JSON layer in `mbrpa-serve`.
//!
//! The daemon's wire formats, the on-disk job store, and the result
//! cache all ride on this parser/writer pair, so the properties that
//! matter are: write→parse is the identity on every value the writer
//! can emit (including every f64 bit pattern except non-finite, every
//! Unicode string, deep nesting up to `MAX_DEPTH`), and the parser
//! never panics or accepts garbage on adversarial input.

// Test code: panics are failures (DESIGN.md §9).
#![allow(clippy::unwrap_used)]

use mbrpa_serve::json::{self, JsonValue, MAX_DEPTH};
use proptest::prelude::*;

/// Arbitrary JSON value with finite numbers only (the writer turns
/// NaN/inf into `null`, which is lossy by design and tested separately).
fn value() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        finite_num().prop_map(JsonValue::Num),
        any::<String>().prop_map(JsonValue::Str),
    ];
    leaf.prop_recursive(6, 48, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(JsonValue::Arr),
            proptest::collection::vec((any::<String>(), inner), 0..6).prop_map(JsonValue::Obj),
        ]
    })
}

fn finite_num() -> impl Strategy<Value = f64> {
    any::<f64>().prop_filter("finite", |v| v.is_finite())
}

proptest! {
    /// write→parse is the identity: whatever tree the daemon emits, a
    /// client (or the daemon itself, re-reading its own store) parses
    /// the same tree back.
    #[test]
    fn writer_output_reparses_to_the_same_tree(v in value()) {
        let text = v.to_json();
        let again = json::parse(&text)
            .unwrap_or_else(|e| panic!("writer emitted unparseable JSON: {e}\n{text}"));
        prop_assert_eq!(&again, &v, "round trip changed the tree: {}", text);
    }

    /// Every finite f64 survives write→parse with its exact bit pattern
    /// — the property the bit-identical result cache depends on. `-0.0`
    /// is the interesting case: it must come back as `-0.0`, not `0.0`.
    #[test]
    fn finite_numbers_roundtrip_bit_exactly(v in finite_num()) {
        let text = JsonValue::Num(v).to_json();
        let back = json::parse(&text).unwrap().as_f64().unwrap();
        prop_assert_eq!(
            back.to_bits(),
            v.to_bits(),
            "{} reparsed as {} ({:016x} != {:016x})",
            v, back, back.to_bits(), v.to_bits()
        );
    }

    /// Strings with any scalar values — escapes, control characters,
    /// astral-plane characters — survive write→parse unchanged.
    #[test]
    fn strings_roundtrip_exactly(text in any::<String>()) {
        let encoded = JsonValue::Str(text.clone()).to_json();
        let back = json::parse(&encoded).unwrap();
        prop_assert_eq!(back.as_str(), Some(text.as_str()));
    }

    /// The parser must never panic, whatever bytes arrive on the socket
    /// — reject with an error, or accept and then re-serialize cleanly.
    #[test]
    fn parser_never_panics_on_arbitrary_input(text in any::<String>()) {
        if let Ok(v) = json::parse(&text) {
            // anything accepted must also survive a round trip
            let again = json::parse(&v.to_json()).unwrap();
            prop_assert_eq!(again, v);
        }
    }

    /// Insertion order of object members is part of the contract (the
    /// store relies on byte-deterministic output): parse preserves it,
    /// and write emits it back in the same order.
    #[test]
    fn object_member_order_is_stable(
        keys in proptest::collection::vec("[a-z]{1,8}", 1..8),
    ) {
        let pairs: Vec<(String, JsonValue)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (format!("{k}{i}"), json::u(i)))
            .collect();
        let v = JsonValue::Obj(pairs.clone());
        let parsed = json::parse(&v.to_json()).unwrap();
        let got: Vec<&str> = parsed
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let want: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        prop_assert_eq!(got, want);
    }

    /// Nesting is bounded (stack-exhaustion guard): the deepest
    /// accepted document has `MAX_DEPTH + 1` brackets (the innermost
    /// value parses at depth `MAX_DEPTH`), and every deeper one is
    /// rejected with an error, never a crash.
    #[test]
    fn depth_limit_is_a_sharp_boundary(extra in 1usize..8) {
        let ok = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        prop_assert!(json::parse(&ok).is_ok());
        let n = MAX_DEPTH + 1 + extra;
        let deep = "[".repeat(n) + &"]".repeat(n);
        prop_assert!(json::parse(&deep).is_err());
    }

    /// Truncating a valid document at any byte boundary must produce a
    /// parse error (or, rarely, a shorter valid document — e.g. `42`
    /// truncated to `4`), never a panic or a hang.
    #[test]
    fn truncation_is_rejected_or_still_valid(v in value(), frac in 0.0f64..1.0) {
        let text = v.to_json();
        let cut = (text.len() as f64 * frac) as usize;
        if let Some(prefix) = text.get(..cut) {
            let _ = json::parse(prefix); // must simply not panic
        }
    }
}
