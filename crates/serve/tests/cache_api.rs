//! Socket-level tests of the exact result cache: a byte-different but
//! semantically identical resubmission must be served from the cache
//! with the *exact* f64 bit pattern of the original run and no new job,
//! while flush and LRU eviction must turn subsequent submissions back
//! into misses. Everything goes over a real TCP socket, exactly as a
//! client would see it.

// Test code: panics are failures (DESIGN.md §9).
#![allow(clippy::unwrap_used)]

use mbrpa_serve::daemon::{Daemon, DaemonConfig};
use mbrpa_serve::job::{validate_result_doc, validate_status_doc};
use mbrpa_serve::json::{self, JsonValue};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deliberately tiny Dirichlet cluster: n_d = 125, two frequencies.
const TINY_INPUT: &str = "\
N_NUCHI_EIGS: 4
N_OMEGA: 2
TOL_EIG: 1e-2
TOL_STERN_RES: 1e-2
MAXIT_FILTERING: 4
CHEB_DEGREE_RPA: 2
BOUNDARY: DIRICHLET
CELLS_Z: 1
POINTS_PER_CELL: 5
MESH: 0.69
PERTURBATION: 0.02
SYSTEM_SEED: 7
NP: 1
";

/// The same calculation as [`TINY_INPUT`], spelled as differently as the
/// format allows: reordered keys, lowercase, aliases (`NP` ↔
/// `NP_NUCHI_EIGS_PARAL_RPA`), float respellings (`0.02` ↔ `2e-2`),
/// leading zeros, comments, and loose whitespace. Byte-different,
/// fingerprint-identical.
const TINY_VARIANT: &str = "\
# the same cluster, rendered differently
np_nuchi_eigs_paral_rpa: 01
mesh  :   0.69
system_seed:07   # same seed
points_per_cell: 5

perturbation: 2e-2
boundary: dirichlet
cheb_degree_rpa: 2
maxit_filtering: 4
tol_stern_res: 0.01
tol_eig: 1e-2
cells_z: 1
n_omega: 2
n_nuchi_eigs: 4
";

/// A genuinely different calculation (three frequencies, not two).
const OTHER_INPUT: &str = "\
N_NUCHI_EIGS: 4
N_OMEGA: 3
TOL_EIG: 1e-2
TOL_STERN_RES: 1e-2
MAXIT_FILTERING: 4
CHEB_DEGREE_RPA: 2
BOUNDARY: DIRICHLET
CELLS_Z: 1
POINTS_PER_CELL: 5
MESH: 0.69
PERTURBATION: 0.02
SYSTEM_SEED: 7
NP: 1
";

fn scratch_root(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mbrpa-serve-cache-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed) // ord: Relaxed — unique-id counter, no data published
    ))
}

fn start_with(tag: &str, executors: usize, config: DaemonConfig) -> (Daemon, SocketAddr, PathBuf) {
    let root = scratch_root(tag);
    let daemon = Daemon::start(DaemonConfig {
        root: root.clone(),
        addr: "127.0.0.1:0".to_string(),
        executors,
        backlog: 8,
        profile: false,
        http_workers: 2,
        log: Arc::new(|_| {}),
        ..config
    })
    .unwrap();
    let addr = daemon.local_addr();
    (daemon, addr, root)
}

fn start(tag: &str, executors: usize) -> (Daemon, SocketAddr, PathBuf) {
    start_with(tag, executors, DaemonConfig::default())
}

/// One HTTP exchange; returns `(status, body)`.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").unwrap();
    let status: u16 = head
        .split("\r\n")
        .next()
        .unwrap()
        .split(' ')
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    (status, body.to_string())
}

fn submit_body(input: &str) -> String {
    json::obj(vec![
        ("schema", json::s("mbrpa.job/1")),
        ("input", json::s(input)),
        ("priority", json::u(5)),
    ])
    .to_json()
}

/// Submit an input that must miss the cache; returns the new job id.
fn submit_miss(addr: SocketAddr, input: &str) -> String {
    let (status, body) = http(addr, "POST", "/v1/jobs", Some(&submit_body(input)));
    assert_eq!(status, 201, "expected a cache miss (201): {body}");
    let doc = json::parse(&body).unwrap();
    validate_status_doc(&doc).unwrap();
    doc.get("id").unwrap().as_str().unwrap().to_string()
}

/// Submit an input that must hit the cache; returns the replayed result.
fn submit_hit(addr: SocketAddr, input: &str) -> JsonValue {
    let (status, body) = http(addr, "POST", "/v1/jobs", Some(&submit_body(input)));
    assert_eq!(status, 200, "expected a cache hit (200): {body}");
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("cached").and_then(JsonValue::as_bool), Some(true));
    let fp = doc.get("fingerprint").unwrap().as_str().unwrap();
    assert!(mbrpa_core::is_fingerprint_hex(fp), "bad fingerprint `{fp}`");
    // apart from the two extra members, a hit body is a result document
    validate_result_doc(&doc).unwrap();
    doc
}

fn wait_completed(addr: SocketAddr, id: &str) {
    let start = Instant::now();
    loop {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), None);
        assert_eq!(status, 200, "{body}");
        let state = json::parse(&body)
            .unwrap()
            .get("state")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        if state == "completed" {
            return;
        }
        assert_ne!(state, "failed", "job failed: {body}");
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "timed out; last status: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn result_bits(addr: SocketAddr, id: &str) -> String {
    let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}/result"), None);
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).unwrap();
    validate_result_doc(&doc).unwrap();
    doc.get("total_energy_bits")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

fn cache_stat(addr: SocketAddr, key: &str) -> u64 {
    let (status, body) = http(addr, "GET", "/v1/cache", None);
    assert_eq!(status, 200, "{body}");
    json::parse(&body)
        .unwrap()
        .get(key)
        .unwrap()
        .as_u64()
        .unwrap()
}

fn job_count(addr: SocketAddr) -> usize {
    let (status, body) = http(addr, "GET", "/v1/jobs", None);
    assert_eq!(status, 200, "{body}");
    json::parse(&body)
        .unwrap()
        .get("jobs")
        .unwrap()
        .as_arr()
        .unwrap()
        .len()
}

#[test]
fn semantically_identical_resubmission_replays_the_exact_bits() {
    let (daemon, addr, root) = start("hit", 1);

    let id = submit_miss(addr, TINY_INPUT);
    wait_completed(addr, &id);
    let bits = result_bits(addr, &id);

    // different bytes, same physics: served from the cache, no new job
    assert_ne!(TINY_INPUT, TINY_VARIANT);
    let replay = submit_hit(addr, TINY_VARIANT);
    assert_eq!(
        replay.get("total_energy_bits").unwrap().as_str().unwrap(),
        bits,
        "cache hit changed the f64 bit pattern"
    );
    assert_eq!(job_count(addr), 1, "a cache hit must not create a job");

    assert_eq!(cache_stat(addr, "entries"), 1);
    assert_eq!(cache_stat(addr, "insertions"), 1);
    assert_eq!(cache_stat(addr, "hits"), 1);
    assert_eq!(cache_stat(addr, "misses"), 1); // the first submission

    // the health document carries the same counters
    let (status, body) = http(addr, "GET", "/v1/health", None);
    assert_eq!(status, 200);
    let health = json::parse(&body).unwrap();
    let block = health.get("cache").expect("health must report the cache");
    assert_eq!(block.get("hits").unwrap().as_u64(), Some(1));

    drop(daemon);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn flush_turns_hits_back_into_misses() {
    let (daemon, addr, root) = start("flush", 1);

    let id = submit_miss(addr, TINY_INPUT);
    wait_completed(addr, &id);
    submit_hit(addr, TINY_VARIANT);

    let (status, body) = http(addr, "POST", "/v1/cache/flush", None);
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("flushed").unwrap().as_u64(), Some(1));
    assert_eq!(cache_stat(addr, "entries"), 0);

    // the flushed entry is gone: the variant now queues a real job...
    let id2 = submit_miss(addr, TINY_VARIANT);
    wait_completed(addr, &id2);
    // ...whose completion repopulates the cache with the same bits
    let replay = submit_hit(addr, TINY_INPUT);
    assert_eq!(
        replay.get("total_energy_bits").unwrap().as_str().unwrap(),
        result_bits(addr, &id),
        "recomputation after a flush is not bit-stable"
    );

    drop(daemon);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn lru_eviction_drops_the_coldest_entry_first() {
    // probe run: how many bytes does one cached entry cost?
    let (daemon, addr, root) = start("evict-probe", 1);
    let id = submit_miss(addr, TINY_INPUT);
    wait_completed(addr, &id);
    let entry_bytes = cache_stat(addr, "bytes");
    assert!(entry_bytes > 0);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&root);

    // budget for one entry (±50%), never two
    let (daemon, addr, root) = start_with(
        "evict",
        1,
        DaemonConfig {
            cache_budget: entry_bytes * 3 / 2,
            ..DaemonConfig::default()
        },
    );

    let id = submit_miss(addr, TINY_INPUT);
    wait_completed(addr, &id);
    let id2 = submit_miss(addr, OTHER_INPUT);
    wait_completed(addr, &id2);

    // inserting the second result pushed the first (coldest) out
    assert_eq!(cache_stat(addr, "entries"), 1);
    assert_eq!(cache_stat(addr, "evictions"), 1);
    submit_hit(addr, OTHER_INPUT); // the survivor still hits
    let id3 = submit_miss(addr, TINY_INPUT); // the evicted one misses
    wait_completed(addr, &id3);

    drop(daemon);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn disabled_cache_serves_404_and_never_replays() {
    let (daemon, addr, root) = start_with(
        "disabled",
        1,
        DaemonConfig {
            cache: false,
            ..DaemonConfig::default()
        },
    );

    let (status, _) = http(addr, "GET", "/v1/cache", None);
    assert_eq!(status, 404);
    let (status, _) = http(addr, "POST", "/v1/cache/flush", None);
    assert_eq!(status, 404);

    let id = submit_miss(addr, TINY_INPUT);
    wait_completed(addr, &id);
    // byte-identical resubmission still queues a fresh job
    let id2 = submit_miss(addr, TINY_INPUT);
    wait_completed(addr, &id2);

    // and health carries no cache block at all
    let (status, body) = http(addr, "GET", "/v1/health", None);
    assert_eq!(status, 200);
    assert!(json::parse(&body).unwrap().get("cache").is_none());

    drop(daemon);
    let _ = std::fs::remove_dir_all(&root);
}
