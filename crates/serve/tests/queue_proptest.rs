//! Property-based tests of the job queue's lifecycle invariants under
//! arbitrary interleavings of submit / claim / complete / fail / cancel
//! / requeue and simulated crash-recovery:
//!
//! * no accepted job is ever lost or duplicated,
//! * the backlog bound holds for fresh submissions,
//! * `claim` respects priority-then-FIFO order,
//! * terminal states are absorbing,
//! * after a final drain every job is terminal.

// Test code: panics are failures (DESIGN.md §9).
#![allow(clippy::unwrap_used)]

use mbrpa_serve::job::JobState;
use mbrpa_serve::queue::{CancelOutcome, JobQueue, SubmitError};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    /// Submit a fresh id with this priority.
    Submit(u8),
    /// Claim the best queued job.
    Claim,
    /// Complete the job at this (wrapped) entry index.
    Complete(usize),
    /// Fail the job at this index.
    Fail(usize),
    /// Cancel the job at this index (executor ack included when running).
    Cancel(usize),
    /// Requeue the running job at this index (graceful drain).
    Requeue(usize),
    /// Simulated `kill -9` + restart: rebuild the queue via `recover`.
    Crash,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..=9).prop_map(Op::Submit),
        4 => Just(Op::Claim),
        3 => (0usize..64).prop_map(Op::Complete),
        2 => (0usize..64).prop_map(Op::Fail),
        2 => (0usize..64).prop_map(Op::Cancel),
        2 => (0usize..64).prop_map(Op::Requeue),
        1 => Just(Op::Crash),
    ]
}

/// Entry index wrapped into range, or `None` for an empty queue.
fn pick(queue: &JobQueue, index: usize) -> Option<(String, JobState)> {
    let entries = queue.entries();
    if entries.is_empty() {
        return None;
    }
    let e = &entries[index % entries.len()];
    Some((e.id.clone(), e.state))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn no_job_is_lost_duplicated_or_left_non_terminal(
        ops in proptest::collection::vec(op(), 1..80),
        capacity in 1usize..5,
    ) {
        let mut queue = JobQueue::new(capacity);
        let mut accepted: Vec<String> = Vec::new();
        let mut next_id = 0u64;

        for op in ops {
            match op {
                Op::Submit(priority) => {
                    let id = format!("job-{next_id:06}");
                    next_id += 1;
                    match queue.submit(&id, priority) {
                        Ok(()) => accepted.push(id),
                        Err(SubmitError::Full { retry_after_s }) => {
                            // refused only at/above capacity, with a hint.
                            // Requeued drains can push the backlog PAST
                            // capacity (re-admission bypasses the check),
                            // so equality would over-assert here.
                            prop_assert!(queue.count(JobState::Queued) >= capacity);
                            prop_assert!(retry_after_s >= 1);
                        }
                        Err(SubmitError::Duplicate) => {
                            prop_assert!(false, "fresh ids can never be duplicates");
                        }
                    }
                }
                Op::Claim => {
                    let best_queued = queue
                        .entries()
                        .iter()
                        .filter(|e| e.state == JobState::Queued)
                        .map(|e| (e.priority, std::cmp::Reverse(e.seq)))
                        .max();
                    match queue.claim() {
                        Some(id) => {
                            prop_assert_eq!(queue.state_of(&id), Some(JobState::Running));
                            // the claimed job was the priority-then-FIFO best
                            let claimed = queue
                                .entries()
                                .iter()
                                .find(|e| e.id == id)
                                .unwrap();
                            prop_assert_eq!(
                                Some((claimed.priority, std::cmp::Reverse(claimed.seq))),
                                best_queued
                            );
                        }
                        None => prop_assert_eq!(best_queued, None),
                    }
                }
                Op::Complete(i) => {
                    if let Some((id, state)) = pick(&queue, i) {
                        let moved = queue.complete(&id);
                        prop_assert_eq!(moved, state == JobState::Running);
                        let expected = if moved { JobState::Completed } else { state };
                        prop_assert_eq!(queue.state_of(&id), Some(expected));
                    }
                }
                Op::Fail(i) => {
                    if let Some((id, state)) = pick(&queue, i) {
                        let moved = queue.fail(&id);
                        prop_assert_eq!(moved, state == JobState::Running);
                    }
                }
                Op::Cancel(i) => {
                    if let Some((id, state)) = pick(&queue, i) {
                        match queue.cancel(&id) {
                            Some(CancelOutcome::WasQueued) => {
                                prop_assert_eq!(state, JobState::Queued);
                                prop_assert_eq!(queue.state_of(&id), Some(JobState::Cancelled));
                            }
                            Some(CancelOutcome::WasRunning) => {
                                prop_assert_eq!(state, JobState::Running);
                                // the executor acks at its next boundary
                                prop_assert!(queue.finish_cancelled(&id));
                            }
                            Some(CancelOutcome::AlreadyTerminal) => {
                                prop_assert!(state.is_terminal());
                                prop_assert_eq!(queue.state_of(&id), Some(state));
                            }
                            None => prop_assert!(false, "picked ids exist"),
                        }
                    }
                }
                Op::Requeue(i) => {
                    if let Some((id, state)) = pick(&queue, i) {
                        let moved = queue.requeue(&id);
                        prop_assert_eq!(moved, state == JobState::Running);
                    }
                }
                Op::Crash => {
                    // the daemon rebuilds from the store: same ids, same
                    // priorities, running jobs re-enter the backlog
                    let snapshot: Vec<(String, u8, JobState)> = queue
                        .entries()
                        .iter()
                        .map(|e| (e.id.clone(), e.priority, e.state))
                        .collect();
                    let mut rebuilt = JobQueue::new(capacity);
                    for (id, priority, state) in snapshot {
                        rebuilt.recover(&id, priority, state).unwrap();
                    }
                    queue = rebuilt;
                    prop_assert_eq!(queue.count(JobState::Running), 0);
                }
            }

            // global invariants, every step: nothing lost, nothing duplicated
            let mut ids: Vec<&str> =
                queue.entries().iter().map(|e| e.id.as_str()).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "duplicate ids in the queue");
            prop_assert_eq!(queue.entries().len(), accepted.len());
            for id in &accepted {
                prop_assert!(queue.state_of(id).is_some(), "accepted job {} lost", id);
            }
        }

        // final drain: finish everything in flight, then run the backlog dry
        let running: Vec<String> = queue
            .entries()
            .iter()
            .filter(|e| e.state == JobState::Running)
            .map(|e| e.id.clone())
            .collect();
        for id in running {
            prop_assert!(queue.complete(&id));
        }
        while let Some(id) = queue.claim() {
            prop_assert!(queue.complete(&id));
        }
        for entry in queue.entries() {
            prop_assert!(
                entry.state.is_terminal(),
                "job {} drained non-terminal ({:?})",
                entry.id,
                entry.state
            );
        }
        prop_assert_eq!(queue.entries().len(), accepted.len());
    }

    #[test]
    fn backlog_refusals_are_deterministic(
        capacity in 1usize..6,
        extra in 1usize..6,
    ) {
        let mut queue = JobQueue::new(capacity);
        for i in 0..capacity {
            queue.submit(&format!("job-{i:06}"), 4).unwrap();
        }
        for i in 0..extra {
            let id = format!("over-{i:06}");
            prop_assert!(matches!(
                queue.submit(&id, 9),
                Err(SubmitError::Full { .. })
            ));
            prop_assert_eq!(queue.count(JobState::Queued), capacity);
            prop_assert!(queue.state_of(&id).is_none());
        }
        // draining one slot admits exactly one more
        queue.claim().unwrap();
        queue.submit("late-000000", 0).unwrap();
        prop_assert!(matches!(
            queue.submit("late-000001", 0),
            Err(SubmitError::Full { .. })
        ));
    }
}
