//! Integration tests of the daemon over real sockets: submit → run →
//! result (bit-identical to a direct in-process run), deterministic
//! backpressure, cancellation, graceful shutdown, and restart recovery.

// Test code: panics are failures (DESIGN.md §9).
#![allow(clippy::unwrap_used)]

use mbrpa_core::{KsSolver, RpaSetup};
use mbrpa_dft::PotentialParams;
use mbrpa_serve::daemon::{Daemon, DaemonConfig};
use mbrpa_serve::job::{validate_health_doc, validate_result_doc, validate_status_doc};
use mbrpa_serve::json::{self, JsonValue};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deliberately tiny Dirichlet cluster: n_d = 125, two frequencies.
const TINY_INPUT: &str = "\
N_NUCHI_EIGS: 4
N_OMEGA: 2
TOL_EIG: 1e-2
TOL_STERN_RES: 1e-2
MAXIT_FILTERING: 4
CHEB_DEGREE_RPA: 2
BOUNDARY: DIRICHLET
CELLS_Z: 1
POINTS_PER_CELL: 5
MESH: 0.69
PERTURBATION: 0.02
SYSTEM_SEED: 7
NP: 1
";

fn scratch_root(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mbrpa-serve-api-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed) // ord: Relaxed — unique-id counter, no data published
    ))
}

fn start(tag: &str, executors: usize, backlog: usize) -> (Daemon, SocketAddr, PathBuf) {
    let root = scratch_root(tag);
    let daemon = Daemon::start(DaemonConfig {
        root: root.clone(),
        addr: "127.0.0.1:0".to_string(),
        executors,
        backlog,
        profile: false,
        http_workers: 2,
        log: Arc::new(|_| {}),
        ..DaemonConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr();
    (daemon, addr, root)
}

/// One HTTP exchange; returns `(status, headers, body)`.
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").unwrap();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split(' ')
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn submit_body(input: &str, priority: usize) -> String {
    json::obj(vec![
        ("schema", json::s("mbrpa.job/1")),
        ("input", json::s(input)),
        ("priority", json::u(priority)),
    ])
    .to_json()
}

/// Poll the status endpoint until the job reaches `want` (or panic at
/// the deadline).
fn wait_for_state(addr: SocketAddr, id: &str, want: &str, deadline: Duration) -> JsonValue {
    let start = Instant::now();
    loop {
        let (status, _, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), None);
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        validate_status_doc(&doc).unwrap();
        let state = doc.get("state").unwrap().as_str().unwrap().to_string();
        if state == want {
            return doc;
        }
        assert!(
            !(state == "failed" && want != "failed"),
            "job failed while waiting for {want}: {body}"
        );
        assert!(
            start.elapsed() < deadline,
            "timed out waiting for {want}; last status: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn lifecycle_and_bit_identical_result() {
    let (daemon, addr, root) = start("lifecycle", 1, 4);

    let (status, _, body) = http(addr, "POST", "/v1/jobs", Some(&submit_body(TINY_INPUT, 5)));
    assert_eq!(status, 201, "{body}");
    let doc = json::parse(&body).unwrap();
    validate_status_doc(&doc).unwrap();
    let id = doc.get("id").unwrap().as_str().unwrap().to_string();

    wait_for_state(addr, &id, "completed", Duration::from_secs(120));

    let (status, _, body) = http(addr, "GET", &format!("/v1/jobs/{id}/result"), None);
    assert_eq!(status, 200, "{body}");
    let result = json::parse(&body).unwrap();
    validate_result_doc(&result).unwrap();
    assert_eq!(result.get("n_d").unwrap().as_u64(), Some(125));

    // the served energy must be bit-identical to a direct in-process run
    let input = mbrpa_core::parse_rpa_input(TINY_INPUT).unwrap();
    let setup = RpaSetup::prepare(
        input.system.build(),
        &PotentialParams::default(),
        2,
        KsSolver::Dense { extra: 4 },
    )
    .unwrap();
    let reference = setup.run(&input.config).unwrap();
    assert_eq!(
        result.get("total_energy_bits").unwrap().as_str().unwrap(),
        format!("{:016x}", reference.total_energy.to_bits()),
        "served energy differs from the direct run"
    );

    // report is human-readable text
    let (status, _, report) = http(addr, "GET", &format!("/v1/jobs/{id}/report"), None);
    assert_eq!(status, 200);
    assert!(report.contains("RPA"), "{report}");

    // health and list know about the job
    let (status, _, body) = http(addr, "GET", "/v1/health", None);
    assert_eq!(status, 200);
    let health = json::parse(&body).unwrap();
    validate_health_doc(&health).unwrap();
    assert_eq!(health.get("completed").unwrap().as_u64(), Some(1));

    let (status, _, body) = http(addr, "GET", "/v1/jobs", None);
    assert_eq!(status, 200);
    let list = json::parse(&body).unwrap();
    let jobs = list.get("jobs").unwrap().as_arr().unwrap();
    assert!(jobs
        .iter()
        .any(|j| j.get("id").and_then(JsonValue::as_str) == Some(id.as_str())));

    drop(daemon);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn full_backlog_returns_429_with_retry_after() {
    // zero executors: nothing is ever claimed, so the backlog state is
    // fully deterministic
    let (daemon, addr, root) = start("backpressure", 0, 1);

    let (status, _, body) = http(addr, "POST", "/v1/jobs", Some(&submit_body(TINY_INPUT, 4)));
    assert_eq!(status, 201, "{body}");

    let (status, headers, body) = http(addr, "POST", "/v1/jobs", Some(&submit_body(TINY_INPUT, 9)));
    assert_eq!(status, 429, "{body}");
    let retry_after = headers
        .iter()
        .find(|(k, _)| k == "retry-after")
        .map(|(_, v)| v.clone())
        .expect("429 must carry Retry-After");
    assert!(retry_after.parse::<u64>().unwrap() >= 1);

    // the refused job left nothing behind
    let (status, _, body) = http(addr, "GET", "/v1/health", None);
    assert_eq!(status, 200);
    let health = json::parse(&body).unwrap();
    assert_eq!(health.get("queued").unwrap().as_u64(), Some(1));

    drop(daemon);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn queued_jobs_cancel_immediately() {
    let (daemon, addr, root) = start("cancel", 0, 4);

    let (status, _, body) = http(addr, "POST", "/v1/jobs", Some(&submit_body(TINY_INPUT, 4)));
    assert_eq!(status, 201, "{body}");
    let id = json::parse(&body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    let (status, _, body) = http(addr, "POST", &format!("/v1/jobs/{id}/cancel"), None);
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("state").unwrap().as_str(), Some("cancelled"));

    // no result, and cancelling again is idempotent
    let (status, _, _) = http(addr, "GET", &format!("/v1/jobs/{id}/result"), None);
    assert_eq!(status, 409);
    let (status, _, _) = http(addr, "POST", &format!("/v1/jobs/{id}/cancel"), None);
    assert_eq!(status, 200);

    // unknown jobs 404
    let (status, _, _) = http(addr, "POST", "/v1/jobs/job-999999/cancel", None);
    assert_eq!(status, 404);

    drop(daemon);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shutdown_drains_and_refuses_new_work() {
    let (mut daemon, addr, root) = start("shutdown", 0, 4);

    let (status, _, body) = http(addr, "POST", "/v1/shutdown", None);
    assert_eq!(status, 202, "{body}");
    assert!(daemon.drain_requested());

    let (status, _, body) = http(addr, "POST", "/v1/jobs", Some(&submit_body(TINY_INPUT, 4)));
    assert_eq!(status, 503, "{body}");

    daemon.drain();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn restart_recovers_queued_jobs_and_completes_them() {
    let root = scratch_root("recover");

    // first daemon accepts but never runs (zero executors)
    let (daemon, addr, _) = {
        let daemon = Daemon::start(DaemonConfig {
            root: root.clone(),
            addr: "127.0.0.1:0".to_string(),
            executors: 0,
            backlog: 4,
            profile: false,
            http_workers: 1,
            log: Arc::new(|_| {}),
            ..DaemonConfig::default()
        })
        .unwrap();
        let addr = daemon.local_addr();
        (daemon, addr, ())
    };
    let (status, _, body) = http(addr, "POST", "/v1/jobs", Some(&submit_body(TINY_INPUT, 4)));
    assert_eq!(status, 201, "{body}");
    let id = json::parse(&body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    drop(daemon); // drain (nothing running)

    // second daemon on the same root picks the job up and finishes it
    let daemon = Daemon::start(DaemonConfig {
        root: root.clone(),
        addr: "127.0.0.1:0".to_string(),
        executors: 1,
        backlog: 4,
        profile: false,
        http_workers: 1,
        log: Arc::new(|_| {}),
        ..DaemonConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr();
    wait_for_state(addr, &id, "completed", Duration::from_secs(120));
    let (status, _, body) = http(addr, "GET", &format!("/v1/jobs/{id}/result"), None);
    assert_eq!(status, 200, "{body}");
    validate_result_doc(&json::parse(&body).unwrap()).unwrap();

    drop(daemon);
    let _ = std::fs::remove_dir_all(&root);
}
