//! Hand-rolled JSON: a value tree, a recursive-descent parser, and a
//! writer. Zero dependencies, and objects preserve insertion order (a
//! `Vec` of pairs, never a hash map) so every emitted document is
//! byte-deterministic.
//!
//! The subset is full RFC 8259 on parse (escapes, `\uXXXX` with
//! surrogate pairs, nested depth capped) while the writer only ever
//! emits what the daemon produces: finite numbers (non-finite floats
//! become `null`) and strings escaped per the RFC.

use std::fmt;

/// Maximum nesting depth the parser accepts; deeper input is rejected
/// rather than risking stack exhaustion on adversarial bodies.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string (escapes already resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer; `None` when the
    /// value is missing, negative, fractional, or above 2⁵³ (where `f64`
    /// stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if !(0.0..=9.0e15).contains(&v) {
            return None;
        }
        let u = v as u64;
        if (u as f64 - v).abs() < f64::EPSILON {
            Some(u)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The pair list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Num(v) => out.push_str(&write_num(*v)),
            JsonValue::Str(s) => out.push_str(&escape(s)),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Shorthand: an object value from key/value pairs.
pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Shorthand: a string value.
pub fn s(text: &str) -> JsonValue {
    JsonValue::Str(text.to_string())
}

/// Shorthand: a numeric value from an unsigned integer.
pub fn u(v: usize) -> JsonValue {
    JsonValue::Num(v as f64)
}

/// Format a number the way the writer does: shortest round-trip for
/// finite values, `null` for NaN/inf (which JSON cannot express).
fn write_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escape a string into a quoted JSON literal.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // advance one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction)
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    if let Ok(chunk) = std::str::from_utf8(&self.bytes[start..end]) {
                        out.push_str(chunk);
                    }
                    self.pos = end;
                }
            }
        }
    }

    /// Four hex digits after `\u`, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // high surrogate: require `\uXXXX` low surrogate next
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let c = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match c {
                b'0'..=b'9' => u32::from(c - b'0'),
                b'a'..=b'f' => u32::from(c - b'a') + 10,
                b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = (v << 4) | digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let text = r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"x\ny"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
        // writer output re-parses to the same tree
        let again = parse(&v.to_json()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        let pairs = v.as_obj().unwrap();
        assert_eq!(pairs[0].0, "z");
        assert_eq!(pairs[1].0, "a");
        assert_eq!(v.to_json(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let v = parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        assert!(parse(r#""\ud83d""#).is_err()); // unpaired surrogate
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "\"\\x\"", "{} extra",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integers_roundtrip_via_as_u64() {
        let v = parse("42").unwrap();
        assert_eq!(v.as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn non_finite_numbers_write_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn control_chars_escape_on_write() {
        let v = JsonValue::Str("a\u{01}b\"c".to_string());
        assert_eq!(v.to_json(), r#""a\u0001b\"c""#);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }
}
