//! Daemon assembly: shared state, startup recovery, and graceful drain.
//!
//! [`Daemon::start`] rebuilds the queue from the on-disk job store
//! (crash recovery), binds the HTTP listener, and spawns the executor
//! pool. [`Daemon::drain`] is the graceful shutdown path: it stops
//! admissions, trips every running job's `CancelToken`, waits for the
//! executors to checkpoint and requeue their work, then closes the
//! listener — so a drained daemon restarts exactly where it left off.

use crate::api;
use crate::cache::{self, CacheStore};
use crate::executor;
use crate::http::HttpServer;
use crate::job::JobState;
use crate::queue::JobQueue;
use crate::store::JobStore;
use mbrpa_core::CancelToken;
use std::fs;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Where daemon diagnostics go. The library never prints; binaries pass
/// an `eprintln!` closure, tests a capture buffer or a no-op.
pub type Logger = Arc<dyn Fn(&str) + Send + Sync>;

/// Daemon configuration.
#[derive(Clone)]
pub struct DaemonConfig {
    /// Job-store root directory (created if absent).
    pub root: PathBuf,
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Executor threads. `0` is allowed (accept-only daemon — jobs queue
    /// but never run), which tests use to exercise backpressure
    /// deterministically.
    pub executors: usize,
    /// Maximum queued (not yet running) jobs before submissions get 429.
    pub backlog: usize,
    /// Emit per-job `profile.json` telemetry. Only honored with a single
    /// executor: the telemetry sink is process-global, so two concurrent
    /// jobs would blend their spans.
    pub profile: bool,
    /// HTTP worker threads serving the API.
    pub http_workers: usize,
    /// Enable the exact result cache (see [`crate::cache`]). On by
    /// default; `rpaserved -no-cache` turns it off.
    pub cache: bool,
    /// Cache directory; `None` means `<root>/cache`.
    pub cache_dir: Option<PathBuf>,
    /// Cache byte budget (LRU eviction above this).
    pub cache_budget: u64,
    /// Shared checkpoint root for multi-worker fleets. When set, job
    /// checkpoints live under `<ckpt_root>/<input-fingerprint>/` instead
    /// of the worker-local per-job-id namespace, so a job handed to
    /// another worker after a failover resumes from the dead worker's
    /// slices bit-for-bit. Point every worker behind one `rparouter` at
    /// the same (shared-storage) directory.
    pub ckpt_root: Option<PathBuf>,
    /// Diagnostics sink.
    pub log: Logger,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            root: PathBuf::from("mbrpa-serve-data"),
            addr: "127.0.0.1:0".to_string(),
            executors: 1,
            backlog: 16,
            profile: false,
            http_workers: 2,
            cache: true,
            cache_dir: None,
            cache_budget: cache::DEFAULT_BUDGET,
            ckpt_root: None,
            log: Arc::new(|_| {}),
        }
    }
}

/// A claimed job's live handles: the cancel token the API trips, and the
/// per-frequency progress the executor publishes for the status
/// endpoint.
#[derive(Debug)]
pub struct RunningJob {
    /// Job id.
    pub id: String,
    /// Cooperative cancellation; checked at frequency boundaries.
    pub token: CancelToken,
    /// Set when cancellation came from a client (vs. a drain): the
    /// executor finalizes the job as `Cancelled` instead of requeueing.
    pub user_cancel: AtomicBool,
    /// Frequencies completed so far.
    pub completed: AtomicUsize,
    /// Total frequencies of the run (0 until the first slice reports).
    pub n_omega: AtomicUsize,
}

impl RunningJob {
    /// Fresh handles for a just-claimed job.
    pub fn new(id: &str) -> Self {
        Self {
            id: id.to_string(),
            token: CancelToken::new(),
            user_cancel: AtomicBool::new(false),
            completed: AtomicUsize::new(0),
            n_omega: AtomicUsize::new(0),
        }
    }
}

/// State shared between the HTTP handlers and the executor pool.
pub struct ServeShared {
    /// The in-memory queue; the single serialization point for job
    /// lifecycle transitions (the store is only mutated under this lock).
    pub queue: Mutex<JobQueue>,
    /// The on-disk job store.
    pub store: JobStore,
    /// Live handles of currently running jobs.
    pub running: Mutex<Vec<Arc<RunningJob>>>,
    /// Raised by drain/shutdown: executors stop claiming, submissions
    /// get 503.
    pub draining: AtomicBool,
    /// Size of the executor pool (for health reporting and the
    /// outer-scope hint).
    pub executors: usize,
    /// Whether per-job profiles are emitted (see [`DaemonConfig::profile`]).
    pub profile: bool,
    /// The exact result cache, `None` when disabled. Locked separately
    /// from (and never while holding) the queue lock.
    pub cache: Option<Mutex<CacheStore>>,
    /// Shared fingerprint-keyed checkpoint root, `None` for worker-local
    /// per-job-id namespaces (see [`DaemonConfig::ckpt_root`]).
    pub ckpt_root: Option<PathBuf>,
    /// Diagnostics sink.
    pub log: Logger,
}

/// Lock a mutex, recovering from poisoning: a panicking executor must
/// not take the whole daemon down with it.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl ServeShared {
    /// The live handle of a running job, if any.
    pub fn running_job(&self, id: &str) -> Option<Arc<RunningJob>> {
        lock(&self.running).iter().find(|r| r.id == id).cloned()
    }
}

/// A started daemon: HTTP server + executor pool over a [`ServeShared`].
pub struct Daemon {
    shared: Arc<ServeShared>,
    http: HttpServer,
    executors: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Start a daemon: recover jobs from `config.root`, bind
    /// `config.addr`, spawn the pool.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        let store = JobStore::open(config.root.clone())?;
        let mut queue = JobQueue::new(config.backlog);
        let mut recovered = 0usize;
        for job in store.scan()? {
            if job.state == JobState::Running {
                // interrupted by a crash: persist the requeue so the state
                // file and queue agree, then resume from its checkpoints
                store.write_state(&job.id, JobState::Queued)?;
                recovered += 1;
            }
            // Duplicate is impossible here (scan ids are unique)
            let _ = queue.recover(&job.id, job.spec.priority, job.state);
        }
        if recovered > 0 {
            (config.log)(&format!(
                "recovered {recovered} interrupted job(s); they will resume from checkpoints"
            ));
        }

        let cache = if config.cache {
            let dir = config
                .cache_dir
                .clone()
                .unwrap_or_else(|| config.root.join("cache"));
            let cache = CacheStore::open(dir, config.cache_budget)?;
            let dropped = cache.counters().corrupt_dropped;
            if dropped > 0 {
                (config.log)(&format!(
                    "result cache: dropped {dropped} corrupt or leftover file(s) at startup"
                ));
            }
            (config.log)(&format!(
                "result cache: {} entr{} ({} bytes) under {}",
                cache.len(),
                if cache.len() == 1 { "y" } else { "ies" },
                cache.total_bytes(),
                cache.dir().display()
            ));
            Some(Mutex::new(cache))
        } else {
            None
        };

        if let Some(root) = config.ckpt_root.as_ref() {
            fs::create_dir_all(root)?;
            (config.log)(&format!(
                "shared checkpoint root: {} (fingerprint-keyed namespaces)",
                root.display()
            ));
        }

        let shared = Arc::new(ServeShared {
            queue: Mutex::new(queue),
            store,
            running: Mutex::new(Vec::new()),
            draining: AtomicBool::new(false),
            executors: config.executors,
            profile: config.profile,
            cache,
            ckpt_root: config.ckpt_root.clone(),
            log: Arc::clone(&config.log),
        });

        let listener = TcpListener::bind(&config.addr)?;
        let handler = api::handler(Arc::clone(&shared));
        let http = HttpServer::start(listener, handler, config.http_workers.max(1))?;

        let executors = (0..config.executors)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mbrpa-exec-{i}"))
                    .spawn(move || executor::executor_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(Daemon {
            shared,
            http,
            executors,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.http.local_addr()
    }

    /// Shared state (tests poke it directly).
    pub fn shared(&self) -> &Arc<ServeShared> {
        &self.shared
    }

    /// True once a drain has been requested — by [`Daemon::drain`] or by
    /// a client's `POST /v1/shutdown`. The owning binary polls this and
    /// then calls [`Daemon::drain`] to finish the shutdown.
    pub fn drain_requested(&self) -> bool {
        // ord: Acquire — pairs with the Release stores in `drain` and the
        // HTTP shutdown handler
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop admissions and claims, cancel running
    /// jobs (they checkpoint at the next frequency boundary and requeue),
    /// join the executors, close the listener. Idempotent.
    pub fn drain(&mut self) {
        // ord: Release — pairs with the Acquire loads gating admission and claims
        self.shared.draining.store(true, Ordering::Release);
        for job in lock(&self.shared.running).iter() {
            job.token.cancel();
        }
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
        self.http.shutdown();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.drain();
    }
}
