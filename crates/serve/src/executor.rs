//! Executor pool: claims jobs, runs them in checkpointed slices, and
//! finalizes their on-disk documents.
//!
//! Each claimed job runs through the same pipeline as `rpacalc` — same
//! solver selection, same potential, same stencil — so a served energy
//! is bit-identical to a command-line run of the same input. The run is
//! sliced one frequency at a time via [`ResumePolicy::stop_after`]: at
//! every slice boundary the executor publishes progress for the status
//! endpoint and observes cancellation, and because every slice
//! checkpoints through `core::checkpoint`, a `kill -9` at any instant
//! loses at most the in-flight frequency.
//!
//! Cancellation is disambiguated at the end: a token tripped by a
//! client finalizes the job as `Cancelled` (with a partial report); a
//! token tripped by a drain requeues it, so the next daemon to open the
//! store resumes it bit-for-bit.

use crate::daemon::{lock, RunningJob, ServeShared};
use crate::job::{self, JobSpec, JobState};
use crate::store::{ERROR_FILE, PARTIAL_FILE, PROFILE_FILE, REPORT_FILE, RESULT_FILE};
use mbrpa_ckpt::CheckpointStore;
use mbrpa_core::io::parse_rpa_input;
use mbrpa_core::{report, KsSolver, ResumableOutcome, ResumePolicy, RpaInput, RpaResult, RpaSetup};
use mbrpa_dft::{ChefsiOptions, PotentialParams};
use mbrpa_grid::par::outer_scope;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// How a run ended, before the queue/store transition is applied.
enum Finish {
    /// Completed; `result.json` and `report.out` are written.
    Complete,
    /// Cancelled by a drain: back to the backlog, checkpoints intact.
    Requeue,
    /// Cancelled by a client: terminal, with a partial report.
    Cancelled,
    /// Errored (or panicked); the message goes to `error.txt`.
    Failed(String),
}

/// Body of one executor thread: claim, run, finalize, repeat until the
/// daemon drains.
pub(crate) fn executor_loop(shared: &Arc<ServeShared>) {
    loop {
        // ord: Acquire — pairs with the Release stores in `Daemon::drain` and
        // the HTTP shutdown handler
        if shared.draining.load(Ordering::Acquire) {
            return;
        }
        let claimed = lock(&shared.queue).claim();
        let Some(id) = claimed else {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        run_one(shared, &id);
    }
}

fn run_one(shared: &Arc<ServeShared>, id: &str) {
    let Some(spec) = shared.store.load_spec(id) else {
        finalize(
            shared,
            id,
            Finish::Failed("job.json is unreadable".to_string()),
        );
        return;
    };
    if let Err(e) = shared.store.write_state(id, JobState::Running) {
        finalize(
            shared,
            id,
            Finish::Failed(format!("cannot persist running state: {e}")),
        );
        return;
    }

    let job = Arc::new(RunningJob::new(id));
    lock(&shared.running).push(Arc::clone(&job));
    // a panic anywhere in the numeric stack must not strand the job in
    // `Running` or kill the executor thread
    let finish = catch_unwind(AssertUnwindSafe(|| execute(shared, &spec, &job)))
        .unwrap_or_else(|_| Finish::Failed("executor panicked while running the job".to_string()));
    lock(&shared.running).retain(|r| r.id != id);
    finalize(shared, id, finish);
}

/// Apply a [`Finish`]: queue transition and state file move together
/// under the queue lock, so API readers never see them disagree.
fn finalize(shared: &Arc<ServeShared>, id: &str, finish: Finish) {
    let mut queue = lock(&shared.queue);
    let (moved, state) = match &finish {
        Finish::Complete => (queue.complete(id), JobState::Completed),
        Finish::Requeue => (queue.requeue(id), JobState::Queued),
        Finish::Cancelled => (queue.finish_cancelled(id), JobState::Cancelled),
        Finish::Failed(message) => {
            if let Err(e) = shared.store.write_doc(id, ERROR_FILE, message) {
                (shared.log)(&format!("{id}: cannot write error.txt: {e}"));
            }
            (shared.log)(&format!("{id}: failed: {message}"));
            (queue.fail(id), JobState::Failed)
        }
    };
    if !moved {
        // only possible if the queue lost track of a job it claimed
        (shared.log)(&format!(
            "{id}: queue transition to {} refused",
            state.as_str()
        ));
    }
    if let Err(e) = shared.store.write_state(id, state) {
        (shared.log)(&format!(
            "{id}: cannot persist state {}: {e}",
            state.as_str()
        ));
    }
}

/// Run one job to an end state. Writes result/report/profile documents
/// but leaves the queue/state transition to [`finalize`].
fn execute(shared: &Arc<ServeShared>, spec: &JobSpec, job: &RunningJob) -> Finish {
    // per-job telemetry is only sound when a single executor owns the
    // process-global sink
    let profiled = shared.profile && shared.executors <= 1;
    if profiled {
        mbrpa_obs::reset();
        mbrpa_obs::set_enabled(true);
    }

    let input = match parse_rpa_input(&spec.input) {
        Ok(i) => i,
        Err(e) => return Finish::Failed(format!("invalid `.rpa` input: {e}")),
    };
    if let Err(e) = job::precheck(&input) {
        return Finish::Failed(e);
    }

    let setup = {
        let _setup_span = mbrpa_obs::span("setup");
        let crystal = match input.vacancy {
            Some(site) => input.system.build_with_vacancy(site),
            None => input.system.build(),
        };
        // identical solver selection to rpacalc: dense for small grids,
        // CheFSI beyond — part of the bit-for-bit contract
        let solver = if crystal.n_grid() <= 1000 {
            KsSolver::Dense { extra: 4 }
        } else {
            KsSolver::Chefsi(ChefsiOptions::default())
        };
        match RpaSetup::prepare(crystal, &PotentialParams::default(), 2, solver) {
            Ok(s) => s,
            Err(e) => return Finish::Failed(format!("KS stage failed: {e}")),
        }
    };

    let mut store = match open_job_checkpoints(shared, &input, &job.id) {
        Ok(s) => s,
        Err(e) => return Finish::Failed(format!("cannot open checkpoint namespace: {e}")),
    };

    // with several executors, register each job as an outer parallel
    // region so the shared rayon pool is split instead of oversubscribed
    let _outer = (shared.executors > 1).then(|| outer_scope(1));

    // one frequency per slice: each boundary checkpoints, publishes
    // progress, and observes the cancel token; `resume: true` makes the
    // first slice pick up any state a previous daemon left behind
    let policy = ResumePolicy {
        every: 1,
        resume: true,
        stop_after: Some(1),
    };
    let _rpa_span = mbrpa_obs::span("rpa");
    loop {
        match setup.run_resumable_cancellable(&input.config, &mut store, &policy, &job.token) {
            Ok(ResumableOutcome::Complete(result)) => {
                return complete(shared, &input, job, &result, profiled);
            }
            Ok(ResumableOutcome::Checkpointed { completed, n_omega }) => {
                // ord: Release — pairs with the status endpoint's Acquire loads;
                // store `completed` first so a reader that sees `n_omega > 0`
                // also sees the matching progress
                job.completed.store(completed, Ordering::Release);
                // ord: Release — see `completed` above
                job.n_omega.store(n_omega, Ordering::Release);
            }
            Ok(ResumableOutcome::Cancelled(partial)) => {
                // ord: Release — same progress-publication pairing as the
                // Checkpointed arm above
                job.completed.store(partial.completed, Ordering::Release);
                // ord: Release — see `completed` above
                job.n_omega.store(partial.n_omega, Ordering::Release);
                // ord: Acquire — pairs with the cancel endpoint's Release store,
                // so a tripped token implies the flag is already visible
                if job.user_cancel.load(Ordering::Acquire) {
                    let partial_json = job::partial_doc(&job.id, &partial).to_json();
                    write_or_log(shared, &job.id, PARTIAL_FILE, &partial_json);
                    let doc = report::partial_report(
                        &input.config,
                        &partial,
                        setup.crystal.n_grid(),
                        setup.crystal.n_occupied(),
                        setup.crystal.atoms.len(),
                    );
                    write_or_log(shared, &job.id, REPORT_FILE, &doc);
                    return Finish::Cancelled;
                }
                // drain: the checkpointed prefix stays in the namespace and
                // the job returns to the backlog for the next daemon
                return Finish::Requeue;
            }
            Err(e) => return Finish::Failed(format!("RPA stage failed: {e}")),
        }
    }
}

/// Open the job's checkpoint namespace. With a shared `-ckpt-root`, the
/// namespace is keyed by the input's canonical fingerprint rather than
/// the worker-local job id: two workers given the same submission open
/// the *same* directory, so a worker adopting a job after a failover
/// resumes from the dead worker's completed slices bit-for-bit. (The
/// router's rendezvous hash assigns each fingerprint to exactly one live
/// worker, so the namespace has a single writer at a time.)
fn open_job_checkpoints(
    shared: &ServeShared,
    input: &RpaInput,
    id: &str,
) -> Result<CheckpointStore, mbrpa_ckpt::CkptError> {
    match shared.ckpt_root.as_ref() {
        Some(root) => CheckpointStore::open_namespaced(root, &mbrpa_core::fingerprint_hex(input)),
        None => CheckpointStore::open_namespaced(shared.store.ckpt_root(), id),
    }
}

fn complete(
    shared: &Arc<ServeShared>,
    input: &RpaInput,
    job: &RunningJob,
    result: &RpaResult,
    profiled: bool,
) -> Finish {
    // pairs with the status endpoint's Acquire loads (progress publication)
    job.completed
        .store(result.per_omega.len(), Ordering::Release); // ord: Release — see above
                                                           // ord: Release — see `completed` above
    job.n_omega.store(result.per_omega.len(), Ordering::Release);

    let result_doc = job::result_doc(&job.id, result);
    if let Err(e) = shared
        .store
        .write_doc(&job.id, RESULT_FILE, &result_doc.to_json())
    {
        // without a result document the job must not report success
        return Finish::Failed(format!("cannot write result.json: {e}"));
    }

    // populate the exact result cache — only here, on full completion:
    // cancelled, partial, and failed runs never enter it
    if let Some(cache) = shared.cache.as_ref() {
        let fingerprint = mbrpa_core::fingerprint_hex(input);
        match lock(cache).insert(&fingerprint, &result_doc) {
            Ok(true) => mbrpa_obs::add("serve.cache.insert", 1),
            Ok(false) => (shared.log)(&format!(
                "{}: result exceeds the cache budget; not cached",
                job.id
            )),
            Err(e) => (shared.log)(&format!("{}: cannot cache result: {e}", job.id)),
        }
    }

    let mut doc = report::full_report(&input.config, result);
    if profiled {
        let profile = mbrpa_obs::report_tagged(&job.id);
        doc.push('\n');
        doc.push_str(&profile.summary_table());
        write_or_log(shared, &job.id, PROFILE_FILE, &profile.to_json());
    }
    write_or_log(shared, &job.id, REPORT_FILE, &doc);
    (shared.log)(&format!(
        "{}: completed, E_c = {:.5E} Ha in {:.3} s",
        job.id,
        result.total_energy,
        result.wall_time.as_secs_f64()
    ));
    Finish::Complete
}

/// Best-effort auxiliary document write (the job outcome does not depend
/// on it).
fn write_or_log(shared: &Arc<ServeShared>, id: &str, file: &str, text: &str) {
    if let Err(e) = shared.store.write_doc(id, file, text) {
        (shared.log)(&format!("{id}: cannot write {file}: {e}"));
    }
}
