//! `rparouter` — multi-node job sharding with worker-loss handoff.
//!
//! The router is a front daemon speaking the *same* `mbrpa.job/1` API as
//! a single `rpaserved` worker, fanning submissions out over a fleet:
//!
//! ```text
//!                 ┌── rpaserved A ──┐
//!  client ── rparouter ── rpaserved B ──┼── shared -ckpt-root
//!                 └── rpaserved C ──┘
//! ```
//!
//! Three mechanisms carry the design:
//!
//! * **Rendezvous (highest-random-weight) routing.** Each submission is
//!   canonicalized to its 128-bit input fingerprint and assigned to the
//!   live worker maximizing `fnv1a64(fingerprint ‖ worker)`. The hash is
//!   deterministic and per-key stable: adding or losing a worker only
//!   moves the keys that worker owned, so cache-hot workers keep their
//!   keys and a resubmission lands on the worker whose result cache (and
//!   checkpoint namespace) already knows it.
//! * **Health polling with timeout and backoff.** A poller thread probes
//!   every worker's `GET /v1/health` on a fixed cadence under a hard
//!   per-probe timeout. Consecutive failures beyond a threshold mark the
//!   worker dead; dead workers are re-probed under exponential backoff
//!   so a flapping host cannot monopolize the poll loop.
//! * **Ownership handoff.** Every accepted submission is recorded in a
//!   route table (`mbrpa.route-table/1`, persisted atomically) binding
//!   the router-assigned id to the fingerprint, the owning worker, and
//!   the worker-local job id; the submission body itself is kept on
//!   disk. When a worker dies with routes open, the poller re-homes each
//!   orphan: rendezvous over the *surviving* workers picks the adopter,
//!   the stored body is resubmitted there, and — because fleet workers
//!   share a fingerprint-keyed `-ckpt-root` — the adopter resumes from
//!   the dead worker's last completed frequency slice, reproducing the
//!   uninterrupted energy bit for bit. The superseded claim is parked on
//!   a `stale` list and cancelled if the old worker ever comes back, so
//!   the namespace regains a single writer.
//!
//! Result, profile, and report bodies are proxied byte-verbatim (their
//! `id` member names the executing worker's job): re-serializing a
//! result would re-render its floats, and the `total_energy_bits`
//! contract is easiest kept by never touching the bytes. Status bodies,
//! which carry no floats, are rewritten to the router's job id.

use crate::daemon::{lock, Logger};
use crate::http::{Handler, HttpServer, Request, Response};
use crate::job::{
    self, JobSpec, JobState, HEALTH_SCHEMA, LIST_SCHEMA, ROUTE_TABLE_SCHEMA, WORKER_SCHEMA,
};
use crate::json::{self, obj, s, u, JsonValue};
use crate::store::write_atomic;
use std::fs;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Consecutive probe failures before a worker is declared dead.
pub const DEFAULT_FAIL_THRESHOLD: u32 = 3;
/// Default health-poll cadence.
pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(500);
/// Default per-probe (connect + read) timeout.
pub const DEFAULT_PROBE_TIMEOUT: Duration = Duration::from_secs(2);
/// Longest backoff between probes of a dead worker.
const MAX_BACKOFF: Duration = Duration::from_secs(5);
/// The persisted route table, under the router root.
const ROUTE_TABLE_FILE: &str = "route-table.json";

/// Router configuration.
#[derive(Clone)]
pub struct RouterConfig {
    /// Router state directory: the route table and stored submission
    /// bodies live here (created if absent).
    pub root: PathBuf,
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker addresses (`ip:port` of each `rpaserved`).
    pub workers: Vec<String>,
    /// Health-poll cadence.
    pub poll_interval: Duration,
    /// Per-probe timeout (connect + read).
    pub probe_timeout: Duration,
    /// Consecutive probe failures before a worker is declared dead.
    pub fail_threshold: u32,
    /// HTTP worker threads serving the API.
    pub http_workers: usize,
    /// Diagnostics sink.
    pub log: Logger,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            root: PathBuf::from("mbrpa-router-data"),
            addr: "127.0.0.1:0".to_string(),
            workers: Vec::new(),
            poll_interval: DEFAULT_POLL_INTERVAL,
            probe_timeout: DEFAULT_PROBE_TIMEOUT,
            fail_threshold: DEFAULT_FAIL_THRESHOLD,
            http_workers: 2,
            log: Arc::new(|_| {}),
        }
    }
}

/// One worker's tracked state.
#[derive(Clone, Debug)]
struct WorkerState {
    addr: String,
    /// Optimistically true at startup; the first failed probe round
    /// corrects it (routing before the first poll must not 503 a
    /// healthy fleet).
    alive: bool,
    consecutive_failures: u32,
    /// Dead workers are re-probed only after this instant (backoff).
    backoff_until: Option<Instant>,
    /// Occupancy from the last successful health probe.
    queued: u64,
    running: u64,
    backlog_limit: u64,
    executors: u64,
}

impl WorkerState {
    fn new(addr: &str) -> Self {
        Self {
            addr: addr.to_string(),
            alive: true,
            consecutive_failures: 0,
            backoff_until: None,
            queued: 0,
            running: 0,
            backlog_limit: 0,
            executors: 0,
        }
    }

    /// The `mbrpa.worker/1` document for this worker.
    fn to_doc(&self) -> JsonValue {
        obj(vec![
            ("schema", s(WORKER_SCHEMA)),
            ("addr", s(&self.addr)),
            ("alive", JsonValue::Bool(self.alive)),
            ("queued", u(self.queued as usize)),
            ("running", u(self.running as usize)),
            (
                "consecutive_failures",
                u(self.consecutive_failures as usize),
            ),
        ])
    }
}

/// One routed job: the router id, its input fingerprint, and the
/// current owner.
#[derive(Clone, Debug)]
struct Route {
    /// Router-assigned id (`rjob-NNNNNN`), the one clients see.
    id: String,
    /// Canonical input fingerprint (the rendezvous and checkpoint key).
    fingerprint: String,
    /// Owning worker's address.
    worker: String,
    /// The job id the owner assigned.
    worker_job: String,
    /// How many times ownership has moved.
    failovers: u64,
    /// True once the router holds the result locally (a failover
    /// resubmission answered from the adopter's cache).
    done: bool,
}

/// A superseded claim: a job id on a worker that lost ownership. If
/// that worker ever returns, the claim is cancelled so the shared
/// checkpoint namespace regains a single writer.
#[derive(Clone, Debug)]
struct StaleClaim {
    worker: String,
    worker_job: String,
}

/// The mutable route table (under one lock).
#[derive(Debug, Default)]
struct RouteTable {
    next_id: u64,
    routes: Vec<Route>,
    stale: Vec<StaleClaim>,
}

impl RouteTable {
    fn to_doc(&self) -> JsonValue {
        let routes = self
            .routes
            .iter()
            .map(|r| {
                obj(vec![
                    ("id", s(&r.id)),
                    ("fingerprint", s(&r.fingerprint)),
                    ("worker", s(&r.worker)),
                    ("worker_job", s(&r.worker_job)),
                    ("state", s(if r.done { "done" } else { "routed" })),
                    ("failovers", u(r.failovers as usize)),
                ])
            })
            .collect();
        let stale = self
            .stale
            .iter()
            .map(|c| {
                obj(vec![
                    ("worker", s(&c.worker)),
                    ("worker_job", s(&c.worker_job)),
                ])
            })
            .collect();
        obj(vec![
            ("schema", s(ROUTE_TABLE_SCHEMA)),
            ("next_id", u(self.next_id as usize)),
            ("routes", JsonValue::Arr(routes)),
            ("stale", JsonValue::Arr(stale)),
        ])
    }

    /// Rebuild from a persisted (already schema-validated) document.
    fn from_doc(v: &JsonValue) -> RouteTable {
        let get_str = |r: &JsonValue, k: &str| {
            r.get(k)
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let routes = v
            .get("routes")
            .and_then(JsonValue::as_arr)
            .map(|arr| {
                arr.iter()
                    .map(|r| Route {
                        id: get_str(r, "id"),
                        fingerprint: get_str(r, "fingerprint"),
                        worker: get_str(r, "worker"),
                        worker_job: get_str(r, "worker_job"),
                        failovers: r.get("failovers").and_then(JsonValue::as_u64).unwrap_or(0),
                        done: r.get("state").and_then(JsonValue::as_str) == Some("done"),
                    })
                    .collect()
            })
            .unwrap_or_default();
        let stale = v
            .get("stale")
            .and_then(JsonValue::as_arr)
            .map(|arr| {
                arr.iter()
                    .map(|c| StaleClaim {
                        worker: get_str(c, "worker"),
                        worker_job: get_str(c, "worker_job"),
                    })
                    .collect()
            })
            .unwrap_or_default();
        RouteTable {
            next_id: v.get("next_id").and_then(JsonValue::as_u64).unwrap_or(1),
            routes,
            stale,
        }
    }
}

/// Monotonic router counters (also fed to `mbrpa-obs`).
#[derive(Debug, Default)]
struct RouterCounters {
    routed: AtomicU64,
    failovers: AtomicU64,
    forward_errors: AtomicU64,
}

/// State shared between the HTTP handlers and the poller thread.
pub struct RouterShared {
    root: PathBuf,
    workers: Mutex<Vec<WorkerState>>,
    routes: Mutex<RouteTable>,
    draining: AtomicBool,
    fail_threshold: u32,
    probe_timeout: Duration,
    counters: RouterCounters,
    log: Logger,
}

// ---------------------------------------------------------------------
// rendezvous hashing

/// FNV-1a over `bytes` (64-bit). Stable across platforms and releases —
/// the route assignment must not move when the router restarts.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Rendezvous score of `(fingerprint, worker)`.
fn rendezvous_score(fingerprint: &str, worker: &str) -> u64 {
    let mut key = Vec::with_capacity(fingerprint.len() + worker.len() + 1);
    key.extend_from_slice(fingerprint.as_bytes());
    key.push(0); // unambiguous separator: neither side contains NUL
    key.extend_from_slice(worker.as_bytes());
    fnv1a64(&key)
}

/// Candidate workers for `fingerprint`, best first: rendezvous score
/// descending, address as the (deterministic) tiebreak.
fn rendezvous_order<'a>(fingerprint: &str, workers: &[&'a str]) -> Vec<&'a str> {
    let mut scored: Vec<(u64, &str)> = workers
        .iter()
        .map(|w| (rendezvous_score(fingerprint, w), *w))
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
    scored.into_iter().map(|(_, w)| w).collect()
}

// ---------------------------------------------------------------------
// the HTTP client side (router → worker)

/// A parsed upstream reply.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One bounded HTTP exchange with a worker. The timeout covers connect,
/// send, and the full read, so a wedged worker cannot pin a handler.
fn exchange(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<Reply, String> {
    let socket: SocketAddr = addr
        .parse()
        .map_err(|_| format!("`{addr}` is not an ip:port address"))?;
    let mut stream = TcpStream::connect_timeout(&socket, timeout)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{payload}",
        payload.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send to {addr} failed: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("receive from {addr} failed: {e}"))?;
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1) // the status line
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Ok(Reply {
        status,
        headers,
        body,
    })
}

// ---------------------------------------------------------------------
// the router proper

/// A started router: HTTP server + health poller over a [`RouterShared`].
pub struct Router {
    shared: Arc<RouterShared>,
    http: HttpServer,
    poller: Option<JoinHandle<()>>,
}

impl Router {
    /// Start a router: recover the route table from `config.root`, bind
    /// `config.addr`, spawn the poller.
    pub fn start(config: RouterConfig) -> io::Result<Router> {
        if config.workers.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one worker address",
            ));
        }
        fs::create_dir_all(config.root.join("jobs"))?;
        let table = load_route_table(&config.root, &config.log);
        if !table.routes.is_empty() {
            (config.log)(&format!(
                "recovered {} route(s) from the persisted route table",
                table.routes.len()
            ));
        }
        let shared = Arc::new(RouterShared {
            root: config.root.clone(),
            workers: Mutex::new(config.workers.iter().map(|a| WorkerState::new(a)).collect()),
            routes: Mutex::new(table),
            draining: AtomicBool::new(false),
            fail_threshold: config.fail_threshold.max(1),
            probe_timeout: config.probe_timeout,
            counters: RouterCounters::default(),
            log: Arc::clone(&config.log),
        });

        let listener = TcpListener::bind(&config.addr)?;
        let handler = handler(Arc::clone(&shared));
        let http = HttpServer::start(listener, handler, config.http_workers.max(1))?;

        let poll_shared = Arc::clone(&shared);
        let poll_interval = config.poll_interval;
        let poller = std::thread::Builder::new()
            .name("mbrpa-router-poll".to_string())
            .spawn(move || poller_loop(&poll_shared, poll_interval))?;

        Ok(Router {
            shared,
            http,
            poller: Some(poller),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.http.local_addr()
    }

    /// Shared state (tests poke it directly).
    pub fn shared(&self) -> &Arc<RouterShared> {
        &self.shared
    }

    /// True once a drain has been requested (signal or `POST
    /// /v1/shutdown`). The owning binary polls this, then calls
    /// [`Router::drain`].
    pub fn drain_requested(&self) -> bool {
        // ord: Acquire — pairs with the Release stores in `drain` and the
        // HTTP shutdown handler
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Stop polling and serving. Workers (and their jobs) are left
    /// running: a drained router restarts from its route table.
    pub fn drain(&mut self) {
        // ord: Release — pairs with the Acquire loads in the poller and
        // the admission path
        self.shared.draining.store(true, Ordering::Release);
        if let Some(handle) = self.poller.take() {
            let _ = handle.join();
        }
        self.http.shutdown();
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Load the persisted route table; a missing or invalid file means a
/// fresh table (losing the table costs re-routing, not results).
fn load_route_table(root: &std::path::Path, log: &Logger) -> RouteTable {
    let path = root.join(ROUTE_TABLE_FILE);
    let Ok(text) = fs::read_to_string(&path) else {
        return RouteTable {
            next_id: 1,
            ..RouteTable::default()
        };
    };
    match json::parse(&text)
        .map_err(|e| e.to_string())
        .and_then(|doc| {
            job::validate_route_table_doc(&doc)?;
            Ok(RouteTable::from_doc(&doc))
        }) {
        Ok(table) => table,
        Err(e) => {
            log(&format!(
                "route table {} is invalid ({e}); starting fresh",
                path.display()
            ));
            RouteTable {
                next_id: 1,
                ..RouteTable::default()
            }
        }
    }
}

/// Snapshot the route table document under the lock, write it outside:
/// the table file is a recovery aid and must not hold the lock across
/// disk IO.
fn persist_routes(shared: &RouterShared) {
    let doc = lock(&shared.routes).to_doc().to_json();
    if let Err(e) = write_atomic(&shared.root.join(ROUTE_TABLE_FILE), doc.as_bytes()) {
        (shared.log)(&format!("cannot persist the route table: {e}"));
    }
}

/// Record a failed exchange with a worker: bump its failure count and,
/// past the threshold, declare it dead. Returns true when this call
/// flipped the worker from alive to dead.
fn note_worker_failure(shared: &RouterShared, addr: &str) -> bool {
    let mut workers = lock(&shared.workers);
    let Some(worker) = workers.iter_mut().find(|w| w.addr == addr) else {
        return false;
    };
    worker.consecutive_failures = worker.consecutive_failures.saturating_add(1);
    let newly_dead = worker.alive && worker.consecutive_failures >= shared.fail_threshold;
    if newly_dead {
        worker.alive = false;
    }
    if !worker.alive {
        // exponential backoff: 1, 2, 4, … poll intervals past the
        // threshold, capped, so a dead host is probed ever more lazily
        let over = worker.consecutive_failures - shared.fail_threshold;
        let factor = 1u32 << over.min(4);
        let delay = DEFAULT_POLL_INTERVAL
            .saturating_mul(factor)
            .min(MAX_BACKOFF);
        worker.backoff_until = Some(Instant::now() + delay);
    }
    newly_dead
}

/// Record a successful health probe.
fn note_worker_health(shared: &RouterShared, addr: &str, health: &JsonValue) -> bool {
    let mut workers = lock(&shared.workers);
    let Some(worker) = workers.iter_mut().find(|w| w.addr == addr) else {
        return false;
    };
    let revived = !worker.alive;
    worker.alive = true;
    worker.consecutive_failures = 0;
    worker.backoff_until = None;
    let get = |k: &str| health.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    worker.queued = get("queued");
    worker.running = get("running");
    worker.backlog_limit = get("backlog_limit");
    worker.executors = get("executors");
    revived
}

/// Addresses of currently-live workers.
fn live_workers(shared: &RouterShared) -> Vec<String> {
    lock(&shared.workers)
        .iter()
        .filter(|w| w.alive)
        .map(|w| w.addr.clone())
        .collect()
}

// ---------------------------------------------------------------------
// health poller + failover

fn poller_loop(shared: &Arc<RouterShared>, poll_interval: Duration) {
    loop {
        // ord: Acquire — pairs with the Release store in `Router::drain`
        if shared.draining.load(Ordering::Acquire) {
            return;
        }
        let round_started = Instant::now();

        // snapshot the workers due a probe, probe without any lock held
        let due: Vec<String> = lock(&shared.workers)
            .iter()
            .filter(|w| w.backoff_until.is_none_or(|until| until <= Instant::now()))
            .map(|w| w.addr.clone())
            .collect();
        for addr in due {
            match exchange(&addr, "GET", "/v1/health", None, shared.probe_timeout) {
                Ok(reply) if reply.status == 200 => {
                    if let Ok(health) = json::parse(&reply.body) {
                        if note_worker_health(shared, &addr, &health) {
                            (shared.log)(&format!("worker {addr} is back"));
                        }
                        continue;
                    }
                    probe_failed(shared, &addr, "health body is not JSON");
                }
                Ok(reply) => probe_failed(shared, &addr, &format!("health gave {}", reply.status)),
                Err(e) => probe_failed(shared, &addr, &e),
            }
        }

        adopt_orphans(shared);
        cancel_stale_claims(shared);

        // sleep in slices so a drain is observed promptly
        while round_started.elapsed() < poll_interval {
            // ord: Acquire — same drain pairing as the loop head
            if shared.draining.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

fn probe_failed(shared: &RouterShared, addr: &str, why: &str) {
    mbrpa_obs::add("serve.router.probe_fail", 1);
    if note_worker_failure(shared, addr) {
        (shared.log)(&format!("worker {addr} declared dead ({why})"));
    }
}

/// Re-home every open route whose owner is dead onto a live worker. The
/// adopter resumes from the shared fingerprint-keyed checkpoint
/// namespace, so the job continues bit-for-bit from the dead worker's
/// last completed slice.
fn adopt_orphans(shared: &Arc<RouterShared>) {
    let live = live_workers(shared);
    if live.is_empty() {
        return;
    }
    let dead: Vec<String> = lock(&shared.workers)
        .iter()
        .filter(|w| !w.alive)
        .map(|w| w.addr.clone())
        .collect();
    if dead.is_empty() {
        return;
    }
    let orphans: Vec<Route> = lock(&shared.routes)
        .routes
        .iter()
        .filter(|r| !r.done && dead.contains(&r.worker))
        .cloned()
        .collect();
    let mut moved = false;
    for orphan in orphans {
        let candidates: Vec<&str> = live.iter().map(String::as_str).collect();
        let order = rendezvous_order(&orphan.fingerprint, &candidates);
        let Ok(body) = fs::read_to_string(job_body_path(&shared.root, &orphan.id)) else {
            (shared.log)(&format!(
                "{}: stored submission body is missing; cannot fail over",
                orphan.id
            ));
            continue;
        };
        for adopter in order {
            match exchange(
                adopter,
                "POST",
                "/v1/jobs",
                Some(&body),
                shared.probe_timeout,
            ) {
                Ok(reply) if reply.status == 201 => {
                    let worker_job = json::parse(&reply.body).ok().and_then(|doc| {
                        doc.get("id").and_then(JsonValue::as_str).map(String::from)
                    });
                    let Some(worker_job) = worker_job else {
                        shared
                            .counters
                            .forward_errors
                            .fetch_add(1, Ordering::Relaxed); // ord: Relaxed — monotonic counter, no ordering needed
                        continue;
                    };
                    apply_failover(shared, &orphan, adopter, &worker_job, false);
                    (shared.log)(&format!(
                        "{}: handed off {} → {adopter} (resumes from the shared checkpoint namespace)",
                        orphan.id, orphan.worker
                    ));
                    moved = true;
                    break;
                }
                Ok(reply) if reply.status == 200 => {
                    // the adopter's result cache already holds this
                    // fingerprint: store the (bit-exact) body locally and
                    // close the route
                    let path = result_body_path(&shared.root, &orphan.id);
                    if let Err(e) = write_atomic(&path, reply.body.as_bytes()) {
                        (shared.log)(&format!("{}: cannot store adopted result: {e}", orphan.id));
                        continue;
                    }
                    apply_failover(shared, &orphan, adopter, &orphan.worker_job, true);
                    (shared.log)(&format!(
                        "{}: adopted from {adopter}'s result cache",
                        orphan.id
                    ));
                    moved = true;
                    break;
                }
                Ok(reply) => {
                    // 429 = adopter is full; retry next round rather than
                    // scatter the key off its rendezvous order
                    shared
                        .counters
                        .forward_errors
                        .fetch_add(1, Ordering::Relaxed); // ord: Relaxed — monotonic counter, no ordering needed
                    (shared.log)(&format!(
                        "{}: {adopter} refused the handoff with {}",
                        orphan.id, reply.status
                    ));
                    if reply.status == 429 {
                        break;
                    }
                }
                Err(_) => {
                    probe_failed(shared, adopter, "handoff submission failed");
                }
            }
        }
    }
    if moved {
        persist_routes(shared);
    }
}

/// Update one route after a successful handoff and park the superseded
/// claim for cancellation if its worker ever returns.
fn apply_failover(
    shared: &RouterShared,
    orphan: &Route,
    adopter: &str,
    worker_job: &str,
    done: bool,
) {
    mbrpa_obs::add("serve.router.failover", 1);
    shared.counters.failovers.fetch_add(1, Ordering::Relaxed); // ord: Relaxed — monotonic counter, no ordering needed
    let mut table = lock(&shared.routes);
    table.stale.push(StaleClaim {
        worker: orphan.worker.clone(),
        worker_job: orphan.worker_job.clone(),
    });
    if let Some(route) = table.routes.iter_mut().find(|r| r.id == orphan.id) {
        route.worker = adopter.to_string();
        route.worker_job = worker_job.to_string();
        route.failovers += 1;
        route.done = done;
    }
}

/// Cancel superseded claims on workers that came back: a revived worker
/// re-queues the jobs it was running when it died, and letting that
/// duplicate run would put a second writer on the shared checkpoint
/// namespace.
fn cancel_stale_claims(shared: &Arc<RouterShared>) {
    let live = live_workers(shared);
    let claims: Vec<StaleClaim> = lock(&shared.routes)
        .stale
        .iter()
        .filter(|c| live.contains(&c.worker))
        .cloned()
        .collect();
    if claims.is_empty() {
        return;
    }
    let mut settled: Vec<(String, String)> = Vec::new();
    for claim in claims {
        let path = format!("/v1/jobs/{}/cancel", claim.worker_job);
        match exchange(&claim.worker, "POST", &path, None, shared.probe_timeout) {
            // 2xx = cancelled (or already terminal); 404 = the worker
            // never persisted it — either way the claim is settled
            Ok(reply) if (200..300).contains(&reply.status) || reply.status == 404 => {
                (shared.log)(&format!(
                    "cancelled superseded job {} on revived worker {}",
                    claim.worker_job, claim.worker
                ));
                settled.push((claim.worker, claim.worker_job));
            }
            _ => {}
        }
    }
    if !settled.is_empty() {
        lock(&shared.routes)
            .stale
            .retain(|c| !settled.contains(&(c.worker.clone(), c.worker_job.clone())));
        persist_routes(shared);
    }
}

// ---------------------------------------------------------------------
// the HTTP handler (client → router)

fn job_body_path(root: &std::path::Path, rid: &str) -> PathBuf {
    root.join("jobs").join(format!("{rid}.json"))
}

fn result_body_path(root: &std::path::Path, rid: &str) -> PathBuf {
    root.join("jobs").join(format!("{rid}.result.json"))
}

/// Build the request handler the HTTP server dispatches to.
fn handler(shared: Arc<RouterShared>) -> Handler {
    Arc::new(move |req: &Request| route(&shared, req))
}

fn route(shared: &Arc<RouterShared>, req: &Request) -> Response {
    let segments: Vec<&str> = req
        .path
        .split('/')
        .filter(|part| !part.is_empty())
        .collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "health"]) => health(shared),
        ("GET", ["v1", "workers"]) => workers(shared),
        ("GET", ["v1", "routes"]) => Response::json(200, &lock(&shared.routes).to_doc()),
        ("POST", ["v1", "jobs"]) => submit(shared, req),
        ("GET", ["v1", "jobs"]) => list(shared),
        ("GET", ["v1", "jobs", rid]) => status(shared, rid),
        ("GET", ["v1", "jobs", rid, "result"]) => passthrough(shared, rid, "result"),
        ("GET", ["v1", "jobs", rid, "profile"]) => passthrough(shared, rid, "profile"),
        ("GET", ["v1", "jobs", rid, "report"]) => passthrough(shared, rid, "report"),
        ("POST", ["v1", "jobs", rid, "cancel"]) => cancel(shared, rid),
        ("POST", ["v1", "shutdown"]) => shutdown(shared),
        (_, ["v1", ..]) => Response::error(405, "method not allowed for this path"),
        _ => Response::error(404, "unknown path (the API lives under /v1)"),
    }
}

fn health(shared: &Arc<RouterShared>) -> Response {
    let workers = lock(&shared.workers).clone();
    let (mut queued, mut running, mut backlog, mut executors) = (0u64, 0u64, 0u64, 0u64);
    let docs: Vec<JsonValue> = workers
        .iter()
        .map(|w| {
            if w.alive {
                queued += w.queued;
                running += w.running;
                backlog += w.backlog_limit;
                executors += w.executors;
            }
            w.to_doc()
        })
        .collect();
    let counters = &shared.counters;
    let router_block = obj(vec![
        ("workers", JsonValue::Arr(docs)),
        ("routes", u(lock(&shared.routes).routes.len())),
        (
            "routed",
            u(counters.routed.load(Ordering::Relaxed) as usize), // ord: Relaxed — monotonic counter, no ordering needed
        ),
        (
            "failovers",
            u(counters.failovers.load(Ordering::Relaxed) as usize), // ord: Relaxed — monotonic counter, no ordering needed
        ),
        (
            "forward_errors",
            u(counters.forward_errors.load(Ordering::Relaxed) as usize), // ord: Relaxed — monotonic counter, no ordering needed
        ),
    ]);
    let doc = obj(vec![
        ("schema", s(HEALTH_SCHEMA)),
        ("queued", u(queued as usize)),
        ("running", u(running as usize)),
        ("backlog_limit", u(backlog as usize)),
        ("executors", u(executors as usize)),
        // the router's own dispatch — workers report theirs in their own
        // health documents
        ("simd", s(mbrpa_simd::active().name())),
        (
            "draining",
            // ord: Acquire — pairs with the Release stores in `shutdown`/`drain`
            JsonValue::Bool(shared.draining.load(Ordering::Acquire)),
        ),
        ("router", router_block),
    ]);
    Response::json(200, &doc)
}

fn workers(shared: &Arc<RouterShared>) -> Response {
    let docs: Vec<JsonValue> = lock(&shared.workers)
        .iter()
        .map(WorkerState::to_doc)
        .collect();
    Response::json(200, &obj(vec![("workers", JsonValue::Arr(docs))]))
}

fn submit(shared: &Arc<RouterShared>, req: &Request) -> Response {
    // ord: Acquire — pairs with the Release stores in `shutdown`/`drain`
    if shared.draining.load(Ordering::Acquire) {
        return Response::error(503, "router is draining; resubmit after restart");
    }
    let Some(text) = req.body_str() else {
        return Response::error(400, "body is not valid UTF-8");
    };
    let value = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("body is not valid JSON: {e}")),
    };
    // full validation at the router door: a submission no worker would
    // accept is bounced here with the same 400 a worker would give
    let spec = match JobSpec::from_json(&value) {
        Ok(spec) => spec,
        Err(e) => return Response::error(400, &e),
    };
    let fingerprint = match spec.parsed() {
        Ok(input) => mbrpa_core::fingerprint_hex(&input),
        Err(e) => return Response::error(400, &e),
    };

    let live = live_workers(shared);
    let candidates: Vec<&str> = live.iter().map(String::as_str).collect();
    for owner in rendezvous_order(&fingerprint, &candidates) {
        match exchange(owner, "POST", "/v1/jobs", Some(text), shared.probe_timeout) {
            Ok(reply) if reply.status == 201 => {
                let worker_job = json::parse(&reply.body)
                    .ok()
                    .and_then(|doc| doc.get("id").and_then(JsonValue::as_str).map(String::from));
                let Some(worker_job) = worker_job else {
                    return Response::error(502, &format!("{owner} sent a malformed status body"));
                };
                return record_route(shared, &fingerprint, owner, &worker_job, text, &reply.body);
            }
            // a 200 is the worker's result cache answering: pass the
            // stored result through byte-verbatim (it already carries
            // `cached: true` and the fingerprint); no route is created
            Ok(reply) if reply.status == 200 => return Response::raw_json(200, &reply.body),
            // the owner refusing with backpressure is passed through —
            // hopping to another worker would scatter the key off its
            // cache-hot owner for the retry as well
            Ok(reply) if reply.status == 429 => {
                let mut response = Response::raw_json(429, &reply.body);
                if let Some(seconds) = reply.header("retry-after") {
                    response = response.with_header("retry-after", seconds);
                }
                return response;
            }
            Ok(reply) if reply.status == 400 => return Response::raw_json(400, &reply.body),
            Ok(_) | Err(_) => {
                // connect failure, 5xx, or a draining worker: count a
                // strike and fall through to the next candidate
                shared
                    .counters
                    .forward_errors
                    .fetch_add(1, Ordering::Relaxed); // ord: Relaxed — monotonic counter, no ordering needed
                probe_failed(shared, owner, "submission forward failed");
            }
        }
    }
    Response::error(503, "no live worker accepted the job; retry later")
}

/// Persist the accepted submission and its route, then answer the
/// client with the worker's status body under the router-assigned id.
fn record_route(
    shared: &Arc<RouterShared>,
    fingerprint: &str,
    owner: &str,
    worker_job: &str,
    body: &str,
    reply_body: &str,
) -> Response {
    let rid = {
        let mut table = lock(&shared.routes);
        let rid = format!("rjob-{:06}", table.next_id);
        table.next_id += 1;
        table.routes.push(Route {
            id: rid.clone(),
            fingerprint: fingerprint.to_string(),
            worker: owner.to_string(),
            worker_job: worker_job.to_string(),
            failovers: 0,
            done: false,
        });
        rid
    };
    if let Err(e) = write_atomic(&job_body_path(&shared.root, &rid), body.as_bytes()) {
        // without the stored body a failover could not re-submit; refuse
        // rather than accept a job the router cannot protect
        lock(&shared.routes).routes.retain(|r| r.id != rid);
        return Response::error(500, &format!("cannot persist the submission: {e}"));
    }
    persist_routes(shared);
    mbrpa_obs::add("serve.router.route", 1);
    shared.counters.routed.fetch_add(1, Ordering::Relaxed); // ord: Relaxed — monotonic counter, no ordering needed
    (shared.log)(&format!(
        "{rid}: routed {fingerprint} → {owner} ({worker_job})"
    ));
    match rewrite_id(reply_body, &rid) {
        Some(body) => Response::raw_json(201, &body),
        None => Response::error(502, &format!("{owner} sent a malformed status body")),
    }
}

/// Re-key a JSON object's `id` member to the router id. Only used on
/// status bodies, which carry no floats — result documents are never
/// re-serialized.
fn rewrite_id(body: &str, rid: &str) -> Option<String> {
    let doc = json::parse(body).ok()?;
    let mut pairs = doc.as_obj()?.to_vec();
    for pair in pairs.iter_mut() {
        if pair.0 == "id" {
            pair.1 = s(rid);
        }
    }
    Some(JsonValue::Obj(pairs).to_json())
}

/// The stored submission spec of a route (for synthesized statuses).
fn stored_spec(shared: &RouterShared, rid: &str) -> Option<JobSpec> {
    let text = fs::read_to_string(job_body_path(&shared.root, rid)).ok()?;
    JobSpec::from_json(&json::parse(&text).ok()?).ok()
}

/// A status body for `rid`, proxied from the owner when it is
/// reachable. Returns `(http_status, body)`.
fn status_body(shared: &Arc<RouterShared>, route: &Route) -> (u16, String) {
    if route.done {
        // the router holds the result locally; the job is complete
        if let Some(spec) = stored_spec(shared, &route.id) {
            let doc = job::status_doc(&route.id, &spec, JobState::Completed, None, None);
            return (200, doc.to_json());
        }
    }
    let path = format!("/v1/jobs/{}", route.worker_job);
    match exchange(&route.worker, "GET", &path, None, shared.probe_timeout) {
        Ok(reply) if reply.status == 200 => match rewrite_id(&reply.body, &route.id) {
            Some(body) => (200, body),
            None => (502, error_body("owner sent a malformed status body")),
        },
        Ok(reply) => (reply.status, reply.body),
        Err(_) => {
            // owner unreachable: the job is (or will be) re-homed by the
            // poller and resumes from its checkpoints — report it queued
            match stored_spec(shared, &route.id) {
                Some(spec) => {
                    let doc = job::status_doc(&route.id, &spec, JobState::Queued, None, None);
                    (200, doc.to_json())
                }
                None => (503, error_body("owner unreachable; failover pending")),
            }
        }
    }
}

fn error_body(message: &str) -> String {
    obj(vec![("error", s(message))]).to_json()
}

fn find_route(shared: &RouterShared, rid: &str) -> Option<Route> {
    lock(&shared.routes)
        .routes
        .iter()
        .find(|r| r.id == rid)
        .cloned()
}

fn status(shared: &Arc<RouterShared>, rid: &str) -> Response {
    match find_route(shared, rid) {
        Some(route) => {
            let (code, body) = status_body(shared, &route);
            Response::raw_json(code, &body)
        }
        None => Response::error(404, "no such job"),
    }
}

fn list(shared: &Arc<RouterShared>) -> Response {
    let routes: Vec<Route> = lock(&shared.routes).routes.clone();
    let jobs: Vec<JsonValue> = routes
        .iter()
        .filter_map(|route| {
            let (code, body) = status_body(shared, route);
            (code == 200).then(|| json::parse(&body).ok())?
        })
        .collect();
    let doc = obj(vec![
        ("schema", s(LIST_SCHEMA)),
        ("jobs", JsonValue::Arr(jobs)),
    ]);
    Response::json(200, &doc)
}

/// Proxy a document endpoint byte-verbatim (results keep their exact
/// float renderings; the `id` inside names the worker's job).
fn passthrough(shared: &Arc<RouterShared>, rid: &str, what: &str) -> Response {
    let Some(route) = find_route(shared, rid) else {
        return Response::error(404, "no such job");
    };
    if route.done && what == "result" {
        if let Ok(text) = fs::read_to_string(result_body_path(&shared.root, rid)) {
            return Response::raw_json(200, &text);
        }
    }
    let path = format!("/v1/jobs/{}/{what}", route.worker_job);
    match exchange(&route.worker, "GET", &path, None, shared.probe_timeout) {
        Ok(reply) if what == "report" => Response::text(reply.status, &reply.body),
        Ok(reply) => Response::raw_json(reply.status, &reply.body),
        Err(_) => Response::error(503, "owner unreachable; failover pending"),
    }
}

fn cancel(shared: &Arc<RouterShared>, rid: &str) -> Response {
    let Some(route) = find_route(shared, rid) else {
        return Response::error(404, "no such job");
    };
    if route.done {
        // terminal already — mirror a worker's cancel-of-terminal reply
        let (code, body) = status_body(shared, &route);
        return Response::raw_json(code.min(200), &body);
    }
    let path = format!("/v1/jobs/{}/cancel", route.worker_job);
    match exchange(&route.worker, "POST", &path, None, shared.probe_timeout) {
        Ok(reply) if (200..300).contains(&reply.status) => match rewrite_id(&reply.body, rid) {
            Some(body) => Response::raw_json(reply.status, &body),
            None => Response::error(502, "owner sent a malformed status body"),
        },
        Ok(reply) => Response::raw_json(reply.status, &reply.body),
        Err(_) => Response::error(503, "owner unreachable; cancel it after failover"),
    }
}

fn shutdown(shared: &Arc<RouterShared>) -> Response {
    // ord: Release — pairs with the Acquire loads in `submit` and the poller
    shared.draining.store(true, Ordering::Release);
    Response::json(202, &obj(vec![("status", s("draining"))]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u8) -> String {
        format!("{:032x}", u128::from(n))
    }

    #[test]
    fn rendezvous_is_deterministic_and_minimally_disruptive() {
        let all = ["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"];
        for key in 0..32u8 {
            let fingerprint = fp(key);
            let first = rendezvous_order(&fingerprint, &all);
            let second = rendezvous_order(&fingerprint, &all);
            assert_eq!(first, second, "assignment must be deterministic");

            // removing a worker the key is NOT on must not move the key
            let owner = first[0];
            let other = all.iter().copied().find(|w| *w != owner).unwrap();
            let without_other: Vec<&str> = all.iter().copied().filter(|w| *w != other).collect();
            assert_eq!(
                rendezvous_order(&fingerprint, &without_other)[0],
                owner,
                "losing a non-owner must not move the key"
            );

            // removing the owner promotes the key's own second choice
            let without_owner: Vec<&str> = all.iter().copied().filter(|w| *w != owner).collect();
            assert_eq!(
                rendezvous_order(&fingerprint, &without_owner)[0],
                first[1],
                "failover must promote the rendezvous runner-up"
            );
        }
    }

    #[test]
    fn rendezvous_spreads_keys_across_workers() {
        let all = ["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"];
        let mut histogram = [0usize; 3];
        for key in 0..96u8 {
            let owner = rendezvous_order(&fp(key), &all)[0];
            let slot = all.iter().position(|w| *w == owner).unwrap();
            histogram[slot] += 1;
        }
        for (slot, &count) in histogram.iter().enumerate() {
            assert!(
                count > 8,
                "worker {slot} owns only {count} of 96 keys: {histogram:?}"
            );
        }
    }

    #[test]
    fn route_table_roundtrips_through_its_document() {
        let table = RouteTable {
            next_id: 7,
            routes: vec![
                Route {
                    id: "rjob-000001".to_string(),
                    fingerprint: fp(1),
                    worker: "127.0.0.1:9001".to_string(),
                    worker_job: "job-000001".to_string(),
                    failovers: 2,
                    done: false,
                },
                Route {
                    id: "rjob-000002".to_string(),
                    fingerprint: fp(2),
                    worker: "127.0.0.1:9002".to_string(),
                    worker_job: "job-000005".to_string(),
                    failovers: 0,
                    done: true,
                },
            ],
            stale: vec![StaleClaim {
                worker: "127.0.0.1:9003".to_string(),
                worker_job: "job-000002".to_string(),
            }],
        };
        let doc = table.to_doc();
        job::validate_route_table_doc(&doc).unwrap();
        let reparsed = json::parse(&doc.to_json()).unwrap();
        job::validate_route_table_doc(&reparsed).unwrap();
        let recovered = RouteTable::from_doc(&reparsed);
        assert_eq!(recovered.next_id, 7);
        assert_eq!(recovered.routes.len(), 2);
        assert_eq!(recovered.routes[0].fingerprint, fp(1));
        assert_eq!(recovered.routes[0].failovers, 2);
        assert!(!recovered.routes[0].done);
        assert!(recovered.routes[1].done);
        assert_eq!(recovered.stale.len(), 1);
        assert_eq!(recovered.stale[0].worker_job, "job-000002");
    }

    #[test]
    fn worker_doc_validates() {
        let worker = WorkerState::new("127.0.0.1:9001");
        job::validate_worker_doc(&worker.to_doc()).unwrap();
        let reparsed = json::parse(&worker.to_doc().to_json()).unwrap();
        job::validate_worker_doc(&reparsed).unwrap();
    }

    #[test]
    fn rewrite_id_touches_only_the_id_member() {
        let body =
            r#"{"schema":"mbrpa.job-status/1","id":"job-000004","state":"queued","priority":4}"#;
        let rewritten = rewrite_id(body, "rjob-000001").unwrap();
        let doc = json::parse(&rewritten).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("rjob-000001"));
        assert_eq!(doc.get("state").unwrap().as_str(), Some("queued"));
        assert_eq!(doc.get("priority").unwrap().as_u64(), Some(4));
        assert!(rewrite_id("not json", "rjob-000001").is_none());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // standard FNV-1a test vectors
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
