//! # mbrpa-serve
//!
//! Batch job-scheduling and serving daemon for RPA runs: submit `.rpa`
//! inputs over HTTP, watch per-frequency progress, cancel cooperatively,
//! and survive both graceful drains and `kill -9`.
//!
//! Everything is hand-rolled on `std` — no tokio, no hyper, no serde —
//! matching the workspace's zero-dependency discipline:
//!
//! * [`json`] — a strict recursive-descent JSON parser and writer,
//! * [`job`] — schema-versioned wire documents (`mbrpa.job/1`,
//!   `mbrpa.job-status/1`, `mbrpa.result/1`, `mbrpa.health/1`) with
//!   validators; submissions are fully parsed and cross-checked against
//!   the system they would run on *before* they are accepted,
//! * [`queue`] — a pure in-memory priority queue with a bounded backlog
//!   (full ⇒ `429` + `Retry-After`, never a dropped job),
//! * [`store`] — one directory per job with atomically-written state
//!   files; a restarted daemon rebuilds its queue from this store,
//! * [`http`] — HTTP/1.1 on `std::net`: accept thread + worker pool,
//! * [`api`] — the `/v1` routes,
//! * [`cache`] — a content-addressed exact result cache keyed by the
//!   canonical 128-bit input fingerprint; a resubmission of a
//!   semantically identical input is answered with the stored
//!   `mbrpa.result/1` (same `f64` bits) instead of recomputed,
//! * [`executor`] — runs claimed jobs in one-frequency checkpointed
//!   slices (same solver selection as `rpacalc`, so energies are
//!   bit-identical), publishing progress and observing cancellation at
//!   every slice boundary,
//! * [`daemon`] — assembly: crash recovery at startup, graceful drain
//!   on shutdown,
//! * [`router`] — `rparouter`: shards submissions across a fleet of
//!   workers by rendezvous-hashing the input fingerprint, polls worker
//!   health, and hands a dead worker's jobs to survivors, which resume
//!   bit-for-bit from a shared fingerprint-keyed checkpoint root,
//! * [`signal`] — SIGINT/SIGTERM → a cooperative `CancelToken`.
//!
//! A running job journals per-frequency state through `core::checkpoint`
//! into a per-job namespace; after a crash the job re-enters the queue
//! and its next run resumes from the journal, reproducing the
//! uninterrupted energy bit for bit.

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod daemon;
pub mod executor;
pub mod http;
pub mod job;
pub mod json;
pub mod queue;
pub mod router;
pub mod signal;
pub mod store;

pub use cache::{CacheCounters, CacheStore};
pub use daemon::{Daemon, DaemonConfig, Logger, RunningJob, ServeShared};
pub use job::{JobSpec, JobState};
pub use queue::{CancelOutcome, JobQueue, SubmitError};
pub use router::{Router, RouterConfig};
pub use store::JobStore;
