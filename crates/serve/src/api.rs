//! HTTP API: routing and handlers over a [`ServeShared`].
//!
//! | Method & path              | Purpose                                   |
//! |----------------------------|-------------------------------------------|
//! | `POST /v1/jobs`            | submit (`mbrpa.job/1`) → 201, 400, 429, 503 |
//! | `GET /v1/jobs`             | list all jobs (`?state=` filters)         |
//! | `GET /v1/jobs/<id>`        | status (`mbrpa.job-status/1`)             |
//! | `GET /v1/jobs/<id>/result` | result (`mbrpa.result/1`) → 200, 409, 404 |
//! | `GET /v1/jobs/<id>/profile`| telemetry profile JSON, when emitted      |
//! | `GET /v1/jobs/<id>/report` | human-readable run report (text)          |
//! | `POST /v1/jobs/<id>/cancel`| cancel → 200 (done) or 202 (in flight)    |
//! | `GET /v1/health`           | liveness + queue occupancy + cache counters |
//! | `GET /v1/cache`            | result-cache statistics                   |
//! | `POST /v1/cache/flush`     | drop every cached result → 200            |
//! | `POST /v1/shutdown`        | request a graceful drain → 202            |
//!
//! Every body is JSON except the report. A full backlog answers `429`
//! with a `Retry-After` header — explicit backpressure, never a dropped
//! job.
//!
//! **Result cache.** `POST /v1/jobs` first canonicalizes the submitted
//! `.rpa` input and looks its 128-bit fingerprint up in the exact result
//! cache ([`crate::cache`]). A hit creates no job at all: the response is
//! `200` carrying the stored `mbrpa.result/1` (the *exact* `f64` bits of
//! the original run, under the original job's id) with two extra
//! members, `"cached": true` and `"fingerprint"`. A miss proceeds with
//! the normal `201` submission flow.

use crate::daemon::{lock, ServeShared};
use crate::http::{Handler, Request, Response};
use crate::job::{self, JobSpec, JobState, HEALTH_SCHEMA, LIST_SCHEMA};
use crate::json::{self, obj, s, u, JsonValue};
use crate::queue::{CancelOutcome, SubmitError};
use crate::store::{ERROR_FILE, PARTIAL_FILE, PROFILE_FILE, REPORT_FILE, RESULT_FILE};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Build the request handler the HTTP server dispatches to.
pub fn handler(shared: Arc<ServeShared>) -> Handler {
    Arc::new(move |req: &Request| route(&shared, req))
}

fn route(shared: &Arc<ServeShared>, req: &Request) -> Response {
    let segments: Vec<&str> = req
        .path
        .split('/')
        .filter(|part| !part.is_empty())
        .collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "health"]) => health(shared),
        ("POST", ["v1", "jobs"]) => submit(shared, req),
        ("GET", ["v1", "jobs"]) => list(shared, req),
        ("GET", ["v1", "jobs", id]) => status(shared, id),
        ("GET", ["v1", "jobs", id, "result"]) => result(shared, id),
        ("GET", ["v1", "jobs", id, "profile"]) => doc(shared, id, PROFILE_FILE),
        ("GET", ["v1", "jobs", id, "report"]) => report(shared, id),
        ("POST", ["v1", "jobs", id, "cancel"]) => cancel(shared, id),
        ("GET", ["v1", "cache"]) => cache_stats(shared),
        ("POST", ["v1", "cache", "flush"]) => cache_flush(shared),
        ("POST", ["v1", "shutdown"]) => shutdown(shared),
        (_, ["v1", ..]) => Response::error(405, "method not allowed for this path"),
        _ => Response::error(404, "unknown path (the API lives under /v1)"),
    }
}

fn health(shared: &Arc<ServeShared>) -> Response {
    let queue = lock(&shared.queue);
    let mut pairs = vec![
        ("schema", s(HEALTH_SCHEMA)),
        ("queued", u(queue.count(JobState::Queued))),
        ("running", u(queue.count(JobState::Running))),
        ("completed", u(queue.count(JobState::Completed))),
        ("failed", u(queue.count(JobState::Failed))),
        ("cancelled", u(queue.count(JobState::Cancelled))),
        ("backlog_limit", u(queue.capacity())),
        ("executors", u(shared.executors)),
        // active SIMD dispatch path — lets a client cross-check that two
        // daemons claiming bit-identical results really can be compared
        ("simd", s(mbrpa_simd::active().name())),
        (
            "draining",
            // ord: Acquire — pairs with the Release stores in `shutdown`/`drain`
            JsonValue::Bool(shared.draining.load(Ordering::Acquire)),
        ),
    ];
    drop(queue);
    if let Some(block) = cache_block(shared) {
        pairs.push(("cache", block));
    }
    Response::json(200, &obj(pairs))
}

/// The `cache` member of the health body, `None` when the cache is off.
fn cache_block(shared: &Arc<ServeShared>) -> Option<JsonValue> {
    let cache = lock(shared.cache.as_ref()?);
    let counters = cache.counters();
    Some(obj(vec![
        ("entries", u(cache.len())),
        ("bytes", u(cache.total_bytes() as usize)),
        ("budget", u(cache.budget() as usize)),
        ("hits", u(counters.hits as usize)),
        ("misses", u(counters.misses as usize)),
        ("insertions", u(counters.insertions as usize)),
        ("evictions", u(counters.evictions as usize)),
        ("flushes", u(counters.flushes as usize)),
        ("corrupt_dropped", u(counters.corrupt_dropped as usize)),
    ]))
}

fn cache_stats(shared: &Arc<ServeShared>) -> Response {
    match cache_block(shared) {
        Some(block) => Response::json(200, &block),
        None => Response::error(404, "the result cache is disabled"),
    }
}

fn cache_flush(shared: &Arc<ServeShared>) -> Response {
    let Some(cache) = shared.cache.as_ref() else {
        return Response::error(404, "the result cache is disabled");
    };
    let flushed = lock(cache).flush();
    (shared.log)(&format!("result cache: flushed {flushed} cached result(s)"));
    Response::json(200, &obj(vec![("flushed", u(flushed))]))
}

fn submit(shared: &Arc<ServeShared>, req: &Request) -> Response {
    // ord: Acquire — pairs with the Release stores in `shutdown`/`drain`; an
    // admission that races the drain is still rejected at claim time
    if shared.draining.load(Ordering::Acquire) {
        return Response::error(503, "daemon is draining; resubmit after restart");
    }
    let Some(text) = req.body_str() else {
        return Response::error(400, "body is not valid UTF-8");
    };
    let value = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("body is not valid JSON: {e}")),
    };
    let spec = match JobSpec::from_json(&value) {
        Ok(spec) => spec,
        Err(e) => return Response::error(400, &e),
    };

    // consult the exact result cache before touching the queue: two
    // byte-different but semantically identical inputs canonicalize to
    // the same fingerprint, and a hit replays the stored result (exact
    // f64 bits) without creating a job at all
    if let (Some(cache), Ok(input)) = (shared.cache.as_ref(), spec.parsed()) {
        let fingerprint = mbrpa_core::fingerprint_hex(&input);
        if let Some(result) = lock(cache).lookup(&fingerprint) {
            mbrpa_obs::add("serve.cache.hit", 1);
            (shared.log)(&format!("cache hit {fingerprint}"));
            if let Some(mut pairs) = result.as_obj().map(<[_]>::to_vec) {
                pairs.push(("cached".to_string(), JsonValue::Bool(true)));
                pairs.push(("fingerprint".to_string(), s(&fingerprint)));
                return Response::json(200, &JsonValue::Obj(pairs));
            }
        }
        mbrpa_obs::add("serve.cache.miss", 1);
    }

    let mut queue = lock(&shared.queue);
    if let Err(refusal) = queue.check_capacity() {
        let retry_after_s = match refusal {
            SubmitError::Full { retry_after_s } => retry_after_s,
            SubmitError::Duplicate => 1, // unreachable from check_capacity
        };
        return Response::error(429, "job backlog is full; retry later")
            .with_header("retry-after", &retry_after_s.to_string());
    }
    // allocate only after the capacity check so a refused submission
    // leaves nothing on disk
    let id = match shared.store.allocate(&spec) {
        Ok(id) => id,
        Err(e) => return Response::error(500, &format!("cannot persist the job: {e}")),
    };
    match queue.submit(&id, spec.priority) {
        Ok(()) => Response::json(
            201,
            &job::status_doc(&id, &spec, JobState::Queued, None, None),
        ),
        // the store hands out fresh ids under this same lock, so neither
        // arm is reachable; answer 500 rather than panic in a handler
        Err(_) => Response::error(500, "queue refused a freshly allocated id"),
    }
}

fn list(shared: &Arc<ServeShared>, req: &Request) -> Response {
    let filter = req
        .query
        .iter()
        .find(|(k, _)| k == "state")
        .and_then(|(_, v)| JobState::parse(v));
    if filter.is_none() {
        if let Some((_, v)) = req.query.iter().find(|(k, _)| k == "state") {
            return Response::error(400, &format!("unknown state filter `{v}`"));
        }
    }
    let ids: Vec<(String, JobState)> = lock(&shared.queue)
        .entries()
        .iter()
        .filter(|e| filter.is_none_or(|f| e.state == f))
        .map(|e| (e.id.clone(), e.state))
        .collect();
    let jobs: Vec<JsonValue> = ids
        .iter()
        .filter_map(|(id, _)| status_body(shared, id))
        .collect();
    let doc = obj(vec![
        ("schema", s(LIST_SCHEMA)),
        ("jobs", JsonValue::Arr(jobs)),
    ]);
    Response::json(200, &doc)
}

fn status(shared: &Arc<ServeShared>, id: &str) -> Response {
    match status_body(shared, id) {
        Some(doc) => Response::json(200, &doc),
        None => Response::error(404, "no such job"),
    }
}

/// Assemble a `mbrpa.job-status/1` body, or `None` for unknown jobs.
fn status_body(shared: &Arc<ServeShared>, id: &str) -> Option<JsonValue> {
    let spec = shared.store.load_spec(id)?;
    // the in-memory queue is authoritative while the daemon runs; the
    // state file only matters across restarts
    let state = lock(&shared.queue)
        .state_of(id)
        .or_else(|| shared.store.read_state(id))?;
    let progress = match state {
        JobState::Running => shared.running_job(id).and_then(|run| {
            // ord: Acquire — pairs with the executor's Release stores so
            // `completed` never reads ahead of the published `n_omega`
            let n_omega = run.n_omega.load(Ordering::Acquire);
            // ord: Acquire — same pairing as `n_omega` above
            (n_omega > 0).then(|| (run.completed.load(Ordering::Acquire), n_omega))
        }),
        JobState::Cancelled => partial_progress(shared, id),
        _ => None,
    };
    let error = match state {
        JobState::Failed => shared.store.read_doc(id, ERROR_FILE),
        _ => None,
    };
    Some(job::status_doc(
        id,
        &spec,
        state,
        progress,
        error.as_deref(),
    ))
}

/// Completed/total frequencies of a cancelled job, from its stored
/// partial-progress summary.
fn partial_progress(shared: &Arc<ServeShared>, id: &str) -> Option<(usize, usize)> {
    let text = shared.store.read_doc(id, PARTIAL_FILE)?;
    let doc = json::parse(&text).ok()?;
    let completed = doc.get("completed")?.as_u64()?;
    let n_omega = doc.get("n_omega")?.as_u64()?;
    Some((completed as usize, n_omega as usize))
}

fn result(shared: &Arc<ServeShared>, id: &str) -> Response {
    match shared.store.read_doc(id, RESULT_FILE) {
        Some(text) => Response::raw_json(200, &text),
        None => match lock(&shared.queue).state_of(id) {
            Some(state) => {
                let message = if state.is_terminal() {
                    format!("job is {}; it has no result", state.as_str())
                } else {
                    format!("job is {}; no result yet", state.as_str())
                };
                Response::error(409, &message)
            }
            None => Response::error(404, "no such job"),
        },
    }
}

fn doc(shared: &Arc<ServeShared>, id: &str, file: &str) -> Response {
    match shared.store.read_doc(id, file) {
        Some(text) => Response::raw_json(200, &text),
        None => match lock(&shared.queue).state_of(id) {
            Some(_) => Response::error(404, &format!("job has no {file}")),
            None => Response::error(404, "no such job"),
        },
    }
}

fn report(shared: &Arc<ServeShared>, id: &str) -> Response {
    match shared.store.read_doc(id, REPORT_FILE) {
        Some(text) => Response::text(200, &text),
        None => match lock(&shared.queue).state_of(id) {
            Some(_) => Response::error(404, "job has no report"),
            None => Response::error(404, "no such job"),
        },
    }
}

fn cancel(shared: &Arc<ServeShared>, id: &str) -> Response {
    let mut queue = lock(&shared.queue);
    match queue.cancel(id) {
        None => Response::error(404, "no such job"),
        Some(CancelOutcome::WasQueued) => {
            if let Err(e) = shared.store.write_state(id, JobState::Cancelled) {
                (shared.log)(&format!("{id}: cannot persist cancelled state: {e}"));
            }
            drop(queue);
            cancel_reply(shared, id, 200)
        }
        Some(CancelOutcome::WasRunning) => {
            if let Some(run) = shared.running_job(id) {
                // order matters: mark the cancellation as user-initiated
                // *before* tripping the token, so the executor cannot
                // observe the token and still see a drain
                // ord: Release — pairs with the executor's Acquire load of
                // `user_cancel` after it observes the token trip
                run.user_cancel.store(true, Ordering::Release);
                run.token.cancel();
            }
            drop(queue);
            // 202: the run stops at its next frequency boundary
            cancel_reply(shared, id, 202)
        }
        Some(CancelOutcome::AlreadyTerminal) => {
            drop(queue);
            cancel_reply(shared, id, 200)
        }
    }
}

fn cancel_reply(shared: &Arc<ServeShared>, id: &str, status: u16) -> Response {
    match status_body(shared, id) {
        Some(doc) => Response::json(status, &doc),
        None => Response::error(404, "no such job"),
    }
}

fn shutdown(shared: &Arc<ServeShared>) -> Response {
    // ord: Release — pairs with the Acquire loads in `submit`/`health`/executor claim
    shared.draining.store(true, Ordering::Release);
    // cancel without `user_cancel`: running jobs checkpoint and requeue
    for run in lock(&shared.running).iter() {
        run.token.cancel();
    }
    Response::json(202, &obj(vec![("status", s("draining"))]))
}
