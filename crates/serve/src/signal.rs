//! Zero-dependency POSIX signal handling: SIGINT/SIGTERM → a process
//! flag → a cooperative [`CancelToken`].
//!
//! The handler itself does exactly one lock-free atomic store (the only
//! async-signal-safe action it takes); everything else happens on
//! ordinary threads. Consumers either poll
//! [`termination_requested`] (the daemon's accept loop) or spawn a
//! [`watch`]er that trips a `CancelToken` when the flag rises (the
//! `rpacalc` CLI, so Ctrl-C checkpoints the run and writes a partial
//! report instead of discarding hours of work).
//!
//! Only the C library's `signal(2)` is linked — no external crates —
//! and the binding is Linux/POSIX; on other targets the daemon still
//! runs, just without signal-driven shutdown.

use mbrpa_core::CancelToken;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::thread::JoinHandle;
use std::time::Duration;

/// `SIGINT` (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite kill; the daemon drains on it).
pub const SIGTERM: i32 = 15;

/// Set by the handler; never cleared (termination is one-way, like the
/// `CancelToken` it feeds).
static TERMINATION: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

type SigHandler = extern "C" fn(i32);

extern "C" {
    /// C library `signal(2)`. The return (the previous handler) is a
    /// pointer-sized value we never inspect.
    fn signal(signum: i32, handler: SigHandler) -> isize;
}

extern "C" fn on_signal(_signum: i32) {
    // a single lock-free atomic store — async-signal-safe
    // ord: Release — pairs with the Acquire load in `termination_requested`
    TERMINATION.store(true, Ordering::Release);
}

/// Install the SIGINT/SIGTERM handler (idempotent). Call early, before
/// spawning worker threads, so every thread inherits the disposition.
pub fn install_termination_handler() {
    INSTALL.call_once(|| {
        // SAFETY: `signal(2)` is called with a valid signal number and a
        // `'static` handler fn whose body performs only one lock-free
        // atomic store, which is async-signal-safe per POSIX; the
        // ignored return value is pointer-sized on every supported ABI.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    });
}

/// True once SIGINT or SIGTERM has been delivered. Sticky.
pub fn termination_requested() -> bool {
    // ord: Acquire — pairs with the Release stores in `on_signal` and the tests
    TERMINATION.load(Ordering::Acquire)
}

/// Background thread bridging the termination flag into a
/// [`CancelToken`]. Dropping the watcher stops the thread without
/// cancelling anything (the normal completed-run path).
pub struct CancelWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for CancelWatcher {
    fn drop(&mut self) {
        // ord: Release — pairs with the watcher thread's Acquire load of `stop`
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Install the handler and spawn a watcher that cancels `cancel` when a
/// termination signal arrives. Poll period is 25 ms — far below any
/// frequency boundary the token is checked at.
pub fn watch(cancel: CancelToken) -> CancelWatcher {
    install_termination_handler();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_seen = Arc::clone(&stop);
    let handle = std::thread::spawn(move || loop {
        if termination_requested() {
            cancel.cancel();
            return;
        }
        // ord: Acquire — pairs with the Release store in `CancelWatcher::drop`
        if stop_seen.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });
    CancelWatcher {
        stop,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    extern "C" {
        /// C library `raise(3)`: deliver a signal to the calling thread,
        /// synchronously (it returns only after the handler ran).
        fn raise(signum: i32) -> i32;
    }

    /// The termination flag is process-global; serialize the tests that
    /// touch it and reset between them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn reset_flag() {
        // ord: Release — mirror the production store so tests exercise the same pairing
        TERMINATION.store(false, Ordering::Release);
    }

    #[test]
    fn a_real_signal_sets_the_flag() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset_flag();
        install_termination_handler();
        assert!(!termination_requested());
        // SAFETY: raising SIGTERM with our no-op-beyond-an-atomic-store
        // handler installed; delivery is synchronous on this thread.
        let rc = unsafe { raise(SIGTERM) };
        assert_eq!(rc, 0);
        assert!(termination_requested());
        reset_flag();
    }

    #[test]
    fn watcher_trips_the_token_on_termination() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset_flag();
        let token = CancelToken::new();
        let watcher = watch(token.clone());
        assert!(!token.is_cancelled());
        // ord: Release — simulate `on_signal` with the identical store
        TERMINATION.store(true, Ordering::Release);
        // the watcher polls every 25 ms; give it a generous window
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !token.is_cancelled() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(token.is_cancelled());
        drop(watcher);
        reset_flag();
    }

    #[test]
    fn dropping_the_watcher_does_not_cancel() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset_flag();
        let token = CancelToken::new();
        let watcher = watch(token.clone());
        drop(watcher); // joins the thread
        assert!(!token.is_cancelled());
    }
}
