//! Job wire schemas and hand-rolled validators.
//!
//! Every body the daemon reads or writes is a schema-versioned JSON
//! document; the `schema` member names the layout so clients can detect
//! incompatible upgrades instead of misreading fields:
//!
//! * `mbrpa.job/1` — a submission: the `.rpa` input text plus queueing
//!   metadata (validated end-to-end, including a full parse of the
//!   input, **before** the job is accepted),
//! * `mbrpa.job-status/1` — queue state and per-frequency progress,
//! * `mbrpa.result/1` — the finished energy, with the exact IEEE-754
//!   bits alongside the decimal rendering so bit-for-bit comparisons
//!   survive the JSON round-trip,
//! * `mbrpa.health/1` — daemon liveness and queue occupancy,
//! * `mbrpa.cache-entry/1` — one persisted result-cache entry: the
//!   canonical 128-bit input fingerprint plus the embedded
//!   `mbrpa.result/1` it maps to (see `crate::cache`).

use crate::json::{obj, s, u, JsonValue};
use mbrpa_core::io::{parse_rpa_input, RpaInput};
use mbrpa_core::{PartialRun, RpaResult};

/// Schema tag of a job submission body.
pub const JOB_SCHEMA: &str = mbrpa_schema::JOB;
/// Schema tag of a status body.
pub const STATUS_SCHEMA: &str = mbrpa_schema::JOB_STATUS;
/// Schema tag of a result body.
pub const RESULT_SCHEMA: &str = mbrpa_schema::RESULT;
/// Schema tag of the health body.
pub const HEALTH_SCHEMA: &str = mbrpa_schema::HEALTH;
/// Schema tag of the job-list body.
pub const LIST_SCHEMA: &str = mbrpa_schema::JOB_LIST;
/// Schema tag of a persisted result-cache entry.
pub const CACHE_ENTRY_SCHEMA: &str = mbrpa_schema::CACHE_ENTRY;
/// Schema tag of one worker's liveness/occupancy document (router).
pub const WORKER_SCHEMA: &str = mbrpa_schema::WORKER;
/// Schema tag of the router's job-ownership table.
pub const ROUTE_TABLE_SCHEMA: &str = mbrpa_schema::ROUTE_TABLE;

/// Highest accepted priority (larger runs sooner).
pub const MAX_PRIORITY: u8 = 9;
/// Priority assigned when a submission omits the member.
pub const DEFAULT_PRIORITY: u8 = 4;
/// Largest accepted `.rpa` input text, in bytes.
pub const MAX_INPUT_BYTES: usize = 256 * 1024;

/// A validated job submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Optional human-readable label (`[A-Za-z0-9._-]{1,64}`).
    pub name: Option<String>,
    /// Queue priority, `0..=9`; higher claims first, FIFO within a level.
    pub priority: u8,
    /// The `.rpa` input text, verbatim (already known to parse).
    pub input: String,
}

impl JobSpec {
    /// Validate a parsed `mbrpa.job/1` body. Errors are client-facing
    /// messages (the daemon returns them in 400 responses).
    pub fn from_json(v: &JsonValue) -> Result<JobSpec, String> {
        let pairs = v.as_obj().ok_or("body must be a JSON object")?;
        for (key, _) in pairs {
            if !matches!(key.as_str(), "schema" | "name" | "priority" | "input") {
                return Err(format!("unknown member `{key}`"));
            }
        }
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing `schema` member")?;
        if schema != JOB_SCHEMA {
            return Err(format!(
                "unsupported schema `{schema}` (need `{JOB_SCHEMA}`)"
            ));
        }
        let name = match v.get("name") {
            None | Some(JsonValue::Null) => None,
            Some(n) => {
                let text = n.as_str().ok_or("`name` must be a string")?;
                if !valid_label(text) {
                    return Err("`name` must match [A-Za-z0-9._-]{1,64}".to_string());
                }
                Some(text.to_string())
            }
        };
        let priority = match v.get("priority") {
            None | Some(JsonValue::Null) => DEFAULT_PRIORITY,
            Some(p) => {
                let raw = p
                    .as_u64()
                    .filter(|&raw| raw <= u64::from(MAX_PRIORITY))
                    .ok_or_else(|| format!("`priority` must be an integer 0..={MAX_PRIORITY}"))?;
                raw as u8
            }
        };
        let input = v
            .get("input")
            .and_then(JsonValue::as_str)
            .ok_or("missing `input` member (the `.rpa` text)")?;
        if input.is_empty() {
            return Err("`input` must not be empty".to_string());
        }
        if input.len() > MAX_INPUT_BYTES {
            return Err(format!("`input` exceeds {MAX_INPUT_BYTES} bytes"));
        }
        // full parse up front: a job that cannot run is rejected at the
        // door, not discovered minutes later by an executor
        let parsed = parse_rpa_input(input).map_err(|e| format!("invalid `.rpa` input: {e}"))?;
        precheck(&parsed)?;
        Ok(JobSpec {
            name,
            priority: priority.min(MAX_PRIORITY),
            input: input.to_string(),
        })
    }

    /// The persisted `job.json` form (same layout as the wire schema).
    pub fn to_json_value(&self) -> JsonValue {
        let mut pairs = vec![("schema", s(JOB_SCHEMA))];
        if let Some(name) = &self.name {
            pairs.push(("name", s(name)));
        }
        pairs.push(("priority", u(usize::from(self.priority))));
        pairs.push(("input", s(&self.input)));
        obj(pairs)
    }

    /// Re-parse the embedded `.rpa` text (validated at submission, so
    /// this only fails if the on-disk `job.json` was edited by hand).
    pub fn parsed(&self) -> Result<RpaInput, String> {
        parse_rpa_input(&self.input).map_err(|e| format!("invalid `.rpa` input: {e}"))
    }
}

/// Cross-check the solver configuration against the system it will run
/// on. `RpaConfig::validate` treats violations as programmer errors and
/// panics; a daemon must instead refuse them at submission so a bad job
/// can never take down (or wedge) an executor.
pub fn precheck(input: &RpaInput) -> Result<(), String> {
    let spec = &input.system;
    if spec.cells_z < 1 {
        return Err("CELLS_Z must be at least 1".to_string());
    }
    if spec.points_per_cell < 5 {
        return Err("POINTS_PER_CELL must be at least 5".to_string());
    }
    if !(spec.mesh.is_finite() && spec.mesh > 0.0) {
        return Err("MESH must be a positive number".to_string());
    }
    let n_d = spec.points_per_cell * spec.points_per_cell * spec.points_per_cell * spec.cells_z;
    let config = &input.config;
    if config.n_eig < 1 {
        return Err("N_NUCHI_EIGS must be at least 1".to_string());
    }
    if config.n_eig > n_d {
        return Err(format!(
            "N_NUCHI_EIGS = {} exceeds the grid dimension n_d = {n_d}",
            config.n_eig
        ));
    }
    if config.n_omega < 1 {
        return Err("N_OMEGA must be at least 1".to_string());
    }
    if config.tol_eig.is_empty() {
        return Err("TOL_EIG must be non-empty".to_string());
    }
    if !(config.tol_sternheimer.is_finite() && config.tol_sternheimer > 0.0) {
        return Err("TOL_STERN_RES must be positive".to_string());
    }
    if config.n_workers < 1 {
        return Err("NP must be at least 1".to_string());
    }
    if let Some(site) = input.vacancy {
        if site >= 8 * spec.cells_z {
            return Err(format!(
                "VACANCY site {site} is out of range (the system has {} sites)",
                8 * spec.cells_z
            ));
        }
    }
    Ok(())
}

/// `[A-Za-z0-9._-]{1,64}`, no leading dot — the same shape as job ids.
pub fn valid_label(text: &str) -> bool {
    !text.is_empty()
        && text.len() <= 64
        && !text.starts_with('.')
        && text
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Lifecycle state of a job. `Queued → Running → {Completed, Failed,
/// Cancelled}`; terminal states are absorbing. A `Running` job found on
/// disk at daemon startup was interrupted by a crash and re-enters the
/// queue (its checkpoints make the resume bit-for-bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the backlog.
    Queued,
    /// Claimed by an executor.
    Running,
    /// Finished; `result.json` is available.
    Completed,
    /// The run errored; `error.txt` holds the message.
    Failed,
    /// Cancelled by request; checkpointed state remains on disk.
    Cancelled,
}

impl JobState {
    /// Canonical lowercase name (the `state` file and JSON member).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`JobState::as_str`].
    pub fn parse(text: &str) -> Option<JobState> {
        match text.trim() {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "completed" => Some(JobState::Completed),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }

    /// True for states no transition leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Build a `mbrpa.job-status/1` body. `progress` is `(completed,
/// n_omega)` when known (running or cancelled jobs), `error` the failure
/// message for failed jobs.
pub fn status_doc(
    id: &str,
    spec: &JobSpec,
    state: JobState,
    progress: Option<(usize, usize)>,
    error: Option<&str>,
) -> JsonValue {
    let mut pairs = vec![("schema", s(STATUS_SCHEMA)), ("id", s(id))];
    match &spec.name {
        Some(name) => pairs.push(("name", s(name))),
        None => pairs.push(("name", JsonValue::Null)),
    }
    pairs.push(("priority", u(usize::from(spec.priority))));
    pairs.push(("state", s(state.as_str())));
    if let Some((completed, n_omega)) = progress {
        pairs.push(("completed", u(completed)));
        pairs.push(("n_omega", u(n_omega)));
    }
    if let Some(message) = error {
        pairs.push(("error", s(message)));
    }
    obj(pairs)
}

/// Build a `mbrpa.result/1` body from a finished run. The energy is
/// carried twice: as a decimal number for humans, and as the exact
/// IEEE-754 bit pattern (`total_energy_bits`, 16 hex digits) so clients
/// can assert bit-for-bit reproducibility across daemon restarts.
pub fn result_doc(id: &str, result: &RpaResult) -> JsonValue {
    obj(vec![
        ("schema", s(RESULT_SCHEMA)),
        ("id", s(id)),
        ("n_d", u(result.n_d)),
        ("n_s", u(result.n_s)),
        ("n_atoms", u(result.n_atoms)),
        ("n_omega", u(result.per_omega.len())),
        ("n_restored", u(result.n_restored)),
        ("total_energy", JsonValue::Num(result.total_energy)),
        (
            "total_energy_bits",
            s(&format!("{:016x}", result.total_energy.to_bits())),
        ),
        ("energy_per_atom", JsonValue::Num(result.energy_per_atom)),
        ("wall_s", JsonValue::Num(result.wall_time.as_secs_f64())),
    ])
}

/// Build the partial-progress summary stored for cancelled jobs (not a
/// result: the accumulated energy is explicitly marked partial).
pub fn partial_doc(id: &str, partial: &PartialRun) -> JsonValue {
    obj(vec![
        ("schema", s(STATUS_SCHEMA)),
        ("id", s(id)),
        ("state", s(JobState::Cancelled.as_str())),
        ("completed", u(partial.completed)),
        ("n_omega", u(partial.n_omega)),
        ("partial_energy", JsonValue::Num(partial.accumulated_energy)),
    ])
}

fn require_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string member `{key}`"))
}

fn require_num(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing numeric member `{key}`"))
}

fn require_uint(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing integer member `{key}`"))
}

/// Validate a `mbrpa.result/1` document, including that
/// `total_energy_bits` decodes to exactly the bits of `total_energy`.
pub fn validate_result_doc(v: &JsonValue) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != RESULT_SCHEMA {
        return Err(format!("schema is `{schema}`, need `{RESULT_SCHEMA}`"));
    }
    let id = require_str(v, "id")?;
    if !valid_label(id) {
        return Err(format!("`id` `{id}` is not a valid job id"));
    }
    for key in ["n_d", "n_s", "n_atoms", "n_omega", "n_restored"] {
        require_uint(v, key)?;
    }
    if require_uint(v, "n_omega")? == 0 {
        return Err("`n_omega` must be at least 1".to_string());
    }
    let energy = require_num(v, "total_energy")?;
    if !energy.is_finite() {
        return Err("`total_energy` must be finite".to_string());
    }
    let bits_hex = require_str(v, "total_energy_bits")?;
    if bits_hex.len() != 16 {
        return Err("`total_energy_bits` must be 16 hex digits".to_string());
    }
    let bits = u64::from_str_radix(bits_hex, 16)
        .map_err(|_| "`total_energy_bits` is not hex".to_string())?;
    // exact integer comparison of the bit patterns — the decimal member
    // must round-trip to the same f64 the run produced
    if bits != energy.to_bits() {
        return Err(format!(
            "`total_energy_bits` ({bits_hex}) does not match `total_energy` bits ({:016x})",
            energy.to_bits()
        ));
    }
    require_num(v, "energy_per_atom")?;
    let wall = require_num(v, "wall_s")?;
    if !wall.is_finite() || wall < 0.0 {
        return Err("`wall_s` must be non-negative".to_string());
    }
    Ok(())
}

/// Validate a `mbrpa.cache-entry/1` document: the schema tag, a
/// canonical fingerprint, and a fully valid embedded `mbrpa.result/1`
/// (including its bit-pattern cross-check — a cache must never replay a
/// result whose stored bits disagree with its decimal rendering).
pub fn validate_cache_entry_doc(v: &JsonValue) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != CACHE_ENTRY_SCHEMA {
        return Err(format!("schema is `{schema}`, need `{CACHE_ENTRY_SCHEMA}`"));
    }
    let fingerprint = require_str(v, "fingerprint")?;
    if !mbrpa_core::is_fingerprint_hex(fingerprint) {
        return Err(format!(
            "`fingerprint` `{fingerprint}` is not 32 lowercase hex digits"
        ));
    }
    let result = v.get("result").ok_or("missing object member `result`")?;
    validate_result_doc(result).map_err(|e| format!("embedded result: {e}"))
}

/// Validate a `mbrpa.job-status/1` document.
pub fn validate_status_doc(v: &JsonValue) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != STATUS_SCHEMA {
        return Err(format!("schema is `{schema}`, need `{STATUS_SCHEMA}`"));
    }
    require_str(v, "id")?;
    let state = require_str(v, "state")?;
    if JobState::parse(state).is_none() {
        return Err(format!("unknown `state` `{state}`"));
    }
    if let Some(p) = v.get("completed") {
        p.as_u64().ok_or("`completed` must be an integer")?;
    }
    if let Some(p) = v.get("n_omega") {
        p.as_u64().ok_or("`n_omega` must be an integer")?;
    }
    Ok(())
}

/// Validate a `mbrpa.health/1` document.
pub fn validate_health_doc(v: &JsonValue) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != HEALTH_SCHEMA {
        return Err(format!("schema is `{schema}`, need `{HEALTH_SCHEMA}`"));
    }
    for key in ["queued", "running", "backlog_limit", "executors"] {
        require_uint(v, key)?;
    }
    let simd = require_str(v, "simd")?;
    if !["scalar", "avx2", "neon"].contains(&simd) {
        return Err(format!("unknown `simd` dispatch `{simd}`"));
    }
    // the cache block is optional (daemons may run with `-no-cache`),
    // but when present its counters must all be there
    if let Some(cache) = v.get("cache") {
        if cache.as_obj().is_none() {
            return Err("`cache` must be an object".to_string());
        }
        for key in [
            "entries",
            "bytes",
            "budget",
            "hits",
            "misses",
            "insertions",
            "evictions",
        ] {
            cache
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing integer member `cache.{key}`"))?;
        }
    }
    // the router block is optional (plain workers have none), but when
    // present its worker documents and counters must all check out
    if let Some(router) = v.get("router") {
        if router.as_obj().is_none() {
            return Err("`router` must be an object".to_string());
        }
        let workers = router
            .get("workers")
            .and_then(JsonValue::as_arr)
            .ok_or("missing array member `router.workers`")?;
        for worker in workers {
            validate_worker_doc(worker).map_err(|e| format!("router worker: {e}"))?;
        }
        for key in ["routes", "routed", "failovers", "forward_errors"] {
            router
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing integer member `router.{key}`"))?;
        }
    }
    Ok(())
}

/// Validate a `mbrpa.worker/1` document: one worker's liveness and
/// occupancy as the router tracks it.
pub fn validate_worker_doc(v: &JsonValue) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != WORKER_SCHEMA {
        return Err(format!("schema is `{schema}`, need `{WORKER_SCHEMA}`"));
    }
    if require_str(v, "addr")?.is_empty() {
        return Err("`addr` must not be empty".to_string());
    }
    match v.get("alive") {
        Some(JsonValue::Bool(_)) => {}
        _ => return Err("`alive` must be a boolean".to_string()),
    }
    for key in ["queued", "running", "consecutive_failures"] {
        require_uint(v, key)?;
    }
    Ok(())
}

/// Validate a `mbrpa.route-table/1` document: the router's persisted
/// job-ownership table. Each route binds a router-assigned id to its
/// input fingerprint, the owning worker, and the worker-local job id;
/// the optional `stale` list names superseded claims the router still
/// owes a cancel (see `crate::router`).
pub fn validate_route_table_doc(v: &JsonValue) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != ROUTE_TABLE_SCHEMA {
        return Err(format!("schema is `{schema}`, need `{ROUTE_TABLE_SCHEMA}`"));
    }
    require_uint(v, "next_id")?;
    let routes = v
        .get("routes")
        .and_then(JsonValue::as_arr)
        .ok_or("missing array member `routes`")?;
    for route in routes {
        let id = require_str(route, "id")?;
        if !valid_label(id) {
            return Err(format!("route `id` `{id}` is not a valid job id"));
        }
        let fingerprint = require_str(route, "fingerprint")?;
        if !mbrpa_core::is_fingerprint_hex(fingerprint) {
            return Err(format!(
                "route `fingerprint` `{fingerprint}` is not 32 lowercase hex digits"
            ));
        }
        if require_str(route, "worker")?.is_empty() {
            return Err("route `worker` must not be empty".to_string());
        }
        let worker_job = require_str(route, "worker_job")?;
        if !valid_label(worker_job) {
            return Err(format!(
                "route `worker_job` `{worker_job}` is not a valid job id"
            ));
        }
        let state = require_str(route, "state")?;
        if !matches!(state, "routed" | "done") {
            return Err(format!(
                "route `state` `{state}` must be `routed` or `done`"
            ));
        }
        require_uint(route, "failovers")?;
    }
    if let Some(stale) = v.get("stale") {
        let entries = stale
            .as_arr()
            .ok_or("`stale` must be an array when present")?;
        for entry in entries {
            if require_str(entry, "worker")?.is_empty() {
                return Err("stale `worker` must not be empty".to_string());
            }
            let worker_job = require_str(entry, "worker_job")?;
            if !valid_label(worker_job) {
                return Err(format!(
                    "stale `worker_job` `{worker_job}` is not a valid job id"
                ));
            }
        }
    }
    Ok(())
}

/// Validate an `mbrpa-obs` profile document (JSON schema version 1):
/// `schema_version`, a `job` attribution (string or null), and the span
/// and counter tables.
pub fn validate_profile_doc(v: &JsonValue) -> Result<(), String> {
    let version = require_uint(v, "schema_version")?;
    if version != 2 {
        return Err(format!("profile schema_version is {version}, need 2"));
    }
    match v.get("job") {
        Some(JsonValue::Null) | Some(JsonValue::Str(_)) => {}
        _ => return Err("`job` must be a string or null".to_string()),
    }
    match v.get("dispatch") {
        Some(JsonValue::Null) | Some(JsonValue::Str(_)) => {}
        _ => return Err("`dispatch` must be a string or null".to_string()),
    }
    require_num(v, "total_wall_s")?;
    let spans = v
        .get("spans")
        .and_then(JsonValue::as_arr)
        .ok_or("missing array member `spans`")?;
    for span in spans {
        require_str(span, "path")?;
        require_num(span, "total_s")?;
        require_uint(span, "count")?;
    }
    v.get("counters")
        .and_then(JsonValue::as_arr)
        .ok_or("missing array member `counters`")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    const GOOD_INPUT: &str = "N_OMEGA: 3\nN_NUCHI_EIGS: 8\nPOINTS_PER_CELL: 5\n";

    fn good_body() -> String {
        let spec = JobSpec {
            name: Some("smoke".to_string()),
            priority: 7,
            input: GOOD_INPUT.to_string(),
        };
        spec.to_json_value().to_json()
    }

    #[test]
    fn job_roundtrips_through_its_own_writer() {
        let v = parse(&good_body()).unwrap();
        let spec = JobSpec::from_json(&v).unwrap();
        assert_eq!(spec.name.as_deref(), Some("smoke"));
        assert_eq!(spec.priority, 7);
        assert_eq!(spec.input, GOOD_INPUT);
    }

    #[test]
    fn submissions_are_strictly_validated() {
        let cases = [
            (r#"{"input":"N_OMEGA: 3"}"#, "schema"),
            (r#"{"schema":"mbrpa.job/2","input":"N_OMEGA: 3"}"#, "schema"),
            (r#"{"schema":"mbrpa.job/1"}"#, "input"),
            (r#"{"schema":"mbrpa.job/1","input":""}"#, "empty"),
            (
                r#"{"schema":"mbrpa.job/1","input":"NOT_A_KEY: 1"}"#,
                "invalid `.rpa`",
            ),
            (
                r#"{"schema":"mbrpa.job/1","input":"N_OMEGA: 3","priority":12}"#,
                "priority",
            ),
            (
                r#"{"schema":"mbrpa.job/1","input":"N_OMEGA: 3","name":"../evil"}"#,
                "name",
            ),
            (
                r#"{"schema":"mbrpa.job/1","input":"N_OMEGA: 3","surprise":1}"#,
                "unknown",
            ),
        ];
        for (body, needle) in cases {
            let v = parse(body).unwrap();
            let e = JobSpec::from_json(&v).unwrap_err();
            assert!(e.contains(needle), "{body}: error `{e}` missing `{needle}`");
        }
    }

    #[test]
    fn precheck_rejects_configs_that_cannot_run() {
        // n_d = 5³ = 125, so 200 eigenpairs are impossible; without the
        // precheck this would panic inside an executor thread
        let body = r#"{"schema":"mbrpa.job/1","input":"POINTS_PER_CELL: 5\nN_NUCHI_EIGS: 200"}"#;
        let e = JobSpec::from_json(&parse(body).unwrap()).unwrap_err();
        assert!(e.contains("N_NUCHI_EIGS"), "got `{e}`");

        let body = r#"{"schema":"mbrpa.job/1","input":"VACANCY: 9"}"#;
        let e = JobSpec::from_json(&parse(body).unwrap()).unwrap_err();
        assert!(
            e.contains("VACANCY") || e.contains("out of range"),
            "got `{e}`"
        );
    }

    #[test]
    fn default_priority_applies() {
        let v = parse(r#"{"schema":"mbrpa.job/1","input":"N_OMEGA: 3"}"#).unwrap();
        let spec = JobSpec::from_json(&v).unwrap();
        assert_eq!(spec.priority, DEFAULT_PRIORITY);
        assert!(spec.name.is_none());
    }

    #[test]
    fn state_names_roundtrip() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Completed,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::parse(state.as_str()), Some(state));
        }
        assert!(JobState::parse("exploded").is_none());
        assert!(JobState::Completed.is_terminal());
        assert!(!JobState::Running.is_terminal());
    }

    #[test]
    fn result_validator_checks_the_bit_pattern() {
        let energy = -1.234_567_890_123_4_f64;
        let doc = obj(vec![
            ("schema", s(RESULT_SCHEMA)),
            ("id", s("job-000001")),
            ("n_d", u(125)),
            ("n_s", u(16)),
            ("n_atoms", u(8)),
            ("n_omega", u(3)),
            ("n_restored", u(0)),
            ("total_energy", JsonValue::Num(energy)),
            (
                "total_energy_bits",
                s(&format!("{:016x}", energy.to_bits())),
            ),
            ("energy_per_atom", JsonValue::Num(energy / 8.0)),
            ("wall_s", JsonValue::Num(1.5)),
        ]);
        validate_result_doc(&doc).unwrap();
        // the JSON round-trip preserves the bits
        let reparsed = parse(&doc.to_json()).unwrap();
        validate_result_doc(&reparsed).unwrap();
        // a tampered decimal no longer matches the bits
        let mut pairs = doc.as_obj().unwrap().to_vec();
        for pair in pairs.iter_mut() {
            if pair.0 == "total_energy" {
                pair.1 = JsonValue::Num(energy + 1e-9);
            }
        }
        assert!(validate_result_doc(&JsonValue::Obj(pairs)).is_err());
    }

    #[test]
    fn cache_entry_validator_checks_fingerprint_and_embedded_result() {
        let energy = -0.75_f64;
        let result = obj(vec![
            ("schema", s(RESULT_SCHEMA)),
            ("id", s("job-000001")),
            ("n_d", u(125)),
            ("n_s", u(16)),
            ("n_atoms", u(8)),
            ("n_omega", u(3)),
            ("n_restored", u(0)),
            ("total_energy", JsonValue::Num(energy)),
            (
                "total_energy_bits",
                s(&format!("{:016x}", energy.to_bits())),
            ),
            ("energy_per_atom", JsonValue::Num(energy / 8.0)),
            ("wall_s", JsonValue::Num(0.5)),
        ]);
        let fp = format!("{:032x}", 0xabcd_u128);
        let entry = obj(vec![
            ("schema", s(CACHE_ENTRY_SCHEMA)),
            ("fingerprint", s(&fp)),
            ("result", result.clone()),
        ]);
        validate_cache_entry_doc(&entry).unwrap();
        validate_cache_entry_doc(&parse(&entry.to_json()).unwrap()).unwrap();

        let bad_fp = obj(vec![
            ("schema", s(CACHE_ENTRY_SCHEMA)),
            ("fingerprint", s("UPPERCASE-NOT-HEX")),
            ("result", result.clone()),
        ]);
        assert!(validate_cache_entry_doc(&bad_fp).is_err());

        // an entry whose embedded result has tampered bits must fail
        let mut pairs = result.as_obj().unwrap().to_vec();
        for pair in pairs.iter_mut() {
            if pair.0 == "total_energy" {
                pair.1 = JsonValue::Num(energy + 1e-9);
            }
        }
        let torn = obj(vec![
            ("schema", s(CACHE_ENTRY_SCHEMA)),
            ("fingerprint", s(&fp)),
            ("result", JsonValue::Obj(pairs)),
        ]);
        assert!(validate_cache_entry_doc(&torn)
            .unwrap_err()
            .contains("embedded result"));
    }

    #[test]
    fn health_validator_checks_the_optional_cache_block() {
        let doc = obj(vec![
            ("schema", s(HEALTH_SCHEMA)),
            ("queued", u(0)),
            ("running", u(0)),
            ("backlog_limit", u(16)),
            ("executors", u(1)),
            ("simd", s("scalar")),
        ]);
        validate_health_doc(&doc).unwrap();
        // a health doc without the dispatch path, or with a bogus one,
        // is rejected
        let no_simd: Vec<_> = doc
            .as_obj()
            .unwrap()
            .iter()
            .filter(|(k, _)| k != "simd")
            .cloned()
            .collect();
        assert!(validate_health_doc(&JsonValue::Obj(no_simd)).is_err());
        let bogus: Vec<_> = doc
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, v)| {
                if k == "simd" {
                    (k.clone(), s("sse42"))
                } else {
                    (k.clone(), v.clone())
                }
            })
            .collect();
        assert!(validate_health_doc(&JsonValue::Obj(bogus))
            .unwrap_err()
            .contains("simd"));
        let mut pairs = doc.as_obj().unwrap().to_vec();
        pairs.push((
            "cache".to_string(),
            obj(vec![
                ("entries", u(2)),
                ("bytes", u(512)),
                ("budget", u(1024)),
                ("hits", u(1)),
                ("misses", u(3)),
                ("insertions", u(2)),
                ("evictions", u(0)),
            ]),
        ));
        validate_health_doc(&JsonValue::Obj(pairs.clone())).unwrap();
        // a cache block missing a counter is rejected
        let truncated = pairs
            .iter()
            .map(|(k, v)| {
                if k == "cache" {
                    (k.clone(), obj(vec![("entries", u(2))]))
                } else {
                    (k.clone(), v.clone())
                }
            })
            .collect::<Vec<_>>();
        assert!(validate_health_doc(&JsonValue::Obj(truncated)).is_err());
    }

    #[test]
    fn status_doc_validates() {
        let spec = JobSpec {
            name: None,
            priority: 4,
            input: GOOD_INPUT.to_string(),
        };
        let doc = status_doc("job-000002", &spec, JobState::Running, Some((2, 8)), None);
        validate_status_doc(&doc).unwrap();
        let reparsed = parse(&doc.to_json()).unwrap();
        validate_status_doc(&reparsed).unwrap();
        assert_eq!(reparsed.get("completed").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn label_charset_is_enforced() {
        assert!(valid_label("job-000001"));
        assert!(valid_label("Si8.smoke_v2"));
        assert!(!valid_label(""));
        assert!(!valid_label(".hidden"));
        assert!(!valid_label("a/b"));
        assert!(!valid_label(&"x".repeat(65)));
    }
}
