//! Priority job queue: a pure in-memory state machine with a bounded
//! backlog and explicit backpressure.
//!
//! The queue tracks every job the daemon has ever seen this process
//! lifetime, each in exactly one [`JobState`]. It performs no I/O and
//! takes no locks — the daemon wraps it in a `Mutex` and persists
//! transitions through the job store — which makes the invariants
//! directly property-testable:
//!
//! * a submitted id exists exactly once, in exactly one state,
//! * `claim` hands out the highest-priority queued job (FIFO within a
//!   priority level) and never hands out the same job twice,
//! * terminal states are absorbing,
//! * the backlog never exceeds `capacity` via [`JobQueue::submit`];
//!   only [`JobQueue::recover`] (crash recovery) may exceed it, because
//!   refusing to re-admit previously accepted work would lose jobs.

use crate::job::JobState;

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The backlog is at capacity; retry after the suggested delay.
    Full {
        /// Suggested client wait, in seconds (the wire `Retry-After`).
        retry_after_s: u64,
    },
    /// A job with this id already exists.
    Duplicate,
}

/// What [`JobQueue::cancel`] did, which tells the caller what *it* must
/// now do (the queue itself cannot signal a running executor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was queued; it is now `Cancelled` and will never run.
    WasQueued,
    /// The job is running; the caller must trip its `CancelToken`. The
    /// queue entry stays `Running` until the executor reports back.
    WasRunning,
    /// Already in a terminal state; nothing to do.
    AlreadyTerminal,
}

/// One tracked job.
#[derive(Debug, Clone)]
pub struct QueueEntry {
    /// Job id (store-allocated, `job-NNNNNN`).
    pub id: String,
    /// Priority `0..=9`, higher first.
    pub priority: u8,
    /// FIFO tiebreaker: submission order within the process.
    pub seq: u64,
    /// Current lifecycle state.
    pub state: JobState,
}

/// The queue. See the module docs for invariants.
#[derive(Debug)]
pub struct JobQueue {
    entries: Vec<QueueEntry>,
    next_seq: u64,
    capacity: usize,
}

impl JobQueue {
    /// An empty queue admitting at most `capacity` queued jobs (at
    /// least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            next_seq: 0,
            capacity: capacity.max(1),
        }
    }

    /// Maximum backlog (queued jobs) accepted via [`JobQueue::submit`].
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of jobs currently in `state`.
    pub fn count(&self, state: JobState) -> usize {
        self.entries.iter().filter(|e| e.state == state).count()
    }

    /// All entries, in submission order.
    pub fn entries(&self) -> &[QueueEntry] {
        &self.entries
    }

    /// The state of `id`, if known.
    pub fn state_of(&self, id: &str) -> Option<JobState> {
        self.entries.iter().find(|e| e.id == id).map(|e| e.state)
    }

    fn entry_mut(&mut self, id: &str) -> Option<&mut QueueEntry> {
        self.entries.iter_mut().find(|e| e.id == id)
    }

    /// Backpressure check without admitting anything: `Err(Full)` when
    /// the backlog is at capacity. The daemon calls this *before*
    /// allocating the on-disk job directory so a refused submission
    /// leaves no trace.
    pub fn check_capacity(&self) -> Result<(), SubmitError> {
        let queued = self.count(JobState::Queued);
        if queued >= self.capacity {
            // scale the hint with the backlog: deeper queue, longer wait
            let retry_after_s = (queued as u64).clamp(1, 60);
            return Err(SubmitError::Full { retry_after_s });
        }
        Ok(())
    }

    /// Admit a new job into the backlog. Fails with [`SubmitError::Full`]
    /// when `capacity` queued jobs are already waiting — the daemon turns
    /// that into `429` + `Retry-After` — and never silently drops work.
    pub fn submit(&mut self, id: &str, priority: u8) -> Result<(), SubmitError> {
        if self.entries.iter().any(|e| e.id == id) {
            return Err(SubmitError::Duplicate);
        }
        self.check_capacity()?;
        self.push_entry(id, priority, JobState::Queued);
        Ok(())
    }

    /// Re-admit a job found on disk at startup, bypassing the capacity
    /// check (the work was already accepted before the crash). `Running`
    /// jobs re-enter as `Queued`: their executor died with the process
    /// and their checkpoints make the re-run a bit-for-bit resume.
    pub fn recover(&mut self, id: &str, priority: u8, state: JobState) -> Result<(), SubmitError> {
        if self.entries.iter().any(|e| e.id == id) {
            return Err(SubmitError::Duplicate);
        }
        let state = match state {
            JobState::Running => JobState::Queued,
            other => other,
        };
        self.push_entry(id, priority, state);
        Ok(())
    }

    fn push_entry(&mut self, id: &str, priority: u8, state: JobState) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(QueueEntry {
            id: id.to_string(),
            priority,
            seq,
            state,
        });
    }

    /// Claim the next job for execution: highest priority first, FIFO
    /// (by submission sequence) within a priority level. The claimed job
    /// transitions to `Running`.
    pub fn claim(&mut self) -> Option<String> {
        let best = self
            .entries
            .iter()
            .filter(|e| e.state == JobState::Queued)
            // max_by_key with (priority, Reverse(seq)): highest priority,
            // oldest submission within it
            .max_by_key(|e| (e.priority, std::cmp::Reverse(e.seq)))?
            .id
            .clone();
        if let Some(e) = self.entry_mut(&best) {
            e.state = JobState::Running;
        }
        Some(best)
    }

    /// Mark a running job finished. Returns `false` (and changes
    /// nothing) unless the job exists and is `Running`.
    pub fn complete(&mut self, id: &str) -> bool {
        self.transition_running(id, JobState::Completed)
    }

    /// Mark a running job failed. Same contract as [`JobQueue::complete`].
    pub fn fail(&mut self, id: &str) -> bool {
        self.transition_running(id, JobState::Failed)
    }

    /// Mark a running job cancelled (the executor observed the token).
    pub fn finish_cancelled(&mut self, id: &str) -> bool {
        self.transition_running(id, JobState::Cancelled)
    }

    /// Put a running job back in the backlog (graceful drain: the
    /// executor checkpointed and stopped, the daemon is shutting down).
    pub fn requeue(&mut self, id: &str) -> bool {
        self.transition_running(id, JobState::Queued)
    }

    fn transition_running(&mut self, id: &str, to: JobState) -> bool {
        match self.entry_mut(id) {
            Some(e) if e.state == JobState::Running => {
                e.state = to;
                true
            }
            _ => false,
        }
    }

    /// Request cancellation. Queued jobs cancel immediately; for running
    /// jobs the caller must trip the executor's token and later report
    /// [`JobQueue::finish_cancelled`].
    pub fn cancel(&mut self, id: &str) -> Option<CancelOutcome> {
        let entry = self.entry_mut(id)?;
        match entry.state {
            JobState::Queued => {
                entry.state = JobState::Cancelled;
                Some(CancelOutcome::WasQueued)
            }
            JobState::Running => Some(CancelOutcome::WasRunning),
            _ => Some(CancelOutcome::AlreadyTerminal),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_by_priority_then_fifo() {
        let mut q = JobQueue::new(8);
        q.submit("a", 1).unwrap();
        q.submit("b", 5).unwrap();
        q.submit("c", 5).unwrap();
        q.submit("d", 9).unwrap();
        assert_eq!(q.claim().as_deref(), Some("d"));
        assert_eq!(q.claim().as_deref(), Some("b")); // 5 before 5, FIFO
        assert_eq!(q.claim().as_deref(), Some("c"));
        assert_eq!(q.claim().as_deref(), Some("a"));
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn backlog_is_bounded_with_retry_hint() {
        let mut q = JobQueue::new(2);
        q.submit("a", 4).unwrap();
        q.submit("b", 4).unwrap();
        match q.submit("c", 4) {
            Err(SubmitError::Full { retry_after_s }) => assert!(retry_after_s >= 1),
            other => panic!("expected Full, got {other:?}"),
        }
        // claiming drains the backlog and admits the next submission
        q.claim().unwrap();
        q.submit("c", 4).unwrap();
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut q = JobQueue::new(4);
        q.submit("a", 4).unwrap();
        assert_eq!(q.submit("a", 4), Err(SubmitError::Duplicate));
        assert_eq!(
            q.recover("a", 4, JobState::Queued),
            Err(SubmitError::Duplicate)
        );
    }

    #[test]
    fn cancel_covers_every_phase() {
        let mut q = JobQueue::new(4);
        q.submit("a", 4).unwrap();
        assert_eq!(q.cancel("a"), Some(CancelOutcome::WasQueued));
        assert_eq!(q.state_of("a"), Some(JobState::Cancelled));
        assert_eq!(q.cancel("a"), Some(CancelOutcome::AlreadyTerminal));
        assert_eq!(q.cancel("ghost"), None);

        q.submit("b", 4).unwrap();
        assert_eq!(q.claim().as_deref(), Some("b"));
        assert_eq!(q.cancel("b"), Some(CancelOutcome::WasRunning));
        assert_eq!(q.state_of("b"), Some(JobState::Running)); // until the executor reports
        assert!(q.finish_cancelled("b"));
        assert_eq!(q.state_of("b"), Some(JobState::Cancelled));
    }

    #[test]
    fn recover_requeues_interrupted_running_jobs_beyond_capacity() {
        let mut q = JobQueue::new(1);
        q.recover("a", 4, JobState::Running).unwrap();
        q.recover("b", 4, JobState::Queued).unwrap(); // over capacity, still admitted
        q.recover("c", 4, JobState::Completed).unwrap();
        assert_eq!(q.state_of("a"), Some(JobState::Queued));
        assert_eq!(q.count(JobState::Queued), 2);
        assert_eq!(q.state_of("c"), Some(JobState::Completed));
        // fresh submissions still honor the bound
        assert!(matches!(q.submit("d", 4), Err(SubmitError::Full { .. })));
    }

    #[test]
    fn terminal_states_are_absorbing() {
        let mut q = JobQueue::new(4);
        q.submit("a", 4).unwrap();
        q.claim().unwrap();
        assert!(q.complete("a"));
        assert!(!q.fail("a"));
        assert!(!q.requeue("a"));
        assert!(!q.finish_cancelled("a"));
        assert_eq!(q.state_of("a"), Some(JobState::Completed));
    }

    #[test]
    fn requeue_returns_a_job_to_the_backlog() {
        let mut q = JobQueue::new(4);
        q.submit("a", 4).unwrap();
        q.claim().unwrap();
        assert!(q.requeue("a"));
        assert_eq!(q.state_of("a"), Some(JobState::Queued));
        assert_eq!(q.claim().as_deref(), Some("a"));
    }
}
