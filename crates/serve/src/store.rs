//! On-disk job store: one directory per job, crash-safe state files.
//!
//! Layout under the daemon root:
//!
//! ```text
//! <root>/jobs/<id>/job.json     # the mbrpa.job/1 submission, verbatim
//! <root>/jobs/<id>/state       # single word: queued|running|…
//! <root>/jobs/<id>/result.json # mbrpa.result/1, completed jobs only
//! <root>/jobs/<id>/profile.json# mbrpa-obs profile, when enabled
//! <root>/jobs/<id>/report.out  # human-readable run report
//! <root>/jobs/<id>/error.txt   # failure message, failed jobs only
//! <root>/ckpt/<id>/            # two-slot checkpoint namespace
//! ```
//!
//! Every file is written atomically (temp file in the same directory,
//! `fsync`, rename, directory `fsync` — the same discipline as the
//! `mbrpa-ckpt` two-slot store), so a `kill -9` at any instant leaves
//! each job with a consistent `job.json`/`state` pair. On restart
//! [`JobStore::scan`] rebuilds the queue from these files; a directory
//! missing its `job.json` (crash between `mkdir` and the first write,
//! before the submission was ever acknowledged) is skipped.
//!
//! The store does no locking: the daemon serializes mutations through
//! its queue mutex.

use crate::job::{valid_label, JobSpec, JobState};
use crate::json;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File holding the submission body.
pub const JOB_FILE: &str = "job.json";
/// File holding the single-word lifecycle state.
pub const STATE_FILE: &str = "state";
/// File holding the `mbrpa.result/1` body.
pub const RESULT_FILE: &str = "result.json";
/// File holding the `mbrpa-obs` profile JSON.
pub const PROFILE_FILE: &str = "profile.json";
/// File holding the human-readable run report.
pub const REPORT_FILE: &str = "report.out";
/// File holding the partial-progress summary of a cancelled job.
pub const PARTIAL_FILE: &str = "partial.json";
/// File holding the failure message of a failed job.
pub const ERROR_FILE: &str = "error.txt";

/// A job rebuilt from disk by [`JobStore::scan`].
#[derive(Debug, Clone)]
pub struct ScannedJob {
    /// Job id (the directory name).
    pub id: String,
    /// The persisted submission.
    pub spec: JobSpec,
    /// State at the moment of the scan.
    pub state: JobState,
}

/// Handle on a daemon root directory. Cheap to clone.
#[derive(Debug, Clone)]
pub struct JobStore {
    root: PathBuf,
}

impl JobStore {
    /// Open (creating if needed) the store under `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("jobs"))?;
        fs::create_dir_all(root.join("ckpt"))?;
        Ok(Self { root })
    }

    /// The daemon root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory holding the per-job directories.
    pub fn jobs_dir(&self) -> PathBuf {
        self.root.join("jobs")
    }

    /// Root for per-job checkpoint namespaces (pass to
    /// `CheckpointStore::open_namespaced` with the job id).
    pub fn ckpt_root(&self) -> PathBuf {
        self.root.join("ckpt")
    }

    /// Directory of one job.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.jobs_dir().join(id)
    }

    /// Persist a new job: allocates the next id, creates its directory,
    /// and writes `job.json` then `state = queued`. Returns the id.
    ///
    /// Not internally synchronized — the daemon calls this under its
    /// queue lock.
    pub fn allocate(&self, spec: &JobSpec) -> io::Result<String> {
        let next = self.next_job_number()?;
        let id = format!("job-{next:06}");
        let dir = self.job_dir(&id);
        fs::create_dir_all(&dir)?;
        write_atomic(
            &dir.join(JOB_FILE),
            spec.to_json_value().to_json().as_bytes(),
        )?;
        write_atomic(&dir.join(STATE_FILE), JobState::Queued.as_str().as_bytes())?;
        Ok(id)
    }

    fn next_job_number(&self) -> io::Result<u64> {
        let mut max = 0u64;
        for entry in fs::read_dir(self.jobs_dir())? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(n) = name
                .strip_prefix("job-")
                .and_then(|n| n.parse::<u64>().ok())
            {
                max = max.max(n);
            }
        }
        Ok(max + 1)
    }

    /// Atomically rewrite a job's `state` file.
    pub fn write_state(&self, id: &str, state: JobState) -> io::Result<()> {
        write_atomic(
            &self.job_dir(id).join(STATE_FILE),
            state.as_str().as_bytes(),
        )
    }

    /// Read a job's state; `None` when the job or its state file does
    /// not exist or holds an unknown word.
    pub fn read_state(&self, id: &str) -> Option<JobState> {
        let text = fs::read_to_string(self.job_dir(id).join(STATE_FILE)).ok()?;
        JobState::parse(&text)
    }

    /// Load a job's persisted submission; `None` when absent or invalid.
    pub fn load_spec(&self, id: &str) -> Option<JobSpec> {
        let text = fs::read_to_string(self.job_dir(id).join(JOB_FILE)).ok()?;
        let value = json::parse(&text).ok()?;
        JobSpec::from_json(&value).ok()
    }

    /// Atomically write an auxiliary document (`result.json`,
    /// `profile.json`, `report.out`, `error.txt`) into the job's dir.
    pub fn write_doc(&self, id: &str, file: &str, text: &str) -> io::Result<()> {
        write_atomic(&self.job_dir(id).join(file), text.as_bytes())
    }

    /// Read an auxiliary document, if present.
    pub fn read_doc(&self, id: &str, file: &str) -> Option<String> {
        fs::read_to_string(self.job_dir(id).join(file)).ok()
    }

    /// Rebuild the job list from disk: every directory under `jobs/`
    /// whose name is a valid id and which holds a readable `job.json` +
    /// `state` pair, sorted by id (ids zero-pad, so lexical order is
    /// submission order).
    pub fn scan(&self) -> io::Result<Vec<ScannedJob>> {
        let mut jobs = Vec::new();
        for entry in fs::read_dir(self.jobs_dir())? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name();
            let Some(id) = name.to_str() else { continue };
            if !valid_label(id) {
                continue;
            }
            let (Some(spec), Some(state)) = (self.load_spec(id), self.read_state(id)) else {
                continue;
            };
            jobs.push(ScannedJob {
                id: id.to_string(),
                spec,
                state,
            });
        }
        jobs.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(jobs)
    }
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, rename over the target, `fsync` the directory. A reader (or
/// a restarted daemon) sees either the old contents or the new, never a
/// torn write. Shared with the result cache, which relies on the same
/// discipline (its temp files start with `.` so a crash mid-write leaves
/// only a dotfile the cache scan discards).
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no parent"))?;
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(".{file_name}.tmp"));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // make the rename durable: fsync the containing directory
    fs::File::open(dir)?.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mbrpa_serve_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec(priority: u8) -> JobSpec {
        JobSpec {
            name: Some("t".to_string()),
            priority,
            input: "N_OMEGA: 3\n".to_string(),
        }
    }

    #[test]
    fn allocate_assigns_sequential_ids_and_queued_state() {
        let root = tmp_root("alloc");
        let store = JobStore::open(&root).unwrap();
        let a = store.allocate(&spec(4)).unwrap();
        let b = store.allocate(&spec(5)).unwrap();
        assert_eq!(a, "job-000001");
        assert_eq!(b, "job-000002");
        assert_eq!(store.read_state(&a), Some(JobState::Queued));
        assert_eq!(store.load_spec(&b).unwrap().priority, 5);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_rebuilds_jobs_and_survives_junk() {
        let root = tmp_root("scan");
        let store = JobStore::open(&root).unwrap();
        let a = store.allocate(&spec(4)).unwrap();
        let b = store.allocate(&spec(9)).unwrap();
        store.write_state(&b, JobState::Running).unwrap();
        // junk: a dir with no job.json (crash before the first write)
        fs::create_dir_all(store.jobs_dir().join("job-000099")).unwrap();
        // junk: an invalid directory name
        fs::create_dir_all(store.jobs_dir().join(".hidden")).unwrap();

        let scanned = store.scan().unwrap();
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].id, a);
        assert_eq!(scanned[0].state, JobState::Queued);
        assert_eq!(scanned[1].id, b);
        assert_eq!(scanned[1].state, JobState::Running);

        // id allocation continues after the junk-numbered dir
        let c = store.allocate(&spec(1)).unwrap();
        assert_eq!(c, "job-000100");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn state_transitions_persist() {
        let root = tmp_root("state");
        let store = JobStore::open(&root).unwrap();
        let id = store.allocate(&spec(4)).unwrap();
        for state in [
            JobState::Running,
            JobState::Queued,
            JobState::Running,
            JobState::Completed,
        ] {
            store.write_state(&id, state).unwrap();
            // a second handle (a restarted daemon) sees the same state
            let reopened = JobStore::open(&root).unwrap();
            assert_eq!(reopened.read_state(&id), Some(state));
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn docs_roundtrip() {
        let root = tmp_root("docs");
        let store = JobStore::open(&root).unwrap();
        let id = store.allocate(&spec(4)).unwrap();
        assert!(store.read_doc(&id, RESULT_FILE).is_none());
        store.write_doc(&id, RESULT_FILE, "{\"x\":1}").unwrap();
        assert_eq!(store.read_doc(&id, RESULT_FILE).unwrap(), "{\"x\":1}");
        let _ = fs::remove_dir_all(&root);
    }
}
