//! Hand-rolled HTTP/1.1 on `std::net` — no tokio, no hyper.
//!
//! One accept thread polls a non-blocking listener (25 ms cadence, so a
//! shutdown flag is observed promptly) and feeds accepted connections
//! to a small pool of worker threads over an `mpsc` channel. Each
//! connection carries exactly one request (`Connection: close`), which
//! keeps the parser trivial and is plenty for a job-submission API.
//!
//! Hard limits protect the daemon from hostile or broken clients:
//! headers ≤ 16 KiB, body ≤ 2 MiB, 10 s socket timeouts. Anything that
//! violates the grammar or the limits gets a `400` and a closed socket.
//! Query strings are split on `&`/`=` without percent-decoding: every
//! identifier this API routes on (job ids, state names) is plain ASCII.

use crate::json::JsonValue;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest accepted header block, bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 2 * 1024 * 1024;
/// Hard ceiling on reading one full request (header block + body). A
/// per-read socket timeout alone cannot bound a client that trickles
/// one byte at a time — every successful read would reset the clock and
/// pin a worker thread indefinitely.
pub const MAX_REQUEST_SECS: u64 = 10;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, query stripped.
    pub path: String,
    /// Query pairs in order of appearance (no percent-decoding).
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let needle = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == needle)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if it decodes.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `Content-Length`, and
    /// `Connection: close` are added automatically).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &JsonValue) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: value.to_json().into_bytes(),
            content_type: "application/json",
        }
    }

    /// A JSON error body: `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            &crate::json::obj(vec![("error", crate::json::s(message))]),
        )
    }

    /// A response whose body is already-serialized JSON text (stored
    /// documents are served verbatim, byte-for-byte as written).
    pub fn raw_json(status: u16, body: &str) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// Attach a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The request handler shared by all workers.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running server: accept thread + worker pool.
pub struct HttpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Start serving on `listener` with `n_workers` handler threads.
    pub fn start(listener: TcpListener, handler: Handler, n_workers: usize) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::new();
        for _ in 0..n_workers.max(1) {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            workers.push(std::thread::spawn(move || loop {
                // hold the lock only for the recv itself: this mutex exists
                // solely to share the single consumer end among workers, and
                // an idle worker *must* park inside recv while holding it
                let next = {
                    let Ok(guard) = rx.lock() else { return };
                    // lint: allow(lock_hold) — blocking in recv under this lock is the design; no other code path takes `rx`
                    guard.recv()
                };
                match next {
                    Ok(stream) => handle_connection(stream, &handler),
                    Err(_) => return, // channel closed: accept thread is gone
                }
            }));
        }

        let shutdown_seen = Arc::clone(&shutdown);
        let accept = std::thread::spawn(move || {
            loop {
                // ord: Acquire — pairs with the Release store in `shutdown`
                if shutdown_seen.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(_) => {
                        // transient accept failure; back off briefly
                        std::thread::sleep(Duration::from_millis(25));
                    }
                }
            }
            // dropping `tx` here closes the channel and drains the pool
        });

        Ok(Self {
            local_addr,
            shutdown,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, finish in-flight requests, join every thread.
    pub fn shutdown(&mut self) {
        // ord: Release — pairs with the accept loop's Acquire load
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, handler: &Handler) {
    let deadline = Instant::now() + Duration::from_secs(MAX_REQUEST_SECS);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let response = match read_request(&mut stream, deadline) {
        Ok(request) => handler(&request),
        Err(message) => Response::error(400, &message),
    };
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// One bounded read against the request deadline: the socket timeout is
/// re-armed with the *remaining* budget before every read, so the total
/// time a request may occupy a worker is capped regardless of how the
/// client paces its bytes. `what` names the phase for the error message.
fn read_chunk(
    stream: &mut TcpStream,
    deadline: Instant,
    chunk: &mut [u8],
    what: &str,
) -> Result<usize, String> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(format!(
            "request {what} not complete within {MAX_REQUEST_SECS} s"
        ));
    }
    if stream.set_read_timeout(Some(remaining)).is_err() {
        return Err("cannot arm the read deadline".to_string());
    }
    match stream.read(chunk) {
        Ok(0) => Err(format!("connection closed mid-{what}")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "request {what} not complete within {MAX_REQUEST_SECS} s"
        )),
    }
}

/// Read and parse one request. Errors are client-facing messages (the
/// caller answers `400`, never a panic path).
fn read_request(stream: &mut TcpStream, deadline: Instant) -> Result<Request, String> {
    // accumulate until the blank line ending the header block
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err("header block exceeds the limit".to_string());
        }
        let mut chunk = [0u8; 4096];
        let n = read_chunk(stream, deadline, &mut chunk, "header")?;
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| "headers are not valid UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or("missing method")?.to_ascii_uppercase();
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().ok_or("missing HTTP version")?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(format!("unsupported version `{version}`"));
    }

    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query: Vec<(String, String)> = query_text
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line `{line}`"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse()
            .map_err(|_| "invalid content-length".to_string())?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err("body exceeds the limit".to_string());
    }

    // loop the read to the declared Content-Length under the same
    // deadline: a short read is more bytes pending, not a complete
    // request, and a truncated body is a client error, not a panic
    let mut body: Vec<u8> = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = read_chunk(stream, deadline, &mut chunk, "body").map_err(|e| {
            format!(
                "{e} (got {} of {content_length} declared body bytes)",
                body.len().min(content_length)
            )
        })?;
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path: path.to_string(),
        query,
        headers,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn start_echo() -> HttpServer {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handler: Handler = Arc::new(|req: &Request| {
            let doc = json::obj(vec![
                ("method", json::s(&req.method)),
                ("path", json::s(&req.path)),
                (
                    "q",
                    json::JsonValue::Arr(
                        req.query
                            .iter()
                            .map(|(k, v)| json::s(&format!("{k}={v}")))
                            .collect(),
                    ),
                ),
                ("body", json::s(req.body_str().unwrap_or(""))),
            ]);
            Response::json(200, &doc)
        });
        HttpServer::start(listener, handler, 2).unwrap()
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn parses_method_path_query_and_body() {
        let mut server = start_echo();
        let reply = roundtrip(
            server.local_addr(),
            "POST /v1/jobs?x=1&flag HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        let body = reply.split("\r\n\r\n").nth(1).unwrap();
        let doc = json::parse(body).unwrap();
        assert_eq!(doc.get("method").unwrap().as_str(), Some("POST"));
        assert_eq!(doc.get("path").unwrap().as_str(), Some("/v1/jobs"));
        assert_eq!(doc.get("body").unwrap().as_str(), Some("hello"));
        let q = doc.get("q").unwrap().as_arr().unwrap();
        assert_eq!(q[0].as_str(), Some("x=1"));
        assert_eq!(q[1].as_str(), Some("flag="));
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400() {
        let mut server = start_echo();
        let reply = roundtrip(server.local_addr(), "NONSENSE\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn oversized_body_is_rejected() {
        let mut server = start_echo();
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let reply = roundtrip(server.local_addr(), &raw);
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn truncated_body_gets_400_not_a_short_request() {
        let mut server = start_echo();
        // declare 10 body bytes, deliver 3, then close the write side:
        // the server must answer 400, never hand the handler a body
        // shorter than the declared length
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(reply.contains("3 of 10"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn trickled_request_hits_the_deadline() {
        // drive read_request directly with a short deadline: a client
        // that sends a partial header and then stalls must be cut off
        // when the budget expires, not held for a fresh timeout per read
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"GET / HT").unwrap();
            std::thread::sleep(Duration::from_millis(600));
            drop(stream);
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let deadline = Instant::now() + Duration::from_millis(150);
        let err = read_request(&mut server_side, deadline).unwrap_err();
        assert!(err.contains("not complete within"), "{err}");
        client.join().unwrap();
    }

    #[test]
    fn shutdown_joins_cleanly_and_stops_accepting() {
        let mut server = start_echo();
        let addr = server.local_addr();
        server.shutdown();
        // connections after shutdown either fail or never get a reply
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.write_all(b"GET / HTTP/1.1\r\n\r\n");
            stream
                .set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let mut out = String::new();
            assert!(stream.read_to_string(&mut out).is_err() || out.is_empty());
        }
    }
}
