//! Content-addressed exact result cache.
//!
//! RPA energies are deterministic given the discretized system and solver
//! configuration — the serving pipeline's bit-for-bit contract — so a
//! repeat submission of a semantically identical `.rpa` input is pure
//! recomputation waste. This store maps the canonical 128-bit input
//! fingerprint ([`mbrpa_core::canonical`]) to the finished
//! `mbrpa.result/1` document, letting the daemon answer a resubmission
//! with the *exact* stored energy (same `f64` bits) instead of spending
//! minutes in the Sternheimer/quadrature stack.
//!
//! Layout under the daemon root:
//!
//! ```text
//! <root>/cache/<fingerprint>.json   # mbrpa.cache-entry/1 documents
//! ```
//!
//! Design points:
//!
//! * **Crash safety** — entries are written with the same atomic
//!   temp-file/`fsync`/rename discipline as the job store. A `kill -9`
//!   mid-write leaves at worst a `.…​.tmp` dotfile, which the next open
//!   deletes; a reader never observes a torn entry.
//! * **Corruption tolerance** — every load (startup scan *and* each
//!   lookup) fully validates the entry: JSON parse, schema tag,
//!   fingerprint member matching the filename, and the embedded result's
//!   own validator including its `total_energy_bits` cross-check. Any
//!   failure deletes the file and reports a miss — a damaged store can
//!   cost recomputation, never a false hit.
//! * **LRU byte budget** — the store tracks per-entry sizes and evicts
//!   least-recently-used entries once the total exceeds the budget, so
//!   the cache directory cannot grow without bound under heavy traffic.
//!
//! The store is not internally synchronized; the daemon wraps it in a
//! `Mutex` (like the queue), and all counters are plain integers mutated
//! under that lock.

use crate::job::{validate_cache_entry_doc, CACHE_ENTRY_SCHEMA};
use crate::json::{self, obj, s, JsonValue};
use crate::store::write_atomic;
use mbrpa_core::is_fingerprint_hex;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Default byte budget (64 MiB — thousands of result documents).
pub const DEFAULT_BUDGET: u64 = 64 * 1024 * 1024;

/// Sidecar recency journal: one fingerprint per line, coldest first.
/// Without it a restarted daemon would only know entry *write* times
/// (lookup hits never touch the files), so post-restart eviction would
/// drop recently-hit entries while keeping cold ones.
const LRU_FILE: &str = "lru";

/// Monotonic counters the daemon exposes through `health/1` and the
/// cache admin endpoint.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheCounters {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing (or found a corrupt entry).
    pub misses: u64,
    /// Entries written by completed runs.
    pub insertions: u64,
    /// Entries removed by the LRU byte budget.
    pub evictions: u64,
    /// Admin flushes.
    pub flushes: u64,
    /// Corrupt or alien files dropped by scans and lookups.
    pub corrupt_dropped: u64,
}

/// One resident entry: fingerprint and on-disk size. The vector holding
/// these is kept in least-recently-used order (front = coldest).
#[derive(Clone, Debug)]
struct Entry {
    fingerprint: String,
    bytes: u64,
}

/// On-disk exact-result cache. See the module docs.
#[derive(Debug)]
pub struct CacheStore {
    dir: PathBuf,
    budget: u64,
    /// LRU order, coldest first.
    entries: Vec<Entry>,
    total_bytes: u64,
    counters: CacheCounters,
}

impl CacheStore {
    /// Open (creating if needed) the cache under `dir` with the given
    /// byte budget. Scans the directory: leftover temp dotfiles and any
    /// file that fails full validation are deleted; surviving entries
    /// enter the LRU in the order the recency journal recorded before
    /// the restart (falling back to modification time for files the
    /// journal does not know), and the budget is enforced immediately.
    pub fn open(dir: impl Into<PathBuf>, budget: u64) -> io::Result<CacheStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let journal = read_lru_journal(&dir);
        let mut store = CacheStore {
            dir,
            budget,
            entries: Vec::new(),
            total_bytes: 0,
            counters: CacheCounters::default(),
        };
        let mut found: Vec<(SystemTime, Entry)> = Vec::new();
        for entry in fs::read_dir(&store.dir)? {
            let entry = entry?;
            let path = entry.path();
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                store.drop_file(&path);
                continue;
            };
            // the recency journal (and its atomic-write temp) is ours,
            // not a cache entry
            if name == LRU_FILE || name == ".lru.tmp" {
                continue;
            }
            // crash leftovers (`.<fp>.json.tmp`) and anything that is not
            // `<32-hex>.json` is junk — delete rather than serve
            let fingerprint = name.strip_suffix(".json").unwrap_or("");
            if !is_fingerprint_hex(fingerprint) {
                store.drop_file(&path);
                continue;
            }
            if store.load_validated(&path, fingerprint).is_none() {
                store.drop_file(&path);
                continue;
            }
            let meta = entry.metadata()?;
            let modified = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            found.push((
                modified,
                Entry {
                    fingerprint: fingerprint.to_string(),
                    bytes: meta.len(),
                },
            ));
        }
        // LRU order, coldest first: files the journal never saw (dropped
        // in externally, or written in the instant before a crash beat
        // the journal update) have unknown recency and are conservatively
        // treated as coldest, ordered among themselves by mtime; then the
        // journaled entries in their recorded order
        found.sort_by_key(
            |(modified, e)| match journal.iter().position(|j| j == &e.fingerprint) {
                Some(rank) => (1u8, rank, *modified),
                None => (0u8, 0, *modified),
            },
        );
        store.total_bytes = found.iter().map(|(_, e)| e.bytes).sum();
        store.entries = found.into_iter().map(|(_, e)| e).collect();
        store.evict_to_budget();
        store.persist_lru();
        Ok(store)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of resident entries.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    fn entry_path(&self, fingerprint: &str) -> PathBuf {
        self.dir.join(format!("{fingerprint}.json"))
    }

    /// Best-effort delete of a junk/corrupt file, counted.
    fn drop_file(&mut self, path: &Path) {
        let _ = fs::remove_file(path);
        self.counters.corrupt_dropped += 1;
    }

    /// Persist the current LRU order (coldest first) to the sidecar
    /// journal, atomically. Best-effort: a failed write costs recency
    /// fidelity across the *next* restart, never correctness — eviction
    /// order is the journal's only consumer.
    fn persist_lru(&self) {
        let mut text = String::with_capacity(self.entries.len() * 33);
        for entry in &self.entries {
            text.push_str(&entry.fingerprint);
            text.push('\n');
        }
        let _ = write_atomic(&self.dir.join(LRU_FILE), text.as_bytes());
    }

    /// Read and fully validate one entry file; returns the embedded
    /// `mbrpa.result/1` object on success.
    fn load_validated(&self, path: &Path, fingerprint: &str) -> Option<JsonValue> {
        let text = fs::read_to_string(path).ok()?;
        let doc = json::parse(&text).ok()?;
        validate_cache_entry_doc(&doc).ok()?;
        // the fingerprint member must match the filename, or a renamed
        // file could serve the wrong calculation's energy
        if doc.get("fingerprint")?.as_str()? != fingerprint {
            return None;
        }
        doc.get("result").cloned()
    }

    /// Look up a fingerprint. A hit returns the stored `mbrpa.result/1`
    /// object and refreshes the entry's LRU position; a corrupt entry is
    /// deleted and reported as a miss.
    pub fn lookup(&mut self, fingerprint: &str) -> Option<JsonValue> {
        let Some(index) = self
            .entries
            .iter()
            .position(|e| e.fingerprint == fingerprint)
        else {
            self.counters.misses += 1;
            return None;
        };
        let path = self.entry_path(fingerprint);
        match self.load_validated(&path, fingerprint) {
            Some(result) => {
                // LRU touch: move to the hot end
                let entry = self.entries.remove(index);
                self.entries.push(entry);
                self.counters.hits += 1;
                self.persist_lru();
                Some(result)
            }
            None => {
                let entry = self.entries.remove(index);
                self.total_bytes = self.total_bytes.saturating_sub(entry.bytes);
                self.drop_file(&path);
                self.counters.misses += 1;
                self.persist_lru();
                None
            }
        }
    }

    /// Insert (or refresh) the result document for a fingerprint,
    /// written atomically, then enforce the byte budget. Returns `false`
    /// without writing when the entry alone exceeds the budget (caching
    /// it would evict everything else and then itself next insert).
    pub fn insert(&mut self, fingerprint: &str, result: &JsonValue) -> io::Result<bool> {
        if !is_fingerprint_hex(fingerprint) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("`{fingerprint}` is not a canonical fingerprint"),
            ));
        }
        let doc = obj(vec![
            ("schema", s(CACHE_ENTRY_SCHEMA)),
            ("fingerprint", s(fingerprint)),
            ("result", result.clone()),
        ]);
        let bytes = doc.to_json().into_bytes();
        let size = bytes.len() as u64;
        if size > self.budget {
            return Ok(false);
        }
        write_atomic(&self.entry_path(fingerprint), &bytes)?;
        if let Some(index) = self
            .entries
            .iter()
            .position(|e| e.fingerprint == fingerprint)
        {
            let old = self.entries.remove(index);
            self.total_bytes = self.total_bytes.saturating_sub(old.bytes);
        }
        self.entries.push(Entry {
            fingerprint: fingerprint.to_string(),
            bytes: size,
        });
        self.total_bytes += size;
        self.counters.insertions += 1;
        self.evict_to_budget();
        self.persist_lru();
        Ok(true)
    }

    /// Evict coldest entries until the total fits the budget. The entry
    /// at the hot end (the one just inserted or hit) is never evicted.
    fn evict_to_budget(&mut self) {
        while self.total_bytes > self.budget && self.entries.len() > 1 {
            let coldest = self.entries.remove(0);
            self.total_bytes = self.total_bytes.saturating_sub(coldest.bytes);
            let _ = fs::remove_file(self.entry_path(&coldest.fingerprint));
            self.counters.evictions += 1;
            mbrpa_obs::add("serve.cache.evict", 1);
        }
    }

    /// Drop every entry (admin flush). Returns how many were removed.
    pub fn flush(&mut self) -> usize {
        let flushed = self.entries.len();
        for entry in std::mem::take(&mut self.entries) {
            let _ = fs::remove_file(self.entry_path(&entry.fingerprint));
        }
        self.total_bytes = 0;
        self.counters.flushes += 1;
        self.persist_lru();
        flushed
    }
}

/// Read the recency journal left by the previous incarnation: one
/// fingerprint per line, coldest first. Unparseable lines (and a missing
/// or torn file) degrade to "no recorded recency", never to an error —
/// the scan's mtime fallback covers those entries.
fn read_lru_journal(dir: &Path) -> Vec<String> {
    let Ok(text) = fs::read_to_string(dir.join(LRU_FILE)) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|line| is_fingerprint_hex(line))
        .map(String::from)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::RESULT_SCHEMA;
    use crate::json::u;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mbrpa_cache_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn result_value(energy: f64) -> JsonValue {
        obj(vec![
            ("schema", s(RESULT_SCHEMA)),
            ("id", s("job-000001")),
            ("n_d", u(125)),
            ("n_s", u(16)),
            ("n_atoms", u(8)),
            ("n_omega", u(3)),
            ("n_restored", u(0)),
            ("total_energy", JsonValue::Num(energy)),
            (
                "total_energy_bits",
                s(&format!("{:016x}", energy.to_bits())),
            ),
            ("energy_per_atom", JsonValue::Num(energy / 8.0)),
            ("wall_s", JsonValue::Num(1.25)),
        ])
    }

    fn fp(n: u8) -> String {
        format!("{:032x}", u128::from(n))
    }

    #[test]
    fn insert_then_lookup_roundtrips_exact_bits() {
        let dir = tmp_dir("roundtrip");
        let mut cache = CacheStore::open(&dir, DEFAULT_BUDGET).unwrap();
        let energy = -0.123_456_789_012_345_67;
        assert!(cache.insert(&fp(1), &result_value(energy)).unwrap());
        let hit = cache.lookup(&fp(1)).expect("entry just inserted");
        assert_eq!(
            hit.get("total_energy_bits").unwrap().as_str().unwrap(),
            format!("{:016x}", energy.to_bits())
        );
        assert!(cache.lookup(&fp(2)).is_none());
        let counters = cache.counters();
        assert_eq!((counters.hits, counters.misses), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_recovers_entries_and_drops_junk() {
        let dir = tmp_dir("reopen");
        {
            let mut cache = CacheStore::open(&dir, DEFAULT_BUDGET).unwrap();
            cache.insert(&fp(1), &result_value(-1.5)).unwrap();
            cache.insert(&fp(2), &result_value(-2.5)).unwrap();
        }
        // simulate a kill -9 mid-write: a partial temp dotfile …
        fs::write(dir.join(format!(".{}.json.tmp", fp(3))), b"{\"sch").unwrap();
        // … a torn entry (truncated JSON) …
        fs::write(dir.join(format!("{}.json", fp(4))), b"{\"schema\":\"mbr").unwrap();
        // … and a well-formed entry whose fingerprint member lies
        let alias = fs::read_to_string(dir.join(format!("{}.json", fp(1)))).unwrap();
        fs::write(dir.join(format!("{}.json", fp(5))), &alias).unwrap();

        let mut cache = CacheStore::open(&dir, DEFAULT_BUDGET).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&fp(1)).is_some());
        assert!(cache.lookup(&fp(2)).is_some());
        assert!(cache.lookup(&fp(4)).is_none(), "torn entry must miss");
        assert!(cache.lookup(&fp(5)).is_none(), "aliased entry must miss");
        assert!(cache.counters().corrupt_dropped >= 3);
        assert!(!dir.join(format!(".{}.json.tmp", fp(3))).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_discovered_at_lookup_is_a_miss() {
        let dir = tmp_dir("corrupt_lookup");
        let mut cache = CacheStore::open(&dir, DEFAULT_BUDGET).unwrap();
        cache.insert(&fp(1), &result_value(-1.5)).unwrap();
        // corrupt it behind the store's back (disk damage)
        fs::write(dir.join(format!("{}.json", fp(1))), b"garbage").unwrap();
        assert!(cache.lookup(&fp(1)).is_none());
        assert_eq!(cache.len(), 0);
        assert!(!dir.join(format!("{}.json", fp(1))).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_budget_evicts_coldest_first() {
        let dir = tmp_dir("lru");
        let one = CacheStore::open(tmp_dir("lru_size"), DEFAULT_BUDGET)
            .and_then(|mut c| {
                c.insert(&fp(9), &result_value(-1.0))?;
                Ok(c.total_bytes())
            })
            .unwrap();
        // room for two entries, not three
        let mut cache = CacheStore::open(&dir, one * 2 + one / 2).unwrap();
        cache.insert(&fp(1), &result_value(-1.0)).unwrap();
        cache.insert(&fp(2), &result_value(-2.0)).unwrap();
        // touch 1 so 2 becomes the coldest
        assert!(cache.lookup(&fp(1)).is_some());
        cache.insert(&fp(3), &result_value(-3.0)).unwrap();
        assert_eq!(cache.counters().evictions, 1);
        assert!(cache.lookup(&fp(2)).is_none(), "coldest should be evicted");
        assert!(cache.lookup(&fp(1)).is_some());
        assert!(cache.lookup(&fp(3)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    /// The restart-mid-sequence regression for the recency bug: insert
    /// 1 then 2 (so 2 is *younger on disk*), then hit 1 so 2 is the LRU
    /// coldest, restart, and force one eviction. The mtime-ordered scan
    /// used to forget the hit and evict the recently-used entry 1; the
    /// journal must make the reopened store drop 2 instead.
    #[test]
    fn lru_recency_survives_restart() {
        let dir = tmp_dir("lru_restart");
        let one = CacheStore::open(tmp_dir("lru_restart_size"), DEFAULT_BUDGET)
            .and_then(|mut c| {
                c.insert(&fp(9), &result_value(-1.0))?;
                Ok(c.total_bytes())
            })
            .unwrap();
        {
            let mut cache = CacheStore::open(&dir, DEFAULT_BUDGET).unwrap();
            cache.insert(&fp(1), &result_value(-1.0)).unwrap();
            cache.insert(&fp(2), &result_value(-2.0)).unwrap();
            assert!(cache.lookup(&fp(1)).is_some(), "touch 1: 2 is now coldest");
        }
        // restart with room for two entries, not three
        let mut cache = CacheStore::open(&dir, one * 2 + one / 2).unwrap();
        cache.insert(&fp(3), &result_value(-3.0)).unwrap();
        assert_eq!(cache.counters().evictions, 1);
        assert!(
            cache.lookup(&fp(2)).is_none(),
            "the pre-restart coldest entry must be the one evicted"
        );
        assert!(cache.lookup(&fp(1)).is_some(), "the hit entry must survive");
        assert!(cache.lookup(&fp(3)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Entries the journal never saw (e.g. dropped into the directory by
    /// hand) are treated as coldest and evicted before journaled ones.
    #[test]
    fn unjournaled_entry_ranks_coldest_after_restart() {
        let dir = tmp_dir("lru_unjournaled");
        let one = CacheStore::open(tmp_dir("lru_unjournaled_size"), DEFAULT_BUDGET)
            .and_then(|mut c| {
                c.insert(&fp(9), &result_value(-1.0))?;
                Ok(c.total_bytes())
            })
            .unwrap();
        {
            let mut cache = CacheStore::open(&dir, DEFAULT_BUDGET).unwrap();
            cache.insert(&fp(1), &result_value(-1.0)).unwrap();
            cache.insert(&fp(2), &result_value(-2.0)).unwrap();
        }
        // an alien-but-valid entry appears behind the journal's back
        let donor = fs::read_to_string(dir.join(format!("{}.json", fp(1)))).unwrap();
        let forged = donor.replace(&fp(1), &fp(7));
        fs::write(dir.join(format!("{}.json", fp(7))), forged).unwrap();

        let mut cache = CacheStore::open(&dir, one * 2 + one / 2).unwrap();
        assert_eq!(cache.counters().evictions, 1);
        assert!(
            cache.lookup(&fp(7)).is_none(),
            "the unjournaled entry must be evicted first"
        );
        assert!(cache.lookup(&fp(1)).is_some());
        assert!(cache.lookup(&fp(2)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_entry_is_refused() {
        let dir = tmp_dir("oversized");
        let mut cache = CacheStore::open(&dir, 10).unwrap();
        assert!(!cache.insert(&fp(1), &result_value(-1.0)).unwrap());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.counters().insertions, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_empties_the_store() {
        let dir = tmp_dir("flush");
        let mut cache = CacheStore::open(&dir, DEFAULT_BUDGET).unwrap();
        cache.insert(&fp(1), &result_value(-1.0)).unwrap();
        cache.insert(&fp(2), &result_value(-2.0)).unwrap();
        assert_eq!(cache.flush(), 2);
        assert!(cache.is_empty());
        assert_eq!(cache.total_bytes(), 0);
        assert!(cache.lookup(&fp(1)).is_none());
        // flushed on disk too: a reopen sees nothing
        let reopened = CacheStore::open(&dir, DEFAULT_BUDGET).unwrap();
        assert!(reopened.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_fingerprint_is_rejected() {
        let dir = tmp_dir("badfp");
        let mut cache = CacheStore::open(&dir, DEFAULT_BUDGET).unwrap();
        assert!(cache.insert("not-hex", &result_value(-1.0)).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
