//! Self-scan and CLI-gate tests: the workspace must be lint-clean, and
//! `--deny` must actually gate — exit 0 on the clean workspace,
//! non-zero on the deliberately-violating fixture tree. The emitted
//! JSON findings document must round-trip through `--validate`.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    mbrpa_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("a [workspace] Cargo.toml above crates/lint")
}

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn workspace_is_lint_clean() {
    let res = mbrpa_lint::scan_workspace(&workspace_root()).expect("scan workspace");
    assert!(
        res.files_scanned >= 100,
        "suspiciously few files scanned ({}) — did file collection break?",
        res.files_scanned
    );
    assert!(
        res.findings.is_empty(),
        "the workspace must stay lint-clean; fix or justify:\n{:#?}",
        res.findings
    );
}

#[test]
fn fixture_tree_is_not_scanned_as_workspace_code() {
    // The fixtures are deliberate violations; the workspace scan must
    // skip them or `workspace_is_lint_clean` could never pass.
    let res = mbrpa_lint::scan_workspace(&workspace_root()).expect("scan workspace");
    assert!(
        res.findings.iter().all(|f| !f.file.contains("fixtures")),
        "fixture files leaked into the workspace scan"
    );
}

#[test]
fn deny_exits_zero_on_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_mbrpa-lint"))
        .arg("--deny")
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run mbrpa-lint");
    assert!(
        out.status.success(),
        "--deny must pass on the clean workspace; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn deny_exits_nonzero_on_fixture_violations() {
    let out = Command::new(env!("CARGO_BIN_EXE_mbrpa-lint"))
        .arg("--deny")
        .arg("--root")
        .arg(fixtures_root())
        .output()
        .expect("run mbrpa-lint");
    assert!(
        !out.status.success(),
        "--deny must fail on the violation fixtures"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "safety",
        "unwrap",
        "float_cmp",
        "hash_iter",
        "print",
        "narrow_cast",
        "atomic_ordering",
        "unsafe_wrapper",
        "nested_par",
        "lock_hold",
        "schema_tag",
    ] {
        assert!(
            stdout.contains(rule),
            "findings table should mention rule `{rule}`:\n{stdout}"
        );
    }
}

#[test]
fn emitted_json_round_trips_through_validate() {
    let json = std::env::temp_dir().join(format!(
        "mbrpa_lint_findings_test_{}.json",
        std::process::id()
    ));
    // Informational scan of the fixture tree (no --deny): exit 0 even
    // with findings, and the JSON self-validates before being written.
    let out = Command::new(env!("CARGO_BIN_EXE_mbrpa-lint"))
        .arg("--root")
        .arg(fixtures_root())
        .arg("--json")
        .arg(&json)
        .output()
        .expect("run mbrpa-lint --json");
    assert!(
        out.status.success(),
        "informational scan must exit 0; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = Command::new(env!("CARGO_BIN_EXE_mbrpa-lint"))
        .arg("--validate")
        .arg(&json)
        .output()
        .expect("run mbrpa-lint --validate");
    let _ = std::fs::remove_file(&json);
    assert!(
        out.status.success(),
        "emitted JSON must validate; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
