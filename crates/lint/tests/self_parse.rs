//! Self-parse suite: the structural parser must digest every `.rs`
//! file the workspace scan lints — fixtures included — without
//! panicking, and must report a balanced scope tree on real code (the
//! recovery path is for editor states, not for committed sources).

use mbrpa_lint::rules::analyze;
use mbrpa_lint::scope::ScopeKind;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    mbrpa_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("a [workspace] Cargo.toml above crates/lint")
}

#[test]
fn every_workspace_file_parses_balanced() {
    let root = workspace_root();
    let files = mbrpa_lint::workspace_rs_files(&root).expect("collect workspace files");
    assert!(
        files.len() >= 100,
        "suspiciously few files collected ({}) — did collection break?",
        files.len()
    );
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))
            .unwrap_or_else(|e| panic!("read {}: {e}", rel.display()));
        let rel_str = rel.to_str().expect("UTF-8 path").replace('\\', "/");
        let a = analyze(&rel_str, &src);
        assert!(
            a.tree.balanced,
            "{rel_str}: committed source must parse with balanced delimiters"
        );
        // Structural sanity on every scope the rules will walk.
        for (id, s) in a.tree.scopes.iter().enumerate() {
            assert!(
                s.open < s.close && s.close <= a.code_idx.len(),
                "{rel_str}: scope {id} has an inverted span"
            );
            if let Some(p) = s.parent {
                let ps = &a.tree.scopes[p];
                assert!(
                    ps.open < s.open && s.close <= ps.close,
                    "{rel_str}: scope {id} escapes its parent"
                );
            }
        }
    }
}

#[test]
fn fixture_sources_parse_balanced_too() {
    // The deliberate *rule* violations in the fixtures must still be
    // syntactically well-formed — structural recovery on them would
    // mean the rule expectations test recovery behavior by accident.
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let files = mbrpa_lint::workspace_rs_files(&fixtures).expect("collect fixture files");
    assert!(!files.is_empty(), "fixture tree is empty");
    for rel in files {
        let src = std::fs::read_to_string(fixtures.join(&rel))
            .unwrap_or_else(|e| panic!("read {}: {e}", rel.display()));
        let rel_str = rel.to_str().expect("UTF-8 path").replace('\\', "/");
        let a = analyze(&rel_str, &src);
        assert!(a.tree.balanced, "{rel_str}: fixture must parse balanced");
        assert!(
            a.tree.scopes.iter().any(|s| s.kind == ScopeKind::Brace),
            "{rel_str}: fixture should contain at least one brace scope"
        );
    }
}

#[test]
fn truncated_sources_recover_without_panicking() {
    // Chop a real file at arbitrary byte boundaries (always on a char
    // boundary) and re-analyze: the parser must never panic, and an
    // unterminated prefix must be reported as unbalanced, not silently
    // accepted as complete.
    let root = workspace_root();
    let src = std::fs::read_to_string(root.join("crates/lint/src/scope.rs")).expect("read source");
    let full = analyze("crates/lint/src/scope.rs", &src);
    assert!(full.tree.balanced);
    for frac in [10, 30, 50, 70, 90] {
        let mut cut = src.len() * frac / 100;
        while cut > 0 && !src.is_char_boundary(cut) {
            cut -= 1;
        }
        let a = analyze("crates/lint/src/scope.rs", &src[..cut]);
        // No assertion on `balanced` here — a lucky cut can land between
        // items — but the scope invariants must hold even on fragments.
        for s in &a.tree.scopes {
            assert!(s.open < s.close && s.close <= a.code_idx.len());
        }
    }
}
