//! Fixture: `lock_hold` — positive, negative, suppressed, and
//! unused-suppression cases. Never compiled; only lexed and parsed.

use std::sync::mpsc::Receiver;
use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// positive: retained guard held across a blocking channel recv
pub fn positive_let_guard(q: &Mutex<Vec<u64>>, ch: &Receiver<u64>) {
    let mut queue = lock(q);
    if let Ok(id) = ch.recv() {
        queue.push(id);
    }
}

// positive: scrutinee temporary lives across the match body
pub fn positive_match_header(q: &Mutex<Vec<u64>>, ch: &Receiver<u64>) {
    match lock(q).pop() {
        Some(id) => {
            let _ = ch.recv_timeout(std::time::Duration::from_millis(1));
            drop(id);
        }
        None => {}
    }
}

// negative: temporary consumed in one statement, nothing held after
pub fn negative_temporary(q: &Mutex<Vec<u64>>, ch: &Receiver<u64>) {
    lock(q).push(7);
    let _ = ch.recv();
}

// negative: guard dropped (inner scope) before the blocking call
pub fn negative_scoped_guard(q: &Mutex<Vec<u64>>, ch: &Receiver<u64>) {
    {
        let mut queue = lock(q);
        queue.push(1);
    }
    let _ = ch.recv();
}

// negative: the method chain consumes the guard — the binding holds the
// popped value, not the lock
pub fn negative_chain_consumed(q: &Mutex<Vec<u64>>, ch: &Receiver<u64>) -> Option<u64> {
    let head = lock(q).pop();
    let _ = ch.recv();
    head
}

// negative: `fs::write` is IO, not an RwLock acquisition
pub fn negative_fs_write(path: &std::path::Path, ch: &Receiver<u64>) {
    let _ = std::fs::write(path, b"x");
    let _ = ch.recv();
}

// suppressed: blocking under the lock is the serialization design
pub fn suppressed_case(q: &Mutex<Vec<u64>>, ch: &Receiver<u64>) {
    let mut queue = lock(q);
    // lint: allow(lock_hold) — fixture: the queue lock is the recv serialization point
    if let Ok(id) = ch.recv() {
        queue.push(id);
    }
}

// unused suppression: nothing blocks while the guard is live
pub fn unused_allow_case(q: &Mutex<Vec<u64>>) {
    // lint: allow(lock_hold) — nothing blocks below
    let mut queue = lock(q);
    queue.push(2);
}
