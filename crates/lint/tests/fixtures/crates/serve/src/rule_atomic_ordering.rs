//! Fixture: `atomic_ordering` — positive, negative, suppressed, and
//! unused-suppression cases. Never compiled; only lexed and parsed.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static FLAG: AtomicBool = AtomicBool::new(false);
static COUNT: AtomicUsize = AtomicUsize::new(0);

// positive: weakened ordering with no `ord:` rationale anywhere near
pub fn positive_bare_relaxed() -> usize {
    COUNT.load(Ordering::Relaxed)
}

// positive: `record:` must not satisfy the marker (word-boundary check)
pub fn positive_lookalike_marker() {
    // record: bump the counter before publishing
    COUNT.fetch_add(1, Ordering::Relaxed);
}

// negative: SeqCst is the conservative default and needs no rationale
pub fn negative_seqcst() {
    FLAG.store(true, Ordering::SeqCst);
}

// negative: rationale on the same line
pub fn negative_same_line() -> bool {
    FLAG.load(Ordering::Relaxed) // ord: Relaxed — advisory flag, no data published
}

// negative: rationale in the comment run directly above
pub fn negative_above() {
    // ord: Release — pairs with an Acquire load elsewhere in this fixture
    FLAG.store(true, Ordering::Release);
}

// negative: one rationale covers both orderings on a compare_exchange line
pub fn negative_compare_exchange() {
    // ord: Relaxed — self-contained value; the CAS only arbitrates ties
    let _ = COUNT.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
}

// negative: `cmp::Ordering` variants are not atomic orderings
pub fn negative_cmp_ordering(a: i32, b: i32) -> bool {
    matches!(a.cmp(&b), core::cmp::Ordering::Less)
}

// suppressed: justified inline suppression on the line above
pub fn suppressed_case() {
    // lint: allow(atomic_ordering) — fixture: the rationale lives in the design doc
    FLAG.store(true, Ordering::Release);
}

// unused suppression: flagged as `unused_allow`
pub fn unused_allow_case() {
    // lint: allow(atomic_ordering) — nothing on the next line violates the rule
    FLAG.store(true, Ordering::SeqCst);
}
