// Fixture: rule `hash_iter` — no `HashMap`/`HashSet` in numeric
// crates, where iteration order can leak into floating-point reduction
// order. Read by mbrpa-lint's own tests; never compiled and excluded
// from the workspace scan.

use std::collections::BTreeMap;

/// Positive: `HashMap` in a numeric crate — must be flagged.
pub fn positive() -> usize {
    let m: std::collections::HashMap<u32, u32> = Default::default();
    m.len()
}

/// Positive: `HashSet` counts too.
pub fn positive_set() -> usize {
    let s: std::collections::HashSet<u32> = Default::default();
    s.len()
}

/// Negative: ordered containers keep iteration deterministic.
pub fn negative() -> usize {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    m.len()
}

/// Suppressed: justified inline suppression silences the finding.
pub fn suppressed() -> usize {
    // lint: allow(hash_iter) — fixture: iteration order never escapes
    let m: std::collections::HashMap<u32, u32> = Default::default();
    m.len()
}

// lint: allow(hash_iter) — stale: only ordered containers below
pub fn no_hash_here() {}
