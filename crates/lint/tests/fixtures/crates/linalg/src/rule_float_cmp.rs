// Fixture: rule `float_cmp` — no `==`/`!=` on float-typed operands
// outside tests. Read by mbrpa-lint's own tests; never compiled and
// excluded from the workspace scan.

/// Positive: equality against a float literal — must be flagged.
pub fn positive(x: f64) -> bool {
    x == 0.0
}

/// Positive: `!=` against a float constant path counts too.
pub fn positive_const_path(x: f64) -> bool {
    x != f64::INFINITY
}

/// Negative: integer equality and tolerance checks are fine.
pub fn negative(n: usize, x: f64) -> bool {
    n == 0 && x.abs() < 1e-12
}

/// Suppressed: justified inline suppression silences the finding.
pub fn suppressed(x: f64) -> bool {
    // lint: allow(float_cmp) — fixture: structural exact-zero guard
    x == 0.0
}

// lint: allow(float_cmp) — stale: the next line compares integers
pub fn no_float_here(n: u32) -> bool {
    n == 0
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_comparison_is_allowed_in_test_modules() {
        assert!(1.0_f64 == 1.0_f64);
    }
}
