//! Fixture: `nested_par` — positive, negative, suppressed, and
//! unused-suppression cases. Never compiled; only lexed and parsed.

use mbrpa_linalg::par::outer_scope;
use rayon::prelude::*;

// positive: rayon call in a block nested under a live guard
pub fn positive_guarded_nested(xs: &[f64]) -> f64 {
    let _outer = outer_scope(4);
    let mut acc = 0.0;
    {
        acc += xs.par_iter().sum::<f64>();
    }
    acc
}

// positive: rayon call inside another rayon call's closure
pub fn positive_par_in_par(rows: &mut [Vec<f64>]) {
    rows.par_iter_mut().for_each(|row| {
        row.par_iter_mut().for_each(|x| *x += 1.0);
    });
}

// negative: guard and the outer region bound in the same scope — the
// sanctioned "this is the outer level" idiom (`core::chi0`)
pub fn negative_guard_same_scope(xs: &[f64]) -> f64 {
    let _outer = outer_scope(xs.len());
    xs.par_iter().sum::<f64>()
}

// negative: zipping two parallel iterators is one region, not two
pub fn negative_zip(a: &[f64], b: Vec<f64>) -> f64 {
    a.par_iter().zip(b.into_par_iter()).map(|(x, y)| x * y).sum()
}

// negative: sequential parallel regions in one function body
pub fn negative_sequential(xs: &[f64]) -> (f64, f64) {
    let a = xs.par_iter().sum::<f64>();
    let b = xs.par_iter().map(|x| x * x).sum::<f64>();
    (a, b)
}

// suppressed: nesting justified at the inner call site
pub fn suppressed_case(blocks: &[Vec<f64>]) -> f64 {
    blocks
        .par_iter()
        .map(|block| {
            // lint: allow(nested_par) — fixture: inner width is sized by inner_slots
            block.par_iter().sum::<f64>()
        })
        .sum()
}

// unused suppression: nothing parallel is nested here
pub fn unused_allow_case(xs: &[f64]) -> f64 {
    // lint: allow(nested_par) — nothing parallel is nested on the next line
    xs.par_iter().sum::<f64>()
}
