// Fixture: rule `narrow_cast` — no narrowing `as` casts inside index
// expressions. Read by mbrpa-lint's own tests; never compiled and
// excluded from the workspace scan.

/// Positive: narrowing cast inside an index expression — must be
/// flagged (`i as u32` can silently truncate on 64-bit grids).
pub fn positive(buf: &[f64], i: usize) -> f64 {
    buf[(i as u32) as usize]
}

/// Negative: widening/`usize` casts inside indices are fine, and a
/// narrowing cast *outside* an index expression is a different concern.
pub fn negative(buf: &[f64], i: u32) -> (f64, u16) {
    (buf[i as usize], (i % 7) as u16)
}

/// Suppressed: justified inline suppression silences the finding.
pub fn suppressed(buf: &[f64], i: u64) -> f64 {
    // lint: allow(narrow_cast) — fixture: `i` is bounded by the caller
    buf[(i as u32) as usize]
}

// lint: allow(narrow_cast) — stale: the next line indexes with usize
pub fn no_narrow_here(buf: &[f64], i: usize) -> f64 {
    buf[i]
}
