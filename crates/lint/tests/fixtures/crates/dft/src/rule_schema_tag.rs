//! Fixture: `schema_tag` — positive, negative, suppressed, and
//! unused-suppression cases. Never compiled; only lexed and parsed.

// positive: a writer spelling the tag literal locally
pub fn positive_literal_tag() -> &'static str {
    "mbrpa.fixture-doc/1"
}

// positive: tag embedded in a larger document string
pub fn positive_embedded() -> &'static str {
    "{\"schema\":\"mbrpa.fixture-doc/2\",\"ok\":true}"
}

// negative: referencing the registry constant
pub fn negative_registry() -> &'static str {
    mbrpa_schema::JOB
}

// negative: dotted prose without a version suffix is not a tag
pub fn negative_prose() -> &'static str {
    "see mbrpa.md and the mbrpa.design notes"
}

// negative: the version must be numeric
pub fn negative_non_numeric() -> &'static str {
    "mbrpa.fixture-doc/vNext"
}

// suppressed: justified literal
pub fn suppressed_case() -> &'static str {
    // lint: allow(schema_tag) — fixture: golden-file path, not a document tag
    "mbrpa.fixture-doc/3"
}

// unused suppression: the next line is registry-clean
pub fn unused_allow_case() -> &'static str {
    // lint: allow(schema_tag) — the next line references the registry
    mbrpa_schema::HEALTH
}
