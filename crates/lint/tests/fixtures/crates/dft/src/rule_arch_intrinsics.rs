// Fixture: rule `arch_intrinsics` — `std::arch` / `core::arch` belong
// in `crates/simd` only, behind the dispatch-checked safe API. This
// file is read by mbrpa-lint's own tests; it is never compiled and is
// excluded from the workspace scan.

/// Positive: importing raw intrinsics outside `crates/simd`.
pub mod positive_std {
    pub use std::arch::x86_64::_mm256_add_pd;
}

/// Positive: the `core::arch` spelling is the same violation.
pub mod positive_core {
    pub use core::arch::x86_64::_mm256_mul_pd;
}

/// Negative: the safe dispatch API is the sanctioned route, and paths
/// that merely end in `arch` (not under `std`/`core`) are fine.
pub mod negative {
    pub mod my {
        pub mod arch {
            pub fn add(a: f64, b: f64) -> f64 {
                a + b
            }
        }
    }
    pub fn ok() -> f64 {
        my::arch::add(1.0, 2.0)
    }
}

/// Suppressed: justified inline suppression silences the finding.
pub mod suppressed {
    // lint: allow(arch_intrinsics) — fixture exercises the suppression path
    pub use std::arch::x86_64::_mm256_sub_pd;
}

// lint: allow(arch_intrinsics) — stale: the next line touches no intrinsics
pub fn no_intrinsics_here() {}
