//! Fixture: `unsafe_wrapper` — positive, negative, suppressed, and
//! unused-suppression cases. Never compiled; only lexed and parsed.
//! Every `unsafe` carries a SAFETY comment so the `safety` rule stays
//! quiet and the cases isolate the wrapper rule.

// positive: fully-public unsafe entry point (should be pub(crate))
// SAFETY: fixture — caller guarantees `p` is valid for reads
pub unsafe fn positive_public_unsafe(p: *const f64) -> f64 {
    // SAFETY: contract forwarded from the caller
    unsafe { *p }
}

// positive: unsafe block in a safe fn with no preceding check
pub fn positive_unchecked_block(xs: &[f64]) -> f64 {
    // SAFETY: pretends index 0 exists — this is the violation
    unsafe { *xs.as_ptr() }
}

// negative: two-corner-check wrapper — the assert proves the precondition
pub fn negative_checked_wrapper(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "empty slice");
    // SAFETY: non-emptiness asserted above
    unsafe { *xs.as_ptr() }
}

// negative: crate-visible unsafe entry point behind the checked wrapper
// SAFETY: fixture — `negative_checked_wrapper` proves the precondition
pub(crate) unsafe fn negative_crate_entry(p: *const f64) -> f64 {
    // SAFETY: contract forwarded from the caller
    unsafe { *p }
}

// negative: macro_rules bodies are expansion sites, not wrappers
macro_rules! fixture_dispatch {
    ($f:ident, $xs:expr) => {
        // SAFETY: the expansion site checked the CPU feature above
        unsafe { $f($xs) }
    };
}

// suppressed: wrapper obligation justified at the block
pub fn suppressed_case(xs: &[f64]) -> f64 {
    // SAFETY: fixture — length checked by the (not shown) caller
    // lint: allow(unsafe_wrapper) — fixture: the caller owns the bounds check
    unsafe { *xs.as_ptr() }
}

// unused suppression: the assert already satisfies the rule
pub fn unused_allow_case(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    // SAFETY: non-emptiness asserted above
    // lint: allow(unsafe_wrapper) — the assert above already satisfies the rule
    unsafe { *xs.as_ptr() }
}
