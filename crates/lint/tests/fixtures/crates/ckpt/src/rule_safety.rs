// Fixture: rule `safety` — every `unsafe` needs an adjacent `// SAFETY:`
// comment. This file is read by mbrpa-lint's own tests; it is never
// compiled and is excluded from the workspace scan.

/// Positive: undocumented unsafe — must be flagged.
pub fn positive(p: *const u8) -> u8 {
    let v = unsafe { *p };
    v
}

/// Negative: the soundness argument is written down.
pub fn negative(p: *const u8) -> u8 {
    // SAFETY: fixture — the caller guarantees `p` is valid for reads.
    unsafe { *p }
}

/// Suppressed: justified inline suppression silences the finding.
pub fn suppressed(p: *const u8) -> u8 {
    // lint: allow(safety) — fixture exercises the suppression path
    unsafe { *p }
}

// lint: allow(safety) — stale: the next line contains no unsafe code
pub fn no_unsafe_here() {}
