// Fixture: rule `unwrap` — no `.unwrap()`/`.expect()` in library
// non-test code. Read by mbrpa-lint's own tests; never compiled and
// excluded from the workspace scan.

/// Positive: `.unwrap()` in library code — must be flagged.
pub fn positive(v: Option<u32>) -> u32 {
    v.unwrap()
}

/// Positive: `.expect()` counts too.
pub fn positive_expect(v: Option<u32>) -> u32 {
    v.expect("fixture")
}

/// Negative: propagating the `Option` is the library-discipline fix.
pub fn negative(v: Option<u32>) -> Option<u32> {
    v.map(|x| x + 1)
}

/// Suppressed: justified inline suppression silences the finding.
pub fn suppressed(v: Option<u32>) -> u32 {
    // lint: allow(unwrap) — fixture: the caller constructs `Some` directly
    v.unwrap()
}

// lint: allow(unwrap) — stale: the next line never panics
pub fn no_unwrap_here() {}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_test_modules() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
