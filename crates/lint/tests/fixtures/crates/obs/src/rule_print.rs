// Fixture: rule `print` — no `println!`/`eprintln!` in library crates.
// Read by mbrpa-lint's own tests; never compiled and excluded from the
// workspace scan.

/// Positive: `println!` in a library crate — must be flagged.
pub fn positive() {
    println!("diagnostic on stdout");
}

/// Positive: `eprintln!` counts too.
pub fn positive_stderr() {
    eprintln!("diagnostic on stderr");
}

/// Negative: building a string and returning it is fine.
pub fn negative() -> String {
    format!("report line")
}

/// Suppressed: justified inline suppression silences the finding.
pub fn suppressed() {
    // lint: allow(print) — fixture: deliberate CLI-facing status line
    println!("status");
}

// lint: allow(print) — stale: nothing prints on the next line
pub fn no_print_here() {}
