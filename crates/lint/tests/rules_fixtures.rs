//! Fixture-driven tests for every mbrpa-lint rule.
//!
//! Each fixture under `tests/fixtures/` (laid out as a miniature
//! workspace so path classification applies) carries four cases:
//! positive (flagged), negative (clean), suppressed (justified inline
//! suppression), and an unused suppression (flagged as
//! `unused_allow`). Expectations are per-rule finding counts, so the
//! tests are robust to fixture line drift.

use mbrpa_lint::rules::{check_file, classify, Finding};
use std::path::Path;

fn fixture_src(rel: &str) -> String {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    std::fs::read_to_string(&disk)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", disk.display()))
}

fn run_fixture(rel: &str) -> Vec<Finding> {
    check_file(rel, &fixture_src(rel))
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

/// Assert the exact per-rule finding counts and that no other rule
/// fired at all.
fn assert_only(findings: &[Finding], expected: &[(&str, usize)]) {
    for &(rule, n) in expected {
        assert_eq!(
            count(findings, rule),
            n,
            "rule `{rule}` count mismatch; all findings: {findings:#?}"
        );
    }
    let allowed: Vec<&str> = expected.iter().map(|&(r, _)| r).collect();
    for f in findings {
        assert!(
            allowed.contains(&f.rule),
            "unexpected finding from rule `{}`: {f:#?}",
            f.rule
        );
    }
}

#[test]
fn safety_rule_cases() {
    let f = run_fixture("crates/ckpt/src/rule_safety.rs");
    assert_only(&f, &[("safety", 1), ("unused_allow", 1)]);
}

#[test]
fn unwrap_rule_cases() {
    let f = run_fixture("crates/solver/src/rule_unwrap.rs");
    assert_only(&f, &[("unwrap", 2), ("unused_allow", 1)]);
}

#[test]
fn unwrap_rule_exempts_test_files_and_flags_stale_suppressions() {
    // The same source reclassified as an integration-test file: both
    // positive unwraps are exempt, and the now-pointless suppression in
    // the `suppressed` case goes stale alongside the deliberately
    // stale one — unused-suppression detection follows classification.
    let src = fixture_src("crates/solver/src/rule_unwrap.rs");
    let f = check_file("crates/solver/tests/rule_unwrap.rs", &src);
    assert_only(&f, &[("unwrap", 0), ("unused_allow", 2)]);
}

#[test]
fn float_cmp_rule_cases() {
    let f = run_fixture("crates/linalg/src/rule_float_cmp.rs");
    assert_only(&f, &[("float_cmp", 2), ("unused_allow", 1)]);
}

#[test]
fn hash_iter_rule_cases() {
    let f = run_fixture("crates/grid/src/rule_hash_iter.rs");
    assert_only(&f, &[("hash_iter", 2), ("unused_allow", 1)]);
}

#[test]
fn hash_iter_rule_is_scoped_to_numeric_crates() {
    // The identical source inside a non-numeric crate (ckpt) is clean
    // except for the suppressions, which all go stale.
    let src = fixture_src("crates/grid/src/rule_hash_iter.rs");
    let f = check_file("crates/ckpt/src/rule_hash_iter.rs", &src);
    assert_only(&f, &[("hash_iter", 0), ("unused_allow", 2)]);
}

#[test]
fn print_rule_cases() {
    let f = run_fixture("crates/obs/src/rule_print.rs");
    assert_only(&f, &[("print", 2), ("unused_allow", 1)]);
}

#[test]
fn print_rule_exempts_the_bench_crate() {
    // stdout tables are the bench crate's CLI interface; `print` (and
    // `unwrap`) discipline deliberately does not apply there.
    let src = fixture_src("crates/obs/src/rule_print.rs");
    let f = check_file("crates/bench/src/rule_print.rs", &src);
    assert_only(&f, &[("print", 0), ("unused_allow", 2)]);
}

#[test]
fn narrow_cast_rule_cases() {
    let f = run_fixture("crates/core/src/rule_narrow_cast.rs");
    assert_only(&f, &[("narrow_cast", 1), ("unused_allow", 1)]);
}

#[test]
fn arch_intrinsics_rule_cases() {
    let f = run_fixture("crates/dft/src/rule_arch_intrinsics.rs");
    assert_only(&f, &[("arch_intrinsics", 2), ("unused_allow", 1)]);
}

#[test]
fn arch_intrinsics_rule_exempts_the_simd_crate() {
    // The identical source inside `crates/simd` is the sanctioned home
    // for intrinsics: no findings, and both suppressions go stale.
    let src = fixture_src("crates/dft/src/rule_arch_intrinsics.rs");
    let f = check_file("crates/simd/src/rule_arch_intrinsics.rs", &src);
    assert_only(&f, &[("arch_intrinsics", 0), ("unused_allow", 2)]);
}

#[test]
fn classification_matrix() {
    let lib = classify("crates/solver/src/block_cocg.rs");
    assert!(lib.is_library && lib.is_numeric && !lib.is_test_file);
    assert_eq!(lib.crate_name, "solver");

    let bin = classify("crates/bench/src/bin/kernels_bench.rs");
    assert!(!bin.is_library && !bin.is_numeric);

    let test = classify("crates/linalg/tests/proptest_gemm.rs");
    assert!(test.is_test_file && !test.is_library && !test.is_numeric);

    let root = classify("src/lib.rs");
    assert_eq!(root.crate_name, "mbrpa");
    assert!(root.is_library && !root.is_numeric);

    let lint_main = classify("crates/lint/src/main.rs");
    assert!(!lint_main.is_library, "bin targets are not library code");
}

#[test]
fn atomic_ordering_rule_cases() {
    let f = run_fixture("crates/serve/src/rule_atomic_ordering.rs");
    assert_only(&f, &[("atomic_ordering", 2), ("unused_allow", 1)]);
}

#[test]
fn unsafe_wrapper_rule_cases() {
    let f = run_fixture("crates/simd/src/rule_unsafe_wrapper.rs");
    assert_only(&f, &[("unsafe_wrapper", 2), ("unused_allow", 1)]);
}

#[test]
fn unsafe_wrapper_rule_is_scoped_to_the_simd_crate() {
    // The identical source outside `crates/simd` is out of the rule's
    // jurisdiction: no wrapper findings, both suppressions go stale.
    let src = fixture_src("crates/simd/src/rule_unsafe_wrapper.rs");
    let f = check_file("crates/dft/src/rule_unsafe_wrapper.rs", &src);
    assert_only(&f, &[("unsafe_wrapper", 0), ("unused_allow", 2)]);
}

#[test]
fn nested_par_rule_cases() {
    let f = run_fixture("crates/core/src/rule_nested_par.rs");
    assert_only(&f, &[("nested_par", 2), ("unused_allow", 1)]);
}

#[test]
fn lock_hold_rule_cases() {
    let f = run_fixture("crates/serve/src/rule_lock_hold.rs");
    assert_only(&f, &[("lock_hold", 2), ("unused_allow", 1)]);
}

#[test]
fn lock_hold_rule_is_scoped_to_serve_non_test_code() {
    // Reclassified as a serve *test* file the rule stands down (tests
    // may serialize on a lock deliberately); suppressions go stale.
    let src = fixture_src("crates/serve/src/rule_lock_hold.rs");
    let f = check_file("crates/serve/tests/rule_lock_hold.rs", &src);
    assert_only(&f, &[("lock_hold", 0), ("unused_allow", 2)]);
}

#[test]
fn schema_tag_rule_cases() {
    let f = run_fixture("crates/dft/src/rule_schema_tag.rs");
    assert_only(&f, &[("schema_tag", 2), ("unused_allow", 1)]);
}

#[test]
fn schema_tag_rule_exempts_the_registry_crate() {
    // The registry itself is the one place allowed to spell tags.
    let src = fixture_src("crates/dft/src/rule_schema_tag.rs");
    let f = check_file("crates/schema/src/rule_schema_tag.rs", &src);
    assert_only(&f, &[("schema_tag", 0), ("unused_allow", 2)]);
}
