//! Hand-rolled Rust lexer for the invariant linter.
//!
//! The rules in [`crate::rules`] operate on a token stream, not on raw
//! text, so string literals, comments, and doc comments can never produce
//! false positives (a `println!` inside a string is not a finding). The
//! lexer handles the parts of the Rust grammar that make naive regex
//! scanning unsound:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`),
//! * string literals with escapes, byte strings, and raw strings
//!   `r#"…"#` with an arbitrary number of `#` guards,
//! * char literals vs lifetimes (`'a'` vs `'a`), including escaped
//!   chars (`'\''`, `'\u{1F600}'`),
//! * float vs integer literals vs range expressions (`1.0`, `1e-3`,
//!   `1.` are floats; `0..n` and tuple field access `x.0` are not),
//! * multi-character operators (`==`, `!=`, `->`, `::`, `..=`, …).
//!
//! It is a *lexer*, not a parser: rules that need structure (attribute
//! spans, index-bracket depth) reconstruct just enough of it from the
//! token stream.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `HashMap`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e-3`, `2.5f32`).
    Float,
    /// String, raw string, byte string, or C string literal.
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// `//` line comment, including doc comments; text excludes newline.
    LineComment,
    /// `/* … */` block comment (possibly nested); text includes markers.
    BlockComment,
    /// Punctuation / operator, longest-match (`==`, `..=`, `->`, `#`).
    Punct,
}

/// A single token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token classification.
    pub kind: TokKind,
    /// Raw source text of the token (comments keep their markers).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    fn new(kind: TokKind, text: &str, line: u32) -> Self {
        Token {
            kind,
            text: text.to_string(),
            line,
        }
    }
}

/// Lex `src` into tokens. Unknown bytes are emitted as single-char
/// `Punct` tokens so the stream always covers the whole input; the
/// linter must never panic on weird-but-compiling source.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.char_indices().collect(),
        pos: 0,
        line: 1,
        src,
    }
    .run()
}

struct Lexer<'a> {
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    src: &'a str,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, idx: usize) -> usize {
        self.chars
            .get(idx)
            .map(|&(b, _)| b)
            .unwrap_or(self.src.len())
    }

    /// Advance one char, tracking the line counter.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn slice(&self, start: usize) -> &str {
        &self.src[self.byte_at(start)..self.byte_at(self.pos)]
    }

    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    while let Some(c) = self.peek(0) {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    out.push(Token::new(TokKind::LineComment, self.slice(start), line));
                }
                '/' if self.peek(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(0), self.peek(1)) {
                            (Some('/'), Some('*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => break, // unterminated; tolerate
                        }
                    }
                    out.push(Token::new(TokKind::BlockComment, self.slice(start), line));
                }
                '"' => {
                    self.string_literal();
                    out.push(Token::new(TokKind::Str, self.slice(start), line));
                }
                '\'' => {
                    let kind = self.char_or_lifetime();
                    out.push(Token::new(kind, self.slice(start), line));
                }
                c if c.is_ascii_digit() => {
                    let kind = self.number();
                    out.push(Token::new(kind, self.slice(start), line));
                }
                c if c == '_' || c.is_alphabetic() => {
                    let tok = self.ident_like(start, line);
                    out.push(tok);
                }
                _ => {
                    self.punct();
                    out.push(Token::new(TokKind::Punct, self.slice(start), line));
                }
            }
        }
        out
    }

    /// Consume an identifier; if it is a raw-string / byte-string prefix
    /// (`r`, `b`, `br`, `c`, `cr` directly followed by a quote), consume
    /// the whole literal instead.
    fn ident_like(&mut self, start: usize, line: u32) -> Token {
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let ident = self.slice(start).to_string();
        let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "c" | "cr");
        match self.peek(0) {
            Some('"') if is_str_prefix => {
                self.string_literal();
                Token::new(TokKind::Str, self.slice(start), line)
            }
            Some('#') if is_str_prefix && ident != "b" && ident != "c" => {
                // raw string with hash guards: r#"…"#, br##"…"##
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    self.raw_string_body(hashes);
                    Token::new(TokKind::Str, self.slice(start), line)
                } else {
                    Token::new(TokKind::Ident, &ident, line)
                }
            }
            Some('\'') if ident == "b" => {
                // byte char literal b'x'
                self.bump();
                self.char_body();
                Token::new(TokKind::Char, self.slice(start), line)
            }
            _ => Token::new(TokKind::Ident, &ident, line),
        }
    }

    /// Consume a `"`-delimited string (escapes honoured). For raw-string
    /// prefixes the caller has already consumed the prefix; `"` with no
    /// preceding `#` guards is a plain string even after `r`.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consume the body of a raw string until `"` followed by `hashes`
    /// `#` characters. The opening `"` has been consumed.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut n = 0usize;
                while n < hashes && self.peek(n) == Some('#') {
                    n += 1;
                }
                if n == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        }
    }

    /// After a `'`: decide char literal vs lifetime, consume it.
    fn char_or_lifetime(&mut self) -> TokKind {
        // 'a' → char; 'a → lifetime; '\n' → char; 'static → lifetime.
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let is_lifetime = match c1 {
            Some(c) if c == '_' || c.is_alphabetic() => c2 != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            TokKind::Lifetime
        } else {
            self.bump(); // '
            self.char_body();
            TokKind::Char
        }
    }

    /// Consume a char-literal body plus closing quote (opening consumed).
    fn char_body(&mut self) {
        match self.bump() {
            Some('\\') => {
                // Escape: the escaped char is consumed blindly — it may be
                // a quote ('\'') or backslash ('\\') — then everything to
                // the closing quote (covers '\u{…}').
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        return;
                    }
                }
            }
            Some('\'') => {} // empty ''— malformed, tolerate
            Some(_) if self.peek(0) == Some('\'') => {
                self.bump();
            }
            _ => {}
        }
    }

    /// Consume a numeric literal; classify int vs float.
    fn number(&mut self) -> TokKind {
        let mut is_float = false;
        // Radix prefixes are always integers.
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            return TokKind::Int;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: `.` not followed by `.` (range) or an
        // identifier start (field/method access like `x.0.re` / tuple idx).
        if self.peek(0) == Some('.') {
            let next = self.peek(1);
            let is_range = next == Some('.');
            let is_field = matches!(next, Some(c) if c == '_' || c.is_alphabetic());
            if !is_range && !is_field {
                is_float = true;
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let (mut ahead, sign) = (1usize, self.peek(1));
            if matches!(sign, Some('+') | Some('-')) {
                ahead = 2;
            }
            if matches!(self.peek(ahead), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                for _ in 0..ahead {
                    self.bump();
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (f64 forces float; u*/i* keep int).
        let suffix_start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let suffix = self.slice(suffix_start);
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            is_float = true;
        }
        if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        }
    }

    /// Consume one operator, longest-match over Rust's multi-char ops.
    fn punct(&mut self) {
        const THREE: [&str; 6] = ["..=", "...", "<<=", ">>=", "->*", "::<"];
        const TWO: [&str; 19] = [
            "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=", "-=", "*=", "/=",
            "%=", "^=", "&=", "|=", "<<",
        ];
        let grab = |n: usize, lx: &Self| -> String {
            (0..n).filter_map(|i| lx.peek(i)).collect::<String>()
        };
        let three = grab(3, self);
        if THREE.contains(&three.as_str()) {
            for _ in 0..3 {
                self.bump();
            }
            return;
        }
        let two = grab(2, self);
        if TWO.contains(&two.as_str()) {
            for _ in 0..2 {
                self.bump();
            }
            return;
        }
        self.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_strings_and_nesting() {
        let toks = kinds("// line\n/* a /* b */ c */ x \"s // not comment\" ");
        assert_eq!(toks[0].0, TokKind::LineComment);
        assert_eq!(toks[1].0, TokKind::BlockComment);
        assert_eq!(toks[1].1, "/* a /* b */ c */");
        assert_eq!(toks[2], (TokKind::Ident, "x".to_string()));
        assert_eq!(toks[3].0, TokKind::Str);
    }

    #[test]
    fn raw_strings_with_guards() {
        let toks = kinds(r####"let s = r#"has "quotes" inside"#;"####);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("quotes"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.0 == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.0 == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds("1.0 2. 3e-4 5f64 0x1f 7 0..9 x.0 10_000.5");
        let floats: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokKind::Float)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(floats, ["1.0", "2.", "3e-4", "5f64", "10_000.5"]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokKind::Int)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(ints, ["0x1f", "7", "0", "9", "0"]);
    }

    #[test]
    fn multi_char_operators() {
        let toks = kinds("a == b != c ..= d");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokKind::Punct)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "..="]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<_> = toks.iter().map(|t| (t.text.as_str(), t.line)).collect();
        assert_eq!(lines, [("a", 1), ("b", 2), ("c", 4)]);
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r#"b"bytes" b'x' c"cstr""#);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1].0, TokKind::Char);
        assert_eq!(toks[2].0, TokKind::Str);
    }

    #[test]
    fn escaped_quote_char_does_not_eat_the_next_token() {
        // Regression: '\'' must end at its own closing quote — the
        // escaped quote is the *content*, not the terminator. Getting
        // this wrong swallowed the following `)` into a bogus char
        // token and unbalanced every downstream scope tree.
        let toks = kinds(r"m('\'') n('\\')");
        let texts: Vec<_> = toks.iter().map(|t| (t.0, t.1.as_str())).collect();
        assert_eq!(
            texts,
            [
                (TokKind::Ident, "m"),
                (TokKind::Punct, "("),
                (TokKind::Char, r"'\''"),
                (TokKind::Punct, ")"),
                (TokKind::Ident, "n"),
                (TokKind::Punct, "("),
                (TokKind::Char, r"'\\'"),
                (TokKind::Punct, ")"),
            ]
        );
    }
}
