//! Reporting: human-readable findings table, schema-versioned JSON
//! emission, and a hand-rolled validator for the emitted JSON (same
//! pattern as `kernels_bench --validate`, so CI can round-trip the
//! artifact without pulling in a JSON dependency).

use crate::rules::{Finding, RULE_IDS};

/// Schema identifier written into every findings document. Bump on any
/// backwards-incompatible change and document it in DESIGN.md §9.
/// Drawn from the registry crate, like every other tag (`schema_tag`).
pub const SCHEMA: &str = mbrpa_schema::LINT_FINDINGS;

/// Render findings as an aligned human-readable table; empty findings
/// produce a one-line all-clear. Returned as a `String` so the library
/// itself never writes to stdout (rule `print` applies to us too).
pub fn human_table(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    if findings.is_empty() {
        out.push_str(&format!(
            "mbrpa-lint: {files_scanned} files scanned, 0 findings\n"
        ));
        return out;
    }
    let loc: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{}", f.file, f.line))
        .collect();
    let wloc = loc.iter().map(String::len).max().unwrap_or(8).max(8);
    let wrule = findings
        .iter()
        .map(|f| f.rule.len())
        .max()
        .unwrap_or(4)
        .max(4);
    out.push_str(&format!(
        "{:<wloc$}  {:<wrule$}  message\n",
        "location", "rule"
    ));
    out.push_str(&format!(
        "{}  {}  {}\n",
        "-".repeat(wloc),
        "-".repeat(wrule),
        "-".repeat(7)
    ));
    for (f, l) in findings.iter().zip(&loc) {
        out.push_str(&format!("{l:<wloc$}  {:<wrule$}  {}\n", f.rule, f.message));
    }
    out.push_str(&format!(
        "\nmbrpa-lint: {files_scanned} files scanned, {} finding(s)\n",
        findings.len()
    ));
    out
}

/// Serialise findings to the `mbrpa.lint-findings/1` JSON document.
pub fn to_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{SCHEMA}\",\"files_scanned\":{files_scanned},\"total\":{},",
        findings.len()
    ));
    out.push_str("\"counts\":{");
    let mut first = true;
    for rule in RULE_IDS {
        let n = findings.iter().filter(|f| f.rule == rule).count();
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{rule}\":{n}"));
    }
    out.push_str("},\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            escape(&f.file),
            f.line,
            f.rule,
            escape(&f.message)
        ));
    }
    out.push_str("]}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validate `text` against the `mbrpa.lint-findings/1` schema. Returns
/// the number of findings in the document.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut p = Parser::new(text);
    let root = p.value()?;
    p.ws();
    if p.pos != p.b.len() {
        return Err("trailing garbage after JSON document".into());
    }
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field 'schema'")?;
    if schema != SCHEMA {
        return Err(format!("schema '{schema}', expected '{SCHEMA}'"));
    }
    let files = root
        .get("files_scanned")
        .and_then(Json::as_num)
        .and_then(as_count)
        .ok_or("'files_scanned' must be a non-negative integer")?;
    if files < 1 {
        return Err("'files_scanned' must be >= 1".into());
    }
    let total = root
        .get("total")
        .and_then(Json::as_num)
        .and_then(as_count)
        .ok_or("'total' must be a non-negative integer")?;
    let counts = root.get("counts").ok_or("missing object field 'counts'")?;
    let mut count_sum = 0usize;
    for rule in RULE_IDS {
        let n = counts
            .get(rule)
            .and_then(Json::as_num)
            .and_then(as_count)
            .ok_or(format!("counts.{rule} must be a non-negative integer"))?;
        count_sum += n;
    }
    let findings = match root.get("findings") {
        Some(Json::Arr(items)) => items,
        _ => return Err("missing array field 'findings'".into()),
    };
    if findings.len() != total || count_sum != total {
        return Err(format!(
            "inconsistent totals: total={total}, findings={}, counts sum={count_sum}",
            findings.len()
        ));
    }
    for (i, f) in findings.iter().enumerate() {
        for key in ["file", "rule", "message"] {
            f.get(key)
                .and_then(Json::as_str)
                .ok_or(format!("finding {i}: missing string field '{key}'"))?;
        }
        let rule = f.get("rule").and_then(Json::as_str).unwrap_or("");
        if !RULE_IDS.contains(&rule) {
            return Err(format!("finding {i}: unknown rule '{rule}'"));
        }
        let line = f
            .get("line")
            .and_then(Json::as_num)
            .and_then(as_count)
            .ok_or(format!("finding {i}: 'line' must be a positive integer"))?;
        if line < 1 {
            return Err(format!("finding {i}: 'line' must be a positive integer"));
        }
    }
    Ok(findings.len())
}

/// A JSON number as a non-negative integer count, or `None` if it is
/// negative, non-finite, or has a fractional part.
#[allow(clippy::float_cmp)]
fn as_count(v: f64) -> Option<usize> {
    // lint: allow(float_cmp) — integer-valuedness check on a JSON number
    if v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= usize::MAX as f64 {
        Some(v as usize)
    } else {
        None
    }
}

/// Minimal JSON value for the hand-rolled validator.
#[derive(Debug)]
enum Json {
    Null,
    // The schema has no boolean fields yet; the parser keeps the value
    // so future schema bumps don't have to touch it.
    Bool(#[allow(dead_code)] bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            b: text.as_bytes(),
            pos: 0,
        }
    }
    fn ws(&mut self) {
        while self.pos < self.b.len() && (self.b[self.pos] as char).is_ascii_whitespace() {
            self.pos += 1;
        }
    }
    fn expect_byte(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.pos < self.b.len() && self.b[self.pos] == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }
    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.pos).copied()
    }
    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }
    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.b.len()
            && matches!(
                self.b[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let start = self.pos;
        let mut out = String::new();
        let mut had_escape = false;
        while self.pos < self.b.len() {
            let c = self.b[self.pos];
            self.pos += 1;
            match c {
                b'"' => {
                    if !had_escape {
                        // Escape-free strings decode straight from the
                        // source bytes, preserving multi-byte UTF-8.
                        return std::str::from_utf8(&self.b[start..self.pos - 1])
                            .map(str::to_string)
                            .map_err(|e| e.to_string());
                    }
                    return Ok(out);
                }
                b'\\' => {
                    had_escape = true;
                    let esc = *self.b.get(self.pos).ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = std::str::from_utf8(
                                self.b.get(self.pos..self.pos + 4).ok_or("truncated \\u")?,
                            )
                            .map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(cp).ok_or("bad codepoint")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".into())
    }
    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect_byte(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            rule: "unwrap",
            message: "bad \"quote\" and\nnewline".into(),
        }]
    }

    #[test]
    fn json_round_trips_through_validator() {
        let doc = to_json(&sample(), 12);
        assert_eq!(validate(&doc), Ok(1));
        let empty = to_json(&[], 12);
        assert_eq!(validate(&empty), Ok(0));
    }

    #[test]
    fn validator_rejects_bad_documents() {
        assert!(validate("{}").is_err());
        assert!(validate("not json").is_err());
        let doc = to_json(&sample(), 12);
        assert!(validate(&doc.replace("lint-findings/1", "lint-findings/9")).is_err());
        // Inconsistent total.
        assert!(validate(&doc.replace("\"total\":1", "\"total\":2")).is_err());
        // Trailing garbage.
        assert!(validate(&format!("{doc} x")).is_err());
    }

    #[test]
    fn human_table_mentions_every_finding() {
        let t = human_table(&sample(), 12);
        assert!(t.contains("crates/x/src/lib.rs:3"));
        assert!(t.contains("unwrap"));
        assert!(human_table(&[], 3).contains("0 findings"));
    }
}
