//! Rule engine: walks a lexed token stream and emits findings.
//!
//! Seven rules enforce invariants the compiler cannot see (rule ids are
//! the strings used in `// lint: allow(<rule>)` suppressions):
//!
//! | id                | invariant                                              |
//! |-------------------|--------------------------------------------------------|
//! | `safety`          | every `unsafe` carries an adjacent `// SAFETY:` comment |
//! | `unwrap`          | no `.unwrap()`/`.expect()` in library non-test code     |
//! | `float_cmp`       | no `==`/`!=` against float literals outside tests       |
//! | `hash_iter`       | no `HashMap`/`HashSet` in numeric crates                |
//! | `print`           | no `println!`/`eprintln!` in library crates             |
//! | `narrow_cast`     | no narrowing `as` casts inside index expressions        |
//! | `arch_intrinsics` | `std::arch`/`core::arch` only inside `crates/simd`      |
//! | `unused_allow`    | (meta) a suppression that matched no finding            |
//!
//! Suppressions: `// lint: allow(<rule>) — <justification>` on the same
//! line as the violation or on the line directly above it. Every
//! suppression must actually suppress something, otherwise the engine
//! reports `unused_allow` — stale justifications are themselves a lie
//! about the code and are treated as findings.

use crate::lexer::{lex, TokKind, Token};

/// One rule violation (or unused suppression) at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule id (`safety`, `unwrap`, …, `unused_allow`).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// All rule ids, in reporting order. `unused_allow` is the meta-rule
/// for suppressions that matched nothing.
pub const RULE_IDS: [&str; 8] = [
    "safety",
    "unwrap",
    "float_cmp",
    "hash_iter",
    "print",
    "narrow_cast",
    "arch_intrinsics",
    "unused_allow",
];

/// The one crate allowed to touch `std::arch`/`core::arch` directly
/// (rule `arch_intrinsics`): every intrinsic lives behind its safe,
/// dispatch-checked API so bit-identity across paths stays auditable
/// in a single place.
pub const ARCH_CRATE: &str = "simd";

/// Crates whose results are numeric and must not depend on hash-map
/// iteration order (rule `hash_iter`).
pub const NUMERIC_CRATES: [&str; 6] = ["simd", "linalg", "grid", "solver", "core", "dft"];

/// Crates held to library discipline (rules `unwrap` and `print`):
/// errors propagate, output goes through `mbrpa-obs`. The `bench`
/// crate is deliberately absent — its panics and stdout tables are its
/// CLI interface, not incidental behaviour.
pub const LIBRARY_CRATES: [&str; 11] = [
    "simd", "linalg", "grid", "solver", "core", "dft", "ckpt", "obs", "lint", "serve", "mbrpa",
];

/// How a file participates in the rule set, derived from its
/// workspace-relative path by [`classify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Short crate name (`linalg`, `bench`, `mbrpa` for the root crate).
    pub crate_name: String,
    /// Library-crate source (not a test, bench, example, or bin target).
    pub is_library: bool,
    /// Source inside a crate listed in [`NUMERIC_CRATES`].
    pub is_numeric: bool,
    /// Whole file is test/bench/example code.
    pub is_test_file: bool,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = if parts.len() >= 2 && parts[0] == "crates" {
        parts[1].to_string()
    } else {
        "mbrpa".to_string()
    };
    let is_test_file = parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"));
    let in_src = parts.contains(&"src");
    let is_bin_target = parts.contains(&"bin") || rel_path.ends_with("src/main.rs");
    let is_library =
        LIBRARY_CRATES.contains(&crate_name.as_str()) && in_src && !is_bin_target && !is_test_file;
    let is_numeric = NUMERIC_CRATES.contains(&crate_name.as_str()) && in_src && !is_test_file;
    FileClass {
        crate_name,
        is_library,
        is_numeric,
        is_test_file,
    }
}

/// An inline suppression comment and whether any finding consumed it.
struct Suppression {
    line: u32,
    rule: String,
    /// Lines this suppression covers: its own line and the next line
    /// containing code (so it can sit above the violating statement).
    covered: [u32; 2],
    used: bool,
}

/// Scan one file. `rel_path` is workspace-relative with `/` separators;
/// `src` is the file contents.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let class = classify(rel_path);
    let tokens = lex(src);
    let test_lines = test_line_spans(&tokens, class.is_test_file);
    let mut suppressions = collect_suppressions(&tokens);
    let safety_lines = safety_comment_lines(&tokens);
    let comment_only_lines = comment_only_lines(&tokens);

    // Code view: indices of non-comment tokens, in order.
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();

    let mut findings = Vec::new();
    let mut emit = |line: u32, rule: &'static str, message: String| {
        for s in suppressions.iter_mut() {
            if s.rule == rule && s.covered.contains(&line) {
                s.used = true;
                return;
            }
        }
        findings.push(Finding {
            file: rel_path.to_string(),
            line,
            rule,
            message,
        });
    };

    let is_test_line =
        |line: u32| class.is_test_file || test_lines.iter().any(|&(a, b)| line >= a && line <= b);

    // Bracket depth for `narrow_cast`: depth of `[` … `]` nesting,
    // excluding attribute brackets (`#[…]` / `#![…]`).
    let mut index_depth: usize = 0;
    let mut attr_depth_at: Option<usize> = None;

    for (i, tok) in code.iter().enumerate() {
        let prev = i.checked_sub(1).and_then(|j| code.get(j));
        let next = code.get(i + 1);
        let next2 = code.get(i + 2);

        match (tok.kind, tok.text.as_str()) {
            (TokKind::Punct, "[") => {
                // `#[…]` and `#![…]` open attribute brackets, not indexing.
                let prev2 = i.checked_sub(2).and_then(|j| code.get(j));
                let after_hash = matches!(prev, Some(p) if p.text == "#")
                    || (matches!(prev, Some(p) if p.text == "!")
                        && matches!(prev2, Some(p2) if p2.text == "#"));
                index_depth += 1;
                if after_hash && attr_depth_at.is_none() {
                    attr_depth_at = Some(index_depth);
                }
            }
            (TokKind::Punct, "]") => {
                if attr_depth_at == Some(index_depth) {
                    attr_depth_at = None;
                }
                index_depth = index_depth.saturating_sub(1);
            }
            // R1: unsafe without adjacent SAFETY comment. Applies
            // everywhere, tests included — soundness arguments are not
            // optional in test code.
            (TokKind::Ident, "unsafe") => {
                let documented = safety_lines.contains(&tok.line)
                    || covered_by_safety_above(tok.line, &safety_lines, &comment_only_lines);
                if !documented {
                    emit(
                        tok.line,
                        "safety",
                        "`unsafe` without an adjacent `// SAFETY:` comment; state the \
                         soundness argument on the line above"
                            .to_string(),
                    );
                }
            }
            // R2: unwrap/expect in library non-test code.
            (TokKind::Ident, "unwrap" | "expect")
                if class.is_library
                    && !is_test_line(tok.line)
                    && matches!(prev, Some(p) if p.text == ".")
                    && matches!(next, Some(n) if n.text == "(") =>
            {
                emit(
                    tok.line,
                    "unwrap",
                    format!(
                        "`.{}()` in library code: propagate the error, or justify with \
                         `// lint: allow(unwrap) — <why it cannot fail>`",
                        tok.text
                    ),
                );
            }
            // R3: float equality outside tests.
            (TokKind::Punct, "==" | "!=") if !is_test_line(tok.line) => {
                let float_side = matches!(prev, Some(p) if p.kind == TokKind::Float)
                    || matches!(next, Some(n) if n.kind == TokKind::Float)
                    || is_float_path(next, next2);
                if float_side {
                    emit(
                        tok.line,
                        "float_cmp",
                        "float equality: use a tolerance helper (`approx_eq`) or an \
                         explicit exact-zero guard (`exactly_zero`)"
                            .to_string(),
                    );
                }
            }
            // R4: hash collections in numeric crates.
            (TokKind::Ident, "HashMap" | "HashSet")
                if class.is_numeric && !is_test_line(tok.line) =>
            {
                emit(
                    tok.line,
                    "hash_iter",
                    format!(
                        "`{}` in a numeric crate: iteration order can leak into \
                         results; use `BTreeMap`/`BTreeSet` or justify with \
                         `// lint: allow(hash_iter) — <why order never escapes>`",
                        tok.text
                    ),
                );
            }
            // R5: direct stdout/stderr in library crates.
            (TokKind::Ident, "println" | "eprintln" | "print" | "eprint")
                if class.is_library
                    && !is_test_line(tok.line)
                    && matches!(next, Some(n) if n.text == "!")
                    // `writeln!(f, …)`-style callees and method names
                    // (`w.print!`…) don't exist; but guard against
                    // `obs::print` paths by requiring no leading `::`.
                    && !matches!(prev, Some(p) if p.text == "::" || p.text == ".") =>
            {
                emit(
                    tok.line,
                    "print",
                    format!(
                        "`{}!` in a library crate: route diagnostics through \
                         `mbrpa-obs` or return them to the caller",
                        tok.text
                    ),
                );
            }
            // R6: narrowing `as` casts inside index expressions.
            (TokKind::Ident, "as")
                if index_depth > 0
                    && attr_depth_at.is_none()
                    && !is_test_line(tok.line)
                    && matches!(
                        next,
                        Some(n) if matches!(
                            n.text.as_str(),
                            "u8" | "u16" | "u32" | "i8" | "i16" | "i32"
                        )
                    ) =>
            {
                emit(
                    tok.line,
                    "narrow_cast",
                    format!(
                        "narrowing `as {}` inside an index expression can silently \
                         truncate; index with `usize` and convert with `try_from`",
                        next.map(|n| n.text.as_str()).unwrap_or("_")
                    ),
                );
            }
            // R7: raw CPU intrinsics outside the dedicated SIMD crate.
            // `crates/simd` is the single audited home for `std::arch` /
            // `core::arch`: its scalar oracle defines the canonical
            // result bit-for-bit, so intrinsics sprinkled anywhere else
            // would silently fork the numerics.
            (TokKind::Ident, "std" | "core")
                if class.crate_name != ARCH_CRATE
                    && matches!(next, Some(n) if n.text == "::")
                    && matches!(next2, Some(n2) if n2.text == "arch") =>
            {
                emit(
                    tok.line,
                    "arch_intrinsics",
                    format!(
                        "`{}::arch` outside `crates/simd`: route through the \
                         `mbrpa-simd` dispatch API so every intrinsic keeps a \
                         bit-identical scalar twin",
                        tok.text
                    ),
                );
            }
            _ => {}
        }
    }

    for s in &suppressions {
        if !s.used {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: s.line,
                rule: "unused_allow",
                message: format!(
                    "suppression `lint: allow({})` matched no finding; remove it",
                    s.rule
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// True if the tokens after `==`/`!=` spell a float-typed constant path
/// like `f64::NAN` or `f32::EPSILON`.
fn is_float_path(next: Option<&&Token>, next2: Option<&&Token>) -> bool {
    matches!(next, Some(n) if n.text == "f64" || n.text == "f32")
        && matches!(next2, Some(n2) if n2.text == "::")
}

/// Lines whose comments contain `SAFETY:`.
fn safety_comment_lines(tokens: &[Token]) -> Vec<u32> {
    tokens
        .iter()
        .filter(|t| {
            matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                && t.text.contains("SAFETY:")
        })
        .map(|t| t.line)
        .collect()
}

/// Lines containing a comment but no code token (candidates for the
/// comment run scanned upward from an `unsafe`).
fn comment_only_lines(tokens: &[Token]) -> Vec<u32> {
    let mut comment = std::collections::BTreeSet::new();
    let mut code = std::collections::BTreeSet::new();
    for t in tokens {
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => {
                comment.insert(t.line);
            }
            _ => {
                code.insert(t.line);
            }
        }
    }
    comment.difference(&code).copied().collect()
}

/// Scan upward from the line above `line` through a contiguous run of
/// comment-only lines; true if any of them carries `SAFETY:`.
fn covered_by_safety_above(line: u32, safety: &[u32], comment_only: &[u32]) -> bool {
    let mut l = line.saturating_sub(1);
    while l > 0 && comment_only.contains(&l) {
        if safety.contains(&l) {
            return true;
        }
        l -= 1;
    }
    false
}

/// Collect `// lint: allow(<rule>)` suppressions with their coverage.
fn collect_suppressions(tokens: &[Token]) -> Vec<Suppression> {
    let code_lines: Vec<u32> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|t| t.line)
        .collect();
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokKind::LineComment {
            continue;
        }
        // Doc comments only *talk about* suppressions; `// lint: allow`
        // must be a plain comment to take effect.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let Some(idx) = t.text.find("lint: allow(") else {
            continue;
        };
        let rest = &t.text[idx + "lint: allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        let rule = rest[..end].trim().to_string();
        let next_code_line = code_lines
            .iter()
            .copied()
            .filter(|&l| l > t.line)
            .min()
            .unwrap_or(t.line);
        out.push(Suppression {
            line: t.line,
            rule,
            covered: [t.line, next_code_line],
            used: false,
        });
    }
    out
}

/// Line ranges `(start, end)` inclusive that belong to `#[cfg(test)]`
/// modules or `#[test]` functions. Reconstructed from the token stream
/// by brace matching; `#[cfg(not(test))]` and friends are ignored.
fn test_line_spans(tokens: &[Token], whole_file_is_test: bool) -> Vec<(u32, u32)> {
    if whole_file_is_test {
        return Vec::new(); // caller short-circuits on is_test_file
    }
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].text == "#" && code.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            // Collect attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr_tokens: Vec<&str> = Vec::new();
            while j < code.len() && depth > 0 {
                match code[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    s => attr_tokens.push(s),
                }
                j += 1;
            }
            let is_test_attr = attr_tokens.contains(&"test")
                && !attr_tokens.contains(&"not")
                && (attr_tokens.first() == Some(&"cfg") || attr_tokens == ["test"]);
            if is_test_attr {
                let start_line = code[i].line;
                // Skip any further attributes, then find the item body.
                let mut k = j;
                while k < code.len()
                    && code[k].text == "#"
                    && code.get(k + 1).map(|t| t.text.as_str()) == Some("[")
                {
                    let mut d = 1usize;
                    k += 2;
                    while k < code.len() && d > 0 {
                        match code[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // Find `{` opening the body or `;` ending a braceless item.
                let mut end_line = start_line;
                while k < code.len() {
                    match code[k].text.as_str() {
                        ";" => {
                            end_line = code[k].line;
                            break;
                        }
                        "{" => {
                            let mut d = 1usize;
                            k += 1;
                            while k < code.len() && d > 0 {
                                match code[k].text.as_str() {
                                    "{" => d += 1,
                                    "}" => d -= 1,
                                    _ => {}
                                }
                                if d > 0 {
                                    k += 1;
                                }
                            }
                            end_line = code.get(k).map(|t| t.line).unwrap_or(start_line);
                            break;
                        }
                        _ => k += 1,
                    }
                }
                spans.push((start_line, end_line));
                i = j;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}
