//! Rule engine: walks a lexed token stream — and, for the structural
//! rules, the scope tree built over it ([`crate::scope`]) — and emits
//! findings.
//!
//! Twelve rules enforce invariants the compiler cannot see (rule ids
//! are the strings used in `// lint: allow(<rule>)` suppressions):
//!
//! | id                | invariant                                               |
//! |-------------------|---------------------------------------------------------|
//! | `safety`          | every `unsafe` carries an adjacent `// SAFETY:` comment  |
//! | `unwrap`          | no `.unwrap()`/`.expect()` in library non-test code      |
//! | `float_cmp`       | no `==`/`!=` against float literals outside tests        |
//! | `hash_iter`       | no `HashMap`/`HashSet` in numeric crates                 |
//! | `print`           | no `println!`/`eprintln!` in library crates              |
//! | `narrow_cast`     | no narrowing `as` casts inside index expressions         |
//! | `arch_intrinsics` | `std::arch`/`core::arch` only inside `crates/simd`       |
//! | `atomic_ordering` | non-`SeqCst` `Ordering::*` carries a `// ord:` rationale |
//! | `unsafe_wrapper`  | SIMD `unsafe` blocks sit behind corner-checked safe fns  |
//! | `nested_par`      | no rayon calls nested under an already-parallel region   |
//! | `lock_hold`       | no blocking call while a lock guard is live (`serve`)    |
//! | `schema_tag`      | `mbrpa.*/N` literals only in the `mbrpa-schema` registry |
//! | `unused_allow`    | (meta) a suppression that matched no finding             |
//!
//! Suppressions: `// lint: allow(<rule>) — <justification>` on the same
//! line as the violation or on the line directly above it. Every
//! suppression must actually suppress something, otherwise the engine
//! reports `unused_allow` — stale justifications are themselves a lie
//! about the code and are treated as findings.
//!
//! Each file is lexed and structurally parsed exactly once
//! ([`analyze`]); every rule shares that [`Analysis`]. [`check_file`]
//! is the analyze-then-run convenience used by tests and one-shot
//! callers.

use crate::lexer::{lex, TokKind, Token};
use crate::scope::{Owner, ScopeKind, ScopeTree};
use std::time::{Duration, Instant};

/// One rule violation (or unused suppression) at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule id (`safety`, `unwrap`, …, `unused_allow`).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// All rule ids, in reporting order. `unused_allow` is the meta-rule
/// for suppressions that matched nothing.
pub const RULE_IDS: [&str; 13] = [
    "safety",
    "unwrap",
    "float_cmp",
    "hash_iter",
    "print",
    "narrow_cast",
    "arch_intrinsics",
    "atomic_ordering",
    "unsafe_wrapper",
    "nested_par",
    "lock_hold",
    "schema_tag",
    "unused_allow",
];

/// The one crate allowed to touch `std::arch`/`core::arch` directly
/// (rule `arch_intrinsics`): every intrinsic lives behind its safe,
/// dispatch-checked API so bit-identity across paths stays auditable
/// in a single place. Rule `unsafe_wrapper` polices the wrappers
/// themselves in the same crate.
pub const ARCH_CRATE: &str = "simd";

/// The crate holding the shared registry of `mbrpa.*/N` schema tags
/// (rule `schema_tag`): the only non-test code allowed to spell one.
pub const SCHEMA_CRATE: &str = "schema";

/// The crate running jobs on a shared executor pool, where holding a
/// mutex across a blocking call stalls every worker (rule `lock_hold`).
pub const SERVE_CRATE: &str = "serve";

/// Crates whose results are numeric and must not depend on hash-map
/// iteration order (rule `hash_iter`).
pub const NUMERIC_CRATES: [&str; 6] = ["simd", "linalg", "grid", "solver", "core", "dft"];

/// Crates held to library discipline (rules `unwrap` and `print`):
/// errors propagate, output goes through `mbrpa-obs`. The `bench`
/// crate is deliberately absent — its panics and stdout tables are its
/// CLI interface, not incidental behaviour.
pub const LIBRARY_CRATES: [&str; 12] = [
    "simd", "linalg", "grid", "solver", "core", "dft", "ckpt", "obs", "lint", "serve", "schema",
    "mbrpa",
];

/// How a file participates in the rule set, derived from its
/// workspace-relative path by [`classify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Short crate name (`linalg`, `bench`, `mbrpa` for the root crate).
    pub crate_name: String,
    /// Library-crate source (not a test, bench, example, or bin target).
    pub is_library: bool,
    /// Source inside a crate listed in [`NUMERIC_CRATES`].
    pub is_numeric: bool,
    /// Whole file is test/bench/example code.
    pub is_test_file: bool,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = if parts.len() >= 2 && parts[0] == "crates" {
        parts[1].to_string()
    } else {
        "mbrpa".to_string()
    };
    let is_test_file = parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"));
    let in_src = parts.contains(&"src");
    let is_bin_target = parts.contains(&"bin") || rel_path.ends_with("src/main.rs");
    let is_library =
        LIBRARY_CRATES.contains(&crate_name.as_str()) && in_src && !is_bin_target && !is_test_file;
    let is_numeric = NUMERIC_CRATES.contains(&crate_name.as_str()) && in_src && !is_test_file;
    FileClass {
        crate_name,
        is_library,
        is_numeric,
        is_test_file,
    }
}

/// An inline suppression comment and whether any finding consumed it.
#[derive(Clone)]
struct Suppression {
    line: u32,
    rule: String,
    /// Lines this suppression covers: its own line and the next line
    /// containing code (so it can sit above the violating statement).
    covered: [u32; 2],
    used: bool,
}

/// Everything derived from one file exactly once and shared by every
/// rule: the token stream, the comment-free code view, the scope tree,
/// test spans, suppression comments, and marker-comment line sets.
/// Build with [`analyze`], run the rules with [`run_rules`].
pub struct Analysis {
    /// Workspace-relative path (forward slashes) the file was read as.
    pub rel_path: String,
    /// Path-derived rule participation.
    pub class: FileClass,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens, in order.
    pub code_idx: Vec<usize>,
    /// Scope tree over the code view (indices are code-view positions).
    pub tree: ScopeTree,
    /// Inclusive line spans of `#[cfg(test)]` / `#[test]` items.
    pub test_lines: Vec<(u32, u32)>,
    suppressions: Vec<Suppression>,
    safety_lines: Vec<u32>,
    ord_lines: Vec<u32>,
    comment_only: Vec<u32>,
    /// Wall time spent lexing this file.
    pub lex_time: Duration,
    /// Wall time spent building the scope tree and comment indices.
    pub structure_time: Duration,
}

/// Lex and structurally parse one file. `rel_path` is
/// workspace-relative with `/` separators; `src` is the file contents.
pub fn analyze(rel_path: &str, src: &str) -> Analysis {
    let class = classify(rel_path);
    let t0 = Instant::now();
    let tokens = lex(src);
    let lex_time = t0.elapsed();

    let t1 = Instant::now();
    let code_idx: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let code: Vec<&Token> = code_idx.iter().map(|&i| &tokens[i]).collect();
    let tree = ScopeTree::build(&code);
    let test_lines = test_line_spans(&tokens, class.is_test_file);
    let suppressions = collect_suppressions(&tokens);
    let safety_lines = marker_comment_lines(&tokens, "SAFETY:", false);
    let ord_lines = marker_comment_lines(&tokens, "ord:", true);
    let comment_only = comment_only_lines(&tokens);
    let structure_time = t1.elapsed();

    Analysis {
        rel_path: rel_path.to_string(),
        class,
        tokens,
        code_idx,
        tree,
        test_lines,
        suppressions,
        safety_lines,
        ord_lines,
        comment_only,
        lex_time,
        structure_time,
    }
}

/// Scan one file: analyze then run every rule. Convenience wrapper for
/// tests and one-shot callers; `scan_workspace` keeps the [`Analysis`]
/// to aggregate timing.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Finding> {
    run_rules(&analyze(rel_path, src))
}

/// Run every rule over a prebuilt [`Analysis`] and return the findings.
pub fn run_rules(a: &Analysis) -> Vec<Finding> {
    let class = &a.class;
    let code: Vec<&Token> = a.code_idx.iter().map(|&i| &a.tokens[i]).collect();
    let mut suppressions = a.suppressions.clone();

    let mut findings = Vec::new();
    let mut emit = |line: u32, rule: &'static str, message: String| {
        for s in suppressions.iter_mut() {
            if s.rule == rule && s.covered.contains(&line) {
                s.used = true;
                return;
            }
        }
        findings.push(Finding {
            file: a.rel_path.to_string(),
            line,
            rule,
            message,
        });
    };

    let is_test_line =
        |line: u32| class.is_test_file || a.test_lines.iter().any(|&(s, e)| line >= s && line <= e);

    // Bracket depth for `narrow_cast`: depth of `[` … `]` nesting,
    // excluding attribute brackets (`#[…]` / `#![…]`).
    let mut index_depth: usize = 0;
    let mut attr_depth_at: Option<usize> = None;

    for (i, tok) in code.iter().enumerate() {
        let prev = i.checked_sub(1).and_then(|j| code.get(j));
        let next = code.get(i + 1);
        let next2 = code.get(i + 2);

        match (tok.kind, tok.text.as_str()) {
            (TokKind::Punct, "[") => {
                // `#[…]` and `#![…]` open attribute brackets, not indexing.
                let prev2 = i.checked_sub(2).and_then(|j| code.get(j));
                let after_hash = matches!(prev, Some(p) if p.text == "#")
                    || (matches!(prev, Some(p) if p.text == "!")
                        && matches!(prev2, Some(p2) if p2.text == "#"));
                index_depth += 1;
                if after_hash && attr_depth_at.is_none() {
                    attr_depth_at = Some(index_depth);
                }
            }
            (TokKind::Punct, "]") => {
                if attr_depth_at == Some(index_depth) {
                    attr_depth_at = None;
                }
                index_depth = index_depth.saturating_sub(1);
            }
            // R1: unsafe without adjacent SAFETY comment. Applies
            // everywhere, tests included — soundness arguments are not
            // optional in test code.
            (TokKind::Ident, "unsafe") => {
                let documented = a.safety_lines.contains(&tok.line)
                    || covered_by_marker_above(tok.line, &a.safety_lines, &a.comment_only);
                if !documented {
                    emit(
                        tok.line,
                        "safety",
                        "`unsafe` without an adjacent `// SAFETY:` comment; state the \
                         soundness argument on the line above"
                            .to_string(),
                    );
                }
            }
            // R2: unwrap/expect in library non-test code.
            (TokKind::Ident, "unwrap" | "expect")
                if class.is_library
                    && !is_test_line(tok.line)
                    && matches!(prev, Some(p) if p.text == ".")
                    && matches!(next, Some(n) if n.text == "(") =>
            {
                emit(
                    tok.line,
                    "unwrap",
                    format!(
                        "`.{}()` in library code: propagate the error, or justify with \
                         `// lint: allow(unwrap) — <why it cannot fail>`",
                        tok.text
                    ),
                );
            }
            // R3: float equality outside tests.
            (TokKind::Punct, "==" | "!=") if !is_test_line(tok.line) => {
                let float_side = matches!(prev, Some(p) if p.kind == TokKind::Float)
                    || matches!(next, Some(n) if n.kind == TokKind::Float)
                    || is_float_path(next, next2);
                if float_side {
                    emit(
                        tok.line,
                        "float_cmp",
                        "float equality: use a tolerance helper (`approx_eq`) or an \
                         explicit exact-zero guard (`exactly_zero`)"
                            .to_string(),
                    );
                }
            }
            // R4: hash collections in numeric crates.
            (TokKind::Ident, "HashMap" | "HashSet")
                if class.is_numeric && !is_test_line(tok.line) =>
            {
                emit(
                    tok.line,
                    "hash_iter",
                    format!(
                        "`{}` in a numeric crate: iteration order can leak into \
                         results; use `BTreeMap`/`BTreeSet` or justify with \
                         `// lint: allow(hash_iter) — <why order never escapes>`",
                        tok.text
                    ),
                );
            }
            // R5: direct stdout/stderr in library crates.
            (TokKind::Ident, "println" | "eprintln" | "print" | "eprint")
                if class.is_library
                    && !is_test_line(tok.line)
                    && matches!(next, Some(n) if n.text == "!")
                    // `writeln!(f, …)`-style callees and method names
                    // (`w.print!`…) don't exist; but guard against
                    // `obs::print` paths by requiring no leading `::`.
                    && !matches!(prev, Some(p) if p.text == "::" || p.text == ".") =>
            {
                emit(
                    tok.line,
                    "print",
                    format!(
                        "`{}!` in a library crate: route diagnostics through \
                         `mbrpa-obs` or return them to the caller",
                        tok.text
                    ),
                );
            }
            // R6: narrowing `as` casts inside index expressions.
            (TokKind::Ident, "as")
                if index_depth > 0
                    && attr_depth_at.is_none()
                    && !is_test_line(tok.line)
                    && matches!(
                        next,
                        Some(n) if matches!(
                            n.text.as_str(),
                            "u8" | "u16" | "u32" | "i8" | "i16" | "i32"
                        )
                    ) =>
            {
                emit(
                    tok.line,
                    "narrow_cast",
                    format!(
                        "narrowing `as {}` inside an index expression can silently \
                         truncate; index with `usize` and convert with `try_from`",
                        next.map(|n| n.text.as_str()).unwrap_or("_")
                    ),
                );
            }
            // R7: raw CPU intrinsics outside the dedicated SIMD crate.
            // `crates/simd` is the single audited home for `std::arch` /
            // `core::arch`: its scalar oracle defines the canonical
            // result bit-for-bit, so intrinsics sprinkled anywhere else
            // would silently fork the numerics.
            (TokKind::Ident, "std" | "core")
                if class.crate_name != ARCH_CRATE
                    && matches!(next, Some(n) if n.text == "::")
                    && matches!(next2, Some(n2) if n2.text == "arch") =>
            {
                emit(
                    tok.line,
                    "arch_intrinsics",
                    format!(
                        "`{}::arch` outside `crates/simd`: route through the \
                         `mbrpa-simd` dispatch API so every intrinsic keeps a \
                         bit-identical scalar twin",
                        tok.text
                    ),
                );
            }
            _ => {}
        }
    }

    // Structural rules (R8–R12): need the scope tree, not just the
    // token window. See DESIGN.md §14 for the per-rule semantics.
    rule_atomic_ordering(a, &code, &mut emit);
    rule_unsafe_wrapper(a, &code, &is_test_line, &mut emit);
    rule_nested_par(a, &code, &mut emit);
    rule_lock_hold(a, &code, &is_test_line, &mut emit);
    rule_schema_tag(a, &code, &is_test_line, &mut emit);

    for s in &suppressions {
        if !s.used {
            findings.push(Finding {
                file: a.rel_path.to_string(),
                line: s.line,
                rule: "unused_allow",
                message: format!(
                    "suppression `lint: allow({})` matched no finding; remove it",
                    s.rule
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------------
// R8: atomic_ordering
// ---------------------------------------------------------------------

/// Non-`SeqCst` memory orderings that must carry a `// ord:` rationale.
/// `SeqCst` is exempt: it is the conservative default, so demanding a
/// justification would punish the safe choice. `cmp::Ordering` variants
/// (`Less`/`Equal`/`Greater`) never collide with this list.
const RELAXED_ORDERINGS: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

/// Every weakened `Ordering::*` use must carry an adjacent `// ord:`
/// justification, mirroring the SAFETY-comment discipline: the comment
/// names the pairing (which store a load observes, or why no pairing is
/// needed) so an auditor can check the protocol without re-deriving it.
/// Applies everywhere, tests included — a racy test is still a race.
fn rule_atomic_ordering(
    a: &Analysis,
    code: &[&Token],
    emit: &mut dyn FnMut(u32, &'static str, String),
) {
    let mut seen_lines: Vec<u32> = Vec::new();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokKind::Ident || tok.text != "Ordering" {
            continue;
        }
        if !matches!(code.get(i + 1), Some(n) if n.text == "::") {
            continue;
        }
        let Some(variant) = code
            .get(i + 2)
            .filter(|v| RELAXED_ORDERINGS.contains(&v.text.as_str()))
        else {
            continue;
        };
        // One finding (and one justification) per line: paired
        // `compare_exchange(…, Relaxed, Relaxed)` orderings share it.
        if seen_lines.contains(&tok.line) {
            continue;
        }
        seen_lines.push(tok.line);
        let justified = a.ord_lines.contains(&tok.line)
            || covered_by_marker_above(tok.line, &a.ord_lines, &a.comment_only);
        if !justified {
            emit(
                tok.line,
                "atomic_ordering",
                format!(
                    "`Ordering::{}` without an adjacent `// ord:` comment; state \
                     which access it pairs with (or why none is needed) on the \
                     same line or the line above",
                    variant.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// R9: unsafe_wrapper
// ---------------------------------------------------------------------

/// Release-mode-effective precondition checks. `debug_assert!` is
/// deliberately absent: it compiles out of release builds, so it cannot
/// carry a soundness obligation.
const CHECK_MACROS: [&str; 4] = ["assert", "assert_eq", "assert_ne", "panic"];

/// In `crates/simd`, every `unsafe` block must sit inside a *safe*
/// function that proves the preconditions first (the two-corner-check
/// pattern of DESIGN.md §13), and `unsafe fn` entry points must not be
/// fully public — callers go through the checked safe wrappers.
/// `unsafe fn` bodies and `macro_rules!` bodies are exempt (their
/// obligations transfer to callers / expansion sites), and the `safety`
/// rule still demands a SAFETY comment everywhere.
fn rule_unsafe_wrapper(
    a: &Analysis,
    code: &[&Token],
    is_test_line: &dyn Fn(u32) -> bool,
    emit: &mut dyn FnMut(u32, &'static str, String),
) {
    if a.class.crate_name != ARCH_CRATE {
        return;
    }
    // (a) Fully-public unsafe fn: the crate's API surface must be the
    // checked safe wrappers, not the raw kernels.
    for s in &a.tree.scopes {
        if let Owner::Fn {
            name,
            line,
            is_unsafe: true,
            is_pub: true,
        } = &s.owner
        {
            if !is_test_line(*line) {
                emit(
                    *line,
                    "unsafe_wrapper",
                    format!(
                        "fully-public `unsafe fn {name}` in the SIMD crate: export a \
                         safe wrapper that proves the bounds/alignment preconditions \
                         and keep the unsafe entry point `pub(crate)`"
                    ),
                );
            }
        }
    }
    // (b) `unsafe` blocks inside safe functions must be preceded by a
    // release-effective check in the same function body.
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokKind::Ident || tok.text != "unsafe" {
            continue;
        }
        if !matches!(code.get(i + 1), Some(n) if n.text == "{") {
            continue;
        }
        if is_test_line(tok.line) {
            continue;
        }
        let Some(sid) = a.tree.scope_of[i] else {
            continue; // top-level `static … = unsafe { … }`: no wrapper to check
        };
        if a.tree.inside_macro_rules(sid) {
            continue;
        }
        let Some(fid) = a.tree.enclosing_fn(sid) else {
            emit(
                tok.line,
                "unsafe_wrapper",
                "`unsafe` block outside any function body in the SIMD crate: move \
                 it behind a bounds-checked safe wrapper"
                    .to_string(),
            );
            continue;
        };
        if matches!(
            a.tree.scopes[fid].owner,
            Owner::Fn {
                is_unsafe: true,
                ..
            }
        ) {
            continue; // obligations transfer to the (checked) caller
        }
        let fn_open = a.tree.scopes[fid].open;
        let checked = (fn_open + 1..i).any(|j| {
            code[j].kind == TokKind::Ident
                && CHECK_MACROS.contains(&code[j].text.as_str())
                && matches!(code.get(j + 1), Some(n) if n.text == "!")
        });
        if !checked {
            emit(
                tok.line,
                "unsafe_wrapper",
                "`unsafe` block in a safe SIMD function with no preceding \
                 `assert!`-family check: prove the bounds/alignment preconditions \
                 first (two-corner-check pattern, DESIGN.md §13)"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// R10: nested_par
// ---------------------------------------------------------------------

/// Rayon entry points that spawn work on the shared pool.
const PAR_METHODS: [&str; 9] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
    "par_extend",
    "par_sort",
    "par_sort_unstable",
];

/// True if code index `i` is a rayon parallel call: `.par_iter()`-style
/// method or `rayon::scope(`/`rayon::join(`.
fn is_par_call(code: &[&Token], i: usize) -> bool {
    let t = code[i];
    if t.kind != TokKind::Ident {
        return false;
    }
    let prev = |k: usize| i.checked_sub(k).map(|j| code[j].text.as_str());
    let next_is_paren = matches!(code.get(i + 1), Some(n) if n.text == "(");
    if PAR_METHODS.contains(&t.text.as_str()) {
        return prev(1) == Some(".") && next_is_paren;
    }
    (t.text == "scope" || t.text == "join")
        && prev(1) == Some("::")
        && prev(2) == Some("rayon")
        && next_is_paren
}

/// True if code index `i` is a call of the `outer_scope` RAII guard
/// (`crates/linalg/src/par.rs`) — excluding its own definition.
fn is_outer_guard(code: &[&Token], i: usize) -> bool {
    let t = code[i];
    t.kind == TokKind::Ident
        && t.text == "outer_scope"
        && matches!(code.get(i + 1), Some(n) if n.text == "(")
        && i.checked_sub(1).map(|j| code[j].text.as_str()) != Some("fn")
}

/// Rayon calls syntactically nested under an already-parallel region —
/// the exact bug class the PR-3 `outer_scope` accounting exists to
/// prevent. Two triggers, walking the scope chain up to the enclosing
/// function:
///
/// * a live `outer_scope(…)` guard bound earlier in a strict-ancestor
///   scope (RAII: it stays live to the end of that scope), or
/// * the call sits inside an argument closure of another rayon call
///   (same statement, a brace crossed on the way up — so the sanctioned
///   `a.par_iter().zip(b.into_par_iter())` stays clean, since zip's
///   argument crosses only parens).
///
/// The innermost scope of the call itself is never scanned: binding the
/// guard and immediately going parallel *in the same scope* is the
/// sanctioned "this is the outer region" idiom (`core::chi0`).
fn rule_nested_par(a: &Analysis, code: &[&Token], emit: &mut dyn FnMut(u32, &'static str, String)) {
    'calls: for i in 0..code.len() {
        if !is_par_call(code, i) {
            continue;
        }
        let mut cur = a.tree.scope_of[i];
        let mut crossed_brace = false;
        while let Some(cid) = cur {
            let sc = &a.tree.scopes[cid];
            if sc.owner != Owner::Other {
                break; // reached the enclosing fn (or macro_rules) body
            }
            let Some(pid) = sc.parent else { break };
            let parent_open = a.tree.scopes[pid].open;
            // (a) live guard earlier in the ancestor region.
            if crossed_brace || sc.kind == ScopeKind::Brace {
                for j in (parent_open + 1)..sc.open {
                    if a.tree.scope_of[j] == Some(pid) && is_outer_guard(code, j) {
                        emit(
                            code[i].line,
                            "nested_par",
                            format!(
                                "rayon `{}` under a live `outer_scope` guard (bound at \
                                 line {}): this region is already the outer parallel \
                                 level; size inner work with `inner_slots()` or justify \
                                 with `// lint: allow(nested_par) — <why>`",
                                code[i].text, code[j].line
                            ),
                        );
                        continue 'calls;
                    }
                }
            }
            // (b) inside an argument closure of another rayon call:
            // scan back through the same statement only.
            if crossed_brace && sc.kind == ScopeKind::Paren {
                let mut j = sc.open;
                while j > parent_open + 1 {
                    j -= 1;
                    if a.tree.scope_of[j] != Some(pid) {
                        continue;
                    }
                    let txt = code[j].text.as_str();
                    if matches!(txt, ";" | "=>" | "{" | "}") {
                        break; // statement boundary
                    }
                    if is_par_call(code, j) {
                        emit(
                            code[i].line,
                            "nested_par",
                            format!(
                                "rayon `{}` nested inside the `{}` call at line {}: \
                                 nested pool use oversubscribes the shared executors; \
                                 restructure or justify with \
                                 `// lint: allow(nested_par) — <why>`",
                                code[i].text, code[j].text, code[j].line
                            ),
                        );
                        continue 'calls;
                    }
                }
            }
            crossed_brace |= sc.kind == ScopeKind::Brace;
            cur = Some(pid);
        }
    }
}

// ---------------------------------------------------------------------
// R11: lock_hold
// ---------------------------------------------------------------------

/// Calls that can block the thread regardless of argument shape.
const BLOCKING_CALLS: [&str; 10] = [
    "sleep",
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_timeout",
    "connect",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "write_all",
];

/// Calls that only count as blocking with an empty argument list — so
/// `channel.recv()` and `handle.join()` match but `PathBuf::join(p)`
/// does not.
const BLOCKING_CALLS_NO_ARGS: [&str; 3] = ["recv", "join", "accept"];

/// True if code index `i` is a potentially-blocking call site.
fn is_blocking_call(code: &[&Token], i: usize) -> bool {
    let t = code[i];
    if t.kind != TokKind::Ident {
        return false;
    }
    let called_prev = i
        .checked_sub(1)
        .map(|j| matches!(code[j].text.as_str(), "." | "::"))
        .unwrap_or(false);
    if !called_prev || !matches!(code.get(i + 1), Some(n) if n.text == "(") {
        return false;
    }
    if BLOCKING_CALLS.contains(&t.text.as_str()) {
        return true;
    }
    BLOCKING_CALLS_NO_ARGS.contains(&t.text.as_str())
        && matches!(code.get(i + 2), Some(n) if n.text == ")")
}

/// True if code index `i` acquires a lock guard: the `lock(&mutex)`
/// poisoning-tolerant helper (`crates/serve`), a `.lock()` method, or
/// an argument-free `.read()`/`.write()` (RwLock).
fn is_lock_acquire(code: &[&Token], i: usize) -> bool {
    let t = code[i];
    if t.kind != TokKind::Ident || !matches!(code.get(i + 1), Some(n) if n.text == "(") {
        return false;
    }
    let prev = i.checked_sub(1).map(|j| code[j].text.as_str());
    match t.text.as_str() {
        "lock" => prev != Some("fn"), // exclude the helper's definition
        "read" | "write" => {
            prev == Some(".") && matches!(code.get(i + 2), Some(n) if n.text == ")")
        }
        _ => false,
    }
}

/// A lock guard bound in a scope that also performs a blocking
/// channel/IO call stalls every worker sharing that mutex — on the
/// serve executor pool that is a deadlock-adjacent outage, not a perf
/// bug. Flags guards that are *retained* (`let g = lock(…);`,
/// `let Ok(g) = rx.lock() else …;`) when a blocking call follows in the
/// same scope, and scrutinee temporaries (`match lock(…).x() { … }`,
/// `for x in lock(…).iter() { … }`, `while let`/`if let`) whose guard
/// lives across the body. Temporaries consumed in one statement
/// (`lock(&q).claim()`) are fine and not flagged.
fn rule_lock_hold(
    a: &Analysis,
    code: &[&Token],
    is_test_line: &dyn Fn(u32) -> bool,
    emit: &mut dyn FnMut(u32, &'static str, String),
) {
    if a.class.crate_name != SERVE_CRATE || a.class.is_test_file {
        return;
    }
    for (sid, s) in a.tree.scopes.iter().enumerate() {
        if s.kind != ScopeKind::Brace {
            continue;
        }
        let direct: Vec<usize> = (s.open + 1..s.close.min(a.tree.scope_of.len()))
            .filter(|&j| a.tree.scope_of[j] == Some(sid))
            .collect();
        let mut d = 0;
        while d < direct.len() {
            let i = direct[d];
            let kw = code[i].text.as_str();
            let is_kw_ident = code[i].kind == TokKind::Ident;
            // `match`/`for` headers always extend scrutinee temporaries
            // across the body; `while`/`if` only in their `let` form.
            let header_kw = is_kw_ident
                && (matches!(kw, "match" | "for")
                    || (matches!(kw, "while" | "if")
                        && matches!(direct.get(d + 1), Some(&n) if code[n].text == "let")));
            if header_kw {
                d = check_header_guard(a, code, &direct, d, sid, is_test_line, emit);
                continue;
            }
            if is_kw_ident && kw == "let" {
                d = check_let_guard(a, code, &direct, d, s.close, is_test_line, emit);
                continue;
            }
            d += 1;
        }
    }
}

/// Handle `match`/`for`/`while let`/`if let` at `direct[d]`: if the
/// header acquires a guard, the scrutinee temporary lives across the
/// body block — scan it for blocking calls. Returns the next `direct`
/// position to resume from.
fn check_header_guard(
    a: &Analysis,
    code: &[&Token],
    direct: &[usize],
    d: usize,
    _sid: usize,
    is_test_line: &dyn Fn(u32) -> bool,
    emit: &mut dyn FnMut(u32, &'static str, String),
) -> usize {
    let mut acquire: Option<usize> = None;
    let mut q = d + 1;
    while q < direct.len() {
        let j = direct[q];
        if code[j].text == "{" {
            // Body block found.
            if let (Some(acq), Some(body)) = (acquire, a.tree.opened_at(j)) {
                if !is_test_line(code[acq].line) {
                    scan_blocking_range(
                        a,
                        code,
                        a.tree.scopes[body].open + 1,
                        a.tree.scopes[body].close,
                        code[acq].line,
                        emit,
                    );
                }
            }
            return q + 1;
        }
        if matches!(code[j].text.as_str(), ";" | "=>") {
            return q + 1; // malformed/braceless — bail out of the header
        }
        if acquire.is_none() && is_lock_acquire(code, j) {
            acquire = Some(j);
        }
        q += 1;
    }
    direct.len()
}

/// Handle a `let` statement at `direct[d]`: if it binds a lock guard
/// that is retained (not consumed by a further method chain), the guard
/// lives to the end of the enclosing scope — scan the rest of the scope
/// for blocking calls. Returns the next `direct` position.
fn check_let_guard(
    a: &Analysis,
    code: &[&Token],
    direct: &[usize],
    d: usize,
    scope_close: usize,
    is_test_line: &dyn Fn(u32) -> bool,
    emit: &mut dyn FnMut(u32, &'static str, String),
) -> usize {
    // Find the statement's end (`;` at this level) and the acquisition.
    let mut acquire: Option<usize> = None;
    let mut retained = false;
    let mut q = d + 1;
    while q < direct.len() {
        let j = direct[q];
        let txt = code[j].text.as_str();
        if txt == ";" {
            break;
        }
        if txt == "{" {
            // `let x = if c { … }` / let-else block: skip over it by
            // resuming after the block (its contents are not direct).
            q += 1;
            continue;
        }
        if acquire.is_none() && is_lock_acquire(code, j) {
            acquire = Some(j);
            // Retention: after the call's `)`, only `.unwrap()` /
            // `.expect(…)` / `.unwrap_or_else(…)` chains keep the guard;
            // any other continuation consumes it as a temporary.
            let mut r = q + 2; // skip ident and `(` (the `)` is not direct)
            loop {
                let dot = direct.get(r).map(|&x| code[x].text.as_str());
                let meth = direct.get(r + 1).map(|&x| code[x].text.as_str());
                if dot == Some(".") && matches!(meth, Some("unwrap" | "expect" | "unwrap_or_else"))
                {
                    r += 3; // `.`, method ident, `(` — `)` is not direct
                    continue;
                }
                retained = !matches!(dot, Some("."));
                break;
            }
        }
        q += 1;
    }
    let stmt_end = direct.get(q).copied().unwrap_or(scope_close);
    if let Some(acq) = acquire {
        if retained && !is_test_line(code[acq].line) {
            scan_blocking_range(a, code, stmt_end + 1, scope_close, code[acq].line, emit);
        }
    }
    q + 1
}

/// Emit at most one `lock_hold` finding for the first blocking call in
/// `[start, end)` (code-view indices, nested scopes included).
fn scan_blocking_range(
    _a: &Analysis,
    code: &[&Token],
    start: usize,
    end: usize,
    guard_line: u32,
    emit: &mut dyn FnMut(u32, &'static str, String),
) {
    for k in start..end.min(code.len()) {
        if is_blocking_call(code, k) {
            emit(
                code[k].line,
                "lock_hold",
                format!(
                    "`.{}()` can block while the lock guard acquired at line {} is \
                     still live; drop the guard first (narrow the scope) or justify \
                     with `// lint: allow(lock_hold) — <why>`",
                    code[k].text, guard_line
                ),
            );
            return;
        }
    }
}

// ---------------------------------------------------------------------
// R12: schema_tag
// ---------------------------------------------------------------------

/// `mbrpa.*/N` schema tags may only be spelled inside the
/// `mbrpa-schema` registry crate; everyone else references the
/// constants, so a writer and its validator cannot drift apart. Test
/// code is exempt — suites deliberately forge wrong-schema documents.
fn rule_schema_tag(
    a: &Analysis,
    code: &[&Token],
    is_test_line: &dyn Fn(u32) -> bool,
    emit: &mut dyn FnMut(u32, &'static str, String),
) {
    if a.class.crate_name == SCHEMA_CRATE {
        return;
    }
    for tok in code {
        if tok.kind != TokKind::Str || is_test_line(tok.line) {
            continue;
        }
        if contains_schema_tag(&tok.text) {
            emit(
                tok.line,
                "schema_tag",
                "schema tag literal outside the `mbrpa-schema` registry: reference \
                 the `mbrpa_schema::*` constant so writers and validators cannot \
                 drift"
                    .to_string(),
            );
        }
    }
}

/// True if `s` contains a `mbrpa.<name>/<digits>` schema tag, where
/// `<name>` is lowercase `[a-z0-9-]+`.
fn contains_schema_tag(s: &str) -> bool {
    for (pos, _) in s.match_indices("mbrpa.") {
        let rest = &s[pos + "mbrpa.".len()..];
        let name_len = rest
            .bytes()
            .take_while(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || *b == b'-')
            .count();
        if name_len == 0 {
            continue;
        }
        let mut tail = rest[name_len..].bytes();
        if tail.next() == Some(b'/') && tail.next().is_some_and(|b| b.is_ascii_digit()) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

/// True if the tokens after `==`/`!=` spell a float-typed constant path
/// like `f64::NAN` or `f32::EPSILON`.
fn is_float_path(next: Option<&&Token>, next2: Option<&&Token>) -> bool {
    matches!(next, Some(n) if n.text == "f64" || n.text == "f32")
        && matches!(next2, Some(n2) if n2.text == "::")
}

/// Lines whose comments contain `marker`. With `boundary`, the marker
/// must be preceded by whitespace, `/`, or `(` — so `ord:` does not
/// match inside words like `record:`.
fn marker_comment_lines(tokens: &[Token], marker: &str, boundary: bool) -> Vec<u32> {
    tokens
        .iter()
        .filter(|t| {
            if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                return false;
            }
            t.text.match_indices(marker).any(|(idx, _)| {
                if !boundary {
                    return true;
                }
                idx == 0
                    || matches!(
                        t.text.as_bytes()[idx - 1],
                        b' ' | b'\t' | b'/' | b'(' | b'*'
                    )
            })
        })
        .map(|t| t.line)
        .collect()
}

/// Lines containing a comment but no code token (candidates for the
/// comment run scanned upward from an `unsafe` or an `Ordering::*`).
fn comment_only_lines(tokens: &[Token]) -> Vec<u32> {
    let mut comment = std::collections::BTreeSet::new();
    let mut code = std::collections::BTreeSet::new();
    for t in tokens {
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => {
                comment.insert(t.line);
            }
            _ => {
                code.insert(t.line);
            }
        }
    }
    comment.difference(&code).copied().collect()
}

/// Scan upward from the line above `line` through a contiguous run of
/// comment-only lines; true if any of them carries the marker.
fn covered_by_marker_above(line: u32, marker_lines: &[u32], comment_only: &[u32]) -> bool {
    let mut l = line.saturating_sub(1);
    while l > 0 && comment_only.contains(&l) {
        if marker_lines.contains(&l) {
            return true;
        }
        l -= 1;
    }
    false
}

/// Collect `// lint: allow(<rule>)` suppressions with their coverage.
fn collect_suppressions(tokens: &[Token]) -> Vec<Suppression> {
    let code_lines: Vec<u32> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|t| t.line)
        .collect();
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokKind::LineComment {
            continue;
        }
        // Doc comments only *talk about* suppressions; `// lint: allow`
        // must be a plain comment to take effect.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let Some(idx) = t.text.find("lint: allow(") else {
            continue;
        };
        let rest = &t.text[idx + "lint: allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        let rule = rest[..end].trim().to_string();
        let next_code_line = code_lines
            .iter()
            .copied()
            .filter(|&l| l > t.line)
            .min()
            .unwrap_or(t.line);
        out.push(Suppression {
            line: t.line,
            rule,
            covered: [t.line, next_code_line],
            used: false,
        });
    }
    out
}

/// Line ranges `(start, end)` inclusive that belong to `#[cfg(test)]`
/// modules or `#[test]` functions. Reconstructed from the token stream
/// by brace matching; `#[cfg(not(test))]` and friends are ignored.
fn test_line_spans(tokens: &[Token], whole_file_is_test: bool) -> Vec<(u32, u32)> {
    if whole_file_is_test {
        return Vec::new(); // caller short-circuits on is_test_file
    }
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].text == "#" && code.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            // Collect attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr_tokens: Vec<&str> = Vec::new();
            while j < code.len() && depth > 0 {
                match code[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    s => attr_tokens.push(s),
                }
                j += 1;
            }
            let is_test_attr = attr_tokens.contains(&"test")
                && !attr_tokens.contains(&"not")
                && (attr_tokens.first() == Some(&"cfg") || attr_tokens == ["test"]);
            if is_test_attr {
                let start_line = code[i].line;
                // Skip any further attributes, then find the item body.
                let mut k = j;
                while k < code.len()
                    && code[k].text == "#"
                    && code.get(k + 1).map(|t| t.text.as_str()) == Some("[")
                {
                    let mut d = 1usize;
                    k += 2;
                    while k < code.len() && d > 0 {
                        match code[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // Find `{` opening the body or `;` ending a braceless item.
                let mut end_line = start_line;
                while k < code.len() {
                    match code[k].text.as_str() {
                        ";" => {
                            end_line = code[k].line;
                            break;
                        }
                        "{" => {
                            let mut d = 1usize;
                            k += 1;
                            while k < code.len() && d > 0 {
                                match code[k].text.as_str() {
                                    "{" => d += 1,
                                    "}" => d -= 1,
                                    _ => {}
                                }
                                if d > 0 {
                                    k += 1;
                                }
                            }
                            end_line = code.get(k).map(|t| t.line).unwrap_or(start_line);
                            break;
                        }
                        _ => k += 1,
                    }
                }
                spans.push((start_line, end_line));
                i = j;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}
