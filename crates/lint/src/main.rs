//! CLI for the in-tree invariant linter.
//!
//! ```text
//! cargo run -p mbrpa-lint -- [--deny] [--json PATH] [--root PATH] [--timing]
//! cargo run -p mbrpa-lint -- --validate PATH
//! ```
//!
//! * default: scan the enclosing workspace, print the findings table,
//!   exit 0 (informational mode).
//! * `--deny`: exit 1 if there is any finding (the CI gate).
//! * `--json PATH`: additionally write the `mbrpa.lint-findings/1`
//!   JSON document to PATH.
//! * `--timing`: print the lex / structure / rules wall-time breakdown
//!   after the table (human output only; the JSON document is
//!   unchanged).
//! * `--validate PATH`: parse PATH and check it against the schema,
//!   then exit without scanning.

use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
mbrpa-lint — in-tree invariant linter for the mbrpa workspace

usage: mbrpa-lint [--deny] [--json PATH] [--root PATH] [--timing]
       mbrpa-lint --validate PATH

modes:
  (default)        scan the enclosing workspace, print the findings
                   table, exit 0 (informational)
  --deny           exit 1 if there is any finding (the CI gate)
  --json PATH      also write the {schema} JSON document
  --root PATH      scan PATH instead of the enclosing workspace
  --timing         print the lex / structure / rules wall-time
                   breakdown (human output only)
  --validate PATH  check an existing JSON document against the schema

rules (token-window):
  safety           every `unsafe` carries an adjacent // SAFETY: comment
  unwrap           no .unwrap()/.expect() in library non-test code
  float_cmp        no ==/!= against float values outside tests
  hash_iter        no HashMap/HashSet in numeric crates
  print            no println!/eprintln! in library crates
  narrow_cast      no narrowing `as` casts inside index expressions
  arch_intrinsics  std::arch/core::arch only inside crates/simd

rules (structure-aware, over the scope tree):
  atomic_ordering  non-SeqCst Ordering::* carries a // ord: rationale
  unsafe_wrapper   SIMD unsafe blocks sit behind corner-checked safe fns
  nested_par       no rayon calls nested under an already-parallel region
  lock_hold        no blocking call while a lock guard is live (serve)
  schema_tag       mbrpa.*/N literals only in the mbrpa-schema registry

meta:
  unused_allow     a `// lint: allow(<rule>)` that matched no finding

Suppress a finding only with an inline justification, on the violating
line or the line above:
  // lint: allow(<rule>) — <why this is sound here>

See DESIGN.md §9 (rule policy) and §14 (scope tree & structural rules).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny = false;
    let mut timing = false;
    let mut json_path: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut validate_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--timing" => timing = true,
            "--json" => json_path = it.next().map(PathBuf::from),
            "--root" => root_arg = it.next().map(PathBuf::from),
            "--validate" => validate_path = it.next().map(PathBuf::from),
            "--help" | "-h" => {
                print!("{}", HELP.replace("{schema}", mbrpa_lint::report::SCHEMA));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mbrpa-lint: unknown flag '{other}' (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = validate_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mbrpa-lint: read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match mbrpa_lint::report::validate(&text) {
            Ok(n) => {
                println!(
                    "{} OK: schema {}, {n} finding(s)",
                    path.display(),
                    mbrpa_lint::report::SCHEMA
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mbrpa-lint: {} INVALID: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match mbrpa_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "mbrpa-lint: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let result = match mbrpa_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mbrpa-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!(
        "{}",
        mbrpa_lint::report::human_table(&result.findings, result.files_scanned)
    );

    if timing {
        let t = result.timing;
        println!(
            "timing: lex {:.1} ms, structure {:.1} ms, rules {:.1} ms \
             (one lex + one scope tree per file, shared by all rules)",
            t.lex.as_secs_f64() * 1e3,
            t.structure.as_secs_f64() * 1e3,
            t.rules.as_secs_f64() * 1e3
        );
    }

    if let Some(path) = json_path {
        let doc = mbrpa_lint::report::to_json(&result.findings, result.files_scanned);
        if let Err(e) = mbrpa_lint::report::validate(&doc) {
            eprintln!("mbrpa-lint: emitted JSON failed self-validation: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("mbrpa-lint: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} (schema {})",
            path.display(),
            mbrpa_lint::report::SCHEMA
        );
    }

    if deny && !result.findings.is_empty() {
        eprintln!(
            "mbrpa-lint: --deny: {} finding(s) — fix them or add justified \
             `// lint: allow(<rule>)` suppressions",
            result.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
