//! CLI for the in-tree invariant linter.
//!
//! ```text
//! cargo run -p mbrpa-lint -- [--deny] [--json PATH] [--root PATH]
//! cargo run -p mbrpa-lint -- --validate PATH
//! ```
//!
//! * default: scan the enclosing workspace, print the findings table,
//!   exit 0 (informational mode).
//! * `--deny`: exit 1 if there is any finding (the CI gate).
//! * `--json PATH`: additionally write the `mbrpa.lint-findings/1`
//!   JSON document to PATH.
//! * `--validate PATH`: parse PATH and check it against the schema,
//!   then exit without scanning.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny = false;
    let mut json_path: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut validate_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json_path = it.next().map(PathBuf::from),
            "--root" => root_arg = it.next().map(PathBuf::from),
            "--validate" => validate_path = it.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "usage: mbrpa-lint [--deny] [--json PATH] [--root PATH] | --validate PATH"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mbrpa-lint: unknown flag '{other}' (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = validate_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mbrpa-lint: read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match mbrpa_lint::report::validate(&text) {
            Ok(n) => {
                println!(
                    "{} OK: schema {}, {n} finding(s)",
                    path.display(),
                    mbrpa_lint::report::SCHEMA
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mbrpa-lint: {} INVALID: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match mbrpa_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "mbrpa-lint: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let result = match mbrpa_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mbrpa-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!(
        "{}",
        mbrpa_lint::report::human_table(&result.findings, result.files_scanned)
    );

    if let Some(path) = json_path {
        let doc = mbrpa_lint::report::to_json(&result.findings, result.files_scanned);
        if let Err(e) = mbrpa_lint::report::validate(&doc) {
            eprintln!("mbrpa-lint: emitted JSON failed self-validation: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("mbrpa-lint: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} (schema {})",
            path.display(),
            mbrpa_lint::report::SCHEMA
        );
    }

    if deny && !result.findings.is_empty() {
        eprintln!(
            "mbrpa-lint: --deny: {} finding(s) — fix them or add justified \
             `// lint: allow(<rule>)` suppressions",
            result.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
