//! # mbrpa-lint — in-tree invariant linter
//!
//! A near-zero-dependency static-analysis pass enforcing numerics,
//! determinism, concurrency, and safety invariants the compiler cannot
//! see: bitwise-reproducible reductions must not be compared with float
//! equality, hash-map iteration order must not leak into numeric
//! results, `unsafe` soundness arguments and weakened atomic orderings
//! must be written down, rayon regions must not nest, lock guards must
//! not be held across blocking calls, and schema tags come from one
//! registry.
//!
//! The pass lexes every workspace `.rs` file with a hand-rolled Rust
//! lexer ([`lexer`]) — comments, raw strings, and char-vs-lifetime
//! disambiguation included — then builds a lightweight scope tree over
//! the token stream ([`scope`]): the nesting of brace/paren/bracket
//! scopes with each scope's owning item (`fn` with its
//! `pub`/`unsafe` qualifiers, or `macro_rules!`). Token-window rules
//! and structure-aware rules ([`rules`]) share a single [`rules::Analysis`]
//! per file, so each file is lexed and parsed exactly once. Findings
//! are reported as a human table and as schema-versioned JSON
//! ([`report`], schema `mbrpa.lint-findings/1`) with a hand-rolled
//! validator so CI can round-trip the artifact.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p mbrpa-lint -- --deny
//! ```
//!
//! Suppress a finding only with an inline justification:
//!
//! ```text
//! // lint: allow(unwrap) — mutex poisoning is fatal by design here
//! let guard = LOCK.lock().expect("poisoned telemetry mutex");
//! ```
//!
//! Unused suppressions are themselves findings (`unused_allow`), so
//! stale justifications cannot accumulate. The rule catalogue and the
//! policy for adding rules live in DESIGN.md §9; the scope-tree
//! architecture and the structural rule semantics in DESIGN.md §14.

#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;

use rules::Finding;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Wall-clock breakdown of one workspace scan, summed over files. The
/// lex pass runs once per file and is shared by all thirteen rules;
/// `structure` covers scope-tree construction plus comment/suppression
/// indexing; `rules` is the rule engine proper.
#[derive(Debug, Default, Clone, Copy)]
pub struct Timing {
    /// Total time lexing.
    pub lex: Duration,
    /// Total time building scope trees and comment indices.
    pub structure: Duration,
    /// Total time running the rules.
    pub rules: Duration,
}

/// Result of scanning a workspace: every finding plus the file count
/// (the JSON schema records both so an accidentally-empty scan cannot
/// masquerade as a clean one) and the phase timing breakdown.
#[derive(Debug)]
pub struct ScanResult {
    /// All findings across the workspace, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Per-phase wall time, summed over files (`--timing`).
    pub timing: Timing,
}

/// Scan every `.rs` file under `root` (a workspace checkout), skipping
/// `target/`, `.git/`, and the linter's own rule fixtures under
/// `crates/lint/tests/fixtures/` (those are deliberate violations).
pub fn scan_workspace(root: &Path) -> Result<ScanResult, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    let mut timing = Timing::default();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("read {}: {e}", rel.display()))?;
        let rel_str = rel
            .to_str()
            .ok_or_else(|| format!("non-UTF-8 path {}", rel.display()))?
            .replace('\\', "/");
        let analysis = rules::analyze(&rel_str, &src);
        timing.lex += analysis.lex_time;
        timing.structure += analysis.structure_time;
        let t0 = std::time::Instant::now();
        findings.extend(rules::run_rules(&analysis));
        timing.rules += t0.elapsed();
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(ScanResult {
        findings,
        files_scanned: files.len(),
        timing,
    })
}

/// Collect the workspace-relative paths `scan_workspace` would lint,
/// sorted. Exposed so tests (e.g. the self-parse suite) can iterate the
/// same file set as the scanner.
pub fn workspace_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') || is_fixture_dir(root, &path) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix {}: {e}", path.display()))?;
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// The linter's own test fixtures are intentional rule violations and
/// must not fail the workspace scan.
fn is_fixture_dir(root: &Path, path: &Path) -> bool {
    path.strip_prefix(root)
        .map(|rel| rel == Path::new("crates/lint/tests/fixtures"))
        .unwrap_or(false)
}

/// Locate the workspace root: walk upward from `start` until a
/// directory containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
