//! Structural parser: a scope tree over the lexed token stream.
//!
//! The token-stream rules of PR 4 are deliberately flat — they look at
//! a token and a couple of neighbours. The concurrency and unsafety
//! rules added in the static-analysis v2 pass (DESIGN.md §14) need more:
//! *which function owns this `unsafe` block*, *is this `par_iter` call
//! nested under a region that already holds the rayon pool*, *does the
//! scope that binds this lock guard also perform blocking IO*. This
//! module reconstructs exactly that much structure — nested
//! brace/paren/bracket scopes with per-scope item headers — and nothing
//! more. It is not a Rust AST: no expressions, no types, no name
//! resolution. It never fails; on mismatched delimiters it recovers by
//! closing scopes and records the fact in [`ScopeTree::balanced`], so a
//! half-edited file degrades to weaker analysis instead of a panic.
//!
//! Input is the *code view* of a file: the lexed tokens with comments
//! filtered out, exactly as the rule engine sees them. All indices in
//! this module refer to positions in that slice.
//!
//! ## How owners are classified
//!
//! The parser keeps one *header buffer* per nesting level: the code
//! tokens seen at that level since the last statement boundary (`;`,
//! `=>`, or a closed brace). When a `{` opens, its header buffer is
//! what syntactically introduced the block — `fn name(..) -> T`,
//! `macro_rules! name`, `match x`, `|args|` — and is classified into an
//! [`Owner`]. Paren and bracket closers do *not* clear the buffer, so a
//! multi-line signature like `fn f(\n  a: usize,\n) -> T {` still
//! classifies as a function.

use crate::lexer::{TokKind, Token};

/// Delimiter family of a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// `{` … `}` — blocks, bodies, struct literals.
    Brace,
    /// `(` … `)` — call/tuple/grouping parens.
    Paren,
    /// `[` … `]` — indexing, arrays, attributes.
    Bracket,
}

/// What syntactically introduced a brace scope (paren/bracket scopes
/// are always [`Owner::Other`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Owner {
    /// A function body: `fn name(..) { … }`.
    Fn {
        /// Function name (empty for pathological headers).
        name: String,
        /// Source line of the `fn` keyword.
        line: u32,
        /// Header contains `unsafe` before `fn`.
        is_unsafe: bool,
        /// Header contains an unrestricted `pub` (not `pub(crate)`/`pub(super)`).
        is_pub: bool,
    },
    /// A `macro_rules!` definition body (token soup, exempt from
    /// structural rules — the *expansions* are checked at their call
    /// sites' enclosing functions).
    MacroRules,
    /// Anything else: `impl`/`mod`/`match`/closure/plain block.
    Other,
}

/// One scope: a matched (or recovered) delimiter pair.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Delimiter family.
    pub kind: ScopeKind,
    /// Header classification (meaningful for braces).
    pub owner: Owner,
    /// Enclosing scope, if any.
    pub parent: Option<usize>,
    /// Code-view index of the opening delimiter.
    pub open: usize,
    /// Code-view index of the closing delimiter; `code.len()` when the
    /// scope was force-closed at end of input (recovery).
    pub close: usize,
}

/// The scope tree of one file's code view.
#[derive(Debug)]
pub struct ScopeTree {
    /// All scopes, in order of their opening delimiter (so the vector
    /// is sorted by [`Scope::open`]).
    pub scopes: Vec<Scope>,
    /// Innermost scope containing each code token (`None` = top level).
    /// Delimiter tokens belong to the scope that was innermost *before*
    /// they took effect: an opener to the parent scope, a closer to the
    /// scope it closes.
    pub scope_of: Vec<Option<usize>>,
    /// False if recovery kicked in: a mismatched or stray closing
    /// delimiter, or scopes still open at end of input. Every file that
    /// the Rust compiler accepts parses balanced (the self-parse test
    /// pins this for the whole workspace).
    pub balanced: bool,
}

impl ScopeTree {
    /// Build the tree from a code view (comment tokens filtered out).
    pub fn build(code: &[&Token]) -> ScopeTree {
        let mut scopes: Vec<Scope> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        // headers[stack.len()] = header buffer of the current level.
        let mut headers: Vec<Vec<usize>> = vec![Vec::new()];
        let mut scope_of: Vec<Option<usize>> = vec![None; code.len()];
        let mut balanced = true;

        for (i, tok) in code.iter().enumerate() {
            scope_of[i] = stack.last().copied();
            if tok.kind != TokKind::Punct {
                if let Some(h) = headers.last_mut() {
                    h.push(i);
                }
                continue;
            }
            match tok.text.as_str() {
                "{" | "(" | "[" => {
                    let kind = match tok.text.as_str() {
                        "{" => ScopeKind::Brace,
                        "(" => ScopeKind::Paren,
                        _ => ScopeKind::Bracket,
                    };
                    let owner = if kind == ScopeKind::Brace {
                        let o = headers
                            .last()
                            .map(|h| classify_owner(code, h))
                            .unwrap_or(Owner::Other);
                        // The brace consumes its header: whatever
                        // follows the matching `}` starts a new
                        // statement at this level.
                        if let Some(h) = headers.last_mut() {
                            h.clear();
                        }
                        o
                    } else {
                        Owner::Other
                    };
                    scopes.push(Scope {
                        kind,
                        owner,
                        parent: stack.last().copied(),
                        open: i,
                        close: code.len(),
                    });
                    stack.push(scopes.len() - 1);
                    headers.push(Vec::new());
                }
                "}" | ")" | "]" => {
                    let want = match tok.text.as_str() {
                        "}" => ScopeKind::Brace,
                        ")" => ScopeKind::Paren,
                        _ => ScopeKind::Bracket,
                    };
                    if stack.iter().any(|&s| scopes[s].kind == want) {
                        // Close intervening mismatched scopes (recovery),
                        // then the matching one.
                        while let Some(id) = stack.pop() {
                            headers.pop();
                            scopes[id].close = i;
                            if scopes[id].kind == want {
                                break;
                            }
                            balanced = false;
                        }
                    } else {
                        // Stray closer: ignore it entirely.
                        balanced = false;
                    }
                    if want == ScopeKind::Brace {
                        // `fn f() { … }` is a complete item: clear the
                        // resumed level's buffer. `)`/`]` instead keep
                        // the statement going (`lock(&m).recv()`).
                        if let Some(h) = headers.last_mut() {
                            h.clear();
                        }
                    }
                }
                ";" | "=>" => {
                    if let Some(h) = headers.last_mut() {
                        h.clear();
                    }
                }
                _ => {
                    if let Some(h) = headers.last_mut() {
                        h.push(i);
                    }
                }
            }
        }
        if !stack.is_empty() {
            balanced = false;
        }

        ScopeTree {
            scopes,
            scope_of,
            balanced,
        }
    }

    /// Innermost function-body scope at or above `id` (inclusive),
    /// stopping — and returning `None` — at a `macro_rules!` body.
    pub fn enclosing_fn(&self, id: usize) -> Option<usize> {
        let mut cur = Some(id);
        while let Some(c) = cur {
            match self.scopes[c].owner {
                Owner::Fn { .. } => return Some(c),
                Owner::MacroRules => return None,
                Owner::Other => cur = self.scopes[c].parent,
            }
        }
        None
    }

    /// True if `id` or any ancestor is a `macro_rules!` body.
    pub fn inside_macro_rules(&self, id: usize) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if self.scopes[c].owner == Owner::MacroRules {
                return true;
            }
            cur = self.scopes[c].parent;
        }
        false
    }

    /// The scope opened by the delimiter at code index `open`, if any.
    /// `scopes` is sorted by `open`, so this is a binary search.
    pub fn opened_at(&self, open: usize) -> Option<usize> {
        self.scopes.binary_search_by_key(&open, |s| s.open).ok()
    }
}

/// Classify a brace's header buffer (code-view indices of the tokens
/// between the previous statement boundary and the `{`).
fn classify_owner(code: &[&Token], header: &[usize]) -> Owner {
    let mut fn_pos: Option<usize> = None;
    for (h, &idx) in header.iter().enumerate() {
        let t = code[idx];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "fn" {
            fn_pos = Some(h);
            break;
        }
        if t.text == "macro_rules" {
            return Owner::MacroRules;
        }
    }
    let Some(p) = fn_pos else {
        return Owner::Other;
    };
    let fn_line = code[header[p]].line;
    let name = header
        .get(p + 1)
        .map(|&idx| code[idx])
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default();
    let mut is_unsafe = false;
    let mut is_pub = false;
    for &idx in &header[..p] {
        let t = code[idx];
        if t.text == "unsafe" {
            is_unsafe = true;
        }
        if t.text == "pub" {
            // `pub(crate)` / `pub(super)` restrict visibility; the
            // restriction parens follow immediately in the raw stream.
            is_pub = code.get(idx + 1).map(|n| n.text != "(").unwrap_or(true);
        }
    }
    Owner::Fn {
        name,
        line: fn_line,
        is_unsafe,
        is_pub,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> (Vec<Token>, ScopeTree) {
        let tokens = lex(src);
        let code: Vec<&Token> = tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let tree = ScopeTree::build(&code);
        (tokens.clone(), tree)
    }

    #[test]
    fn classifies_fn_with_multiline_signature() {
        let (_, t) = tree("pub unsafe fn axpy(\n    n: usize,\n) -> usize {\n    n\n}\n");
        let fns: Vec<&Scope> = t
            .scopes
            .iter()
            .filter(|s| matches!(s.owner, Owner::Fn { .. }))
            .collect();
        assert_eq!(fns.len(), 1);
        match &fns[0].owner {
            Owner::Fn {
                name,
                is_unsafe,
                is_pub,
                ..
            } => {
                assert_eq!(name, "axpy");
                assert!(*is_unsafe);
                assert!(*is_pub);
            }
            other => panic!("unexpected owner {other:?}"),
        }
        assert!(t.balanced);
    }

    #[test]
    fn pub_crate_is_not_fully_public() {
        let (_, t) = tree("pub(crate) unsafe fn inner() {}\n");
        let owner = t
            .scopes
            .iter()
            .find_map(|s| match &s.owner {
                Owner::Fn { is_pub, .. } => Some(*is_pub),
                _ => None,
            })
            .expect("fn scope");
        assert!(!owner);
    }

    #[test]
    fn macro_rules_body_is_marked() {
        let (_, t) = tree("macro_rules! m {\n    ($x:expr) => {{ $x }};\n}\n");
        assert!(t.scopes.iter().any(|s| s.owner == Owner::MacroRules));
        assert!(t.balanced);
    }

    #[test]
    fn nesting_and_scope_of() {
        let (_, t) = tree("fn f() { g(|| { h(); }); }\n");
        assert!(t.balanced);
        // Every scope's parent chain terminates and closers match kinds.
        for s in &t.scopes {
            assert!(s.close > s.open);
        }
        // The innermost brace (closure body) has a paren parent whose
        // parent is the fn body.
        let closure = t
            .scopes
            .iter()
            .filter(|s| s.kind == ScopeKind::Brace)
            .max_by_key(|s| s.open)
            .expect("closure body");
        let paren = closure.parent.expect("call parens");
        assert_eq!(t.scopes[paren].kind, ScopeKind::Paren);
        let fnbody = t.scopes[paren].parent.expect("fn body");
        assert!(matches!(t.scopes[fnbody].owner, Owner::Fn { .. }));
    }

    #[test]
    fn recovery_on_mismatched_delimiters_never_panics() {
        for src in ["fn f() { (]\n", "}}}", "fn f( {", "fn f() { [ ) }", "{ ( ["] {
            let (_, t) = tree(src);
            assert!(!t.balanced, "{src:?} should be flagged unbalanced");
        }
    }

    #[test]
    fn match_arm_blocks_are_other() {
        let (_, t) = tree("fn f(x: u8) -> u8 { match x { 0 => { 1 } _ => 2, } }\n");
        let arm_owners: Vec<&Owner> = t
            .scopes
            .iter()
            .filter(|s| s.kind == ScopeKind::Brace)
            .map(|s| &s.owner)
            .collect();
        // fn body is Fn, match body and arm block are Other.
        assert_eq!(
            arm_owners
                .iter()
                .filter(|o| matches!(o, Owner::Fn { .. }))
                .count(),
            1
        );
        assert!(t.balanced);
    }
}
