//! # mbrpa-ckpt
//!
//! Crash-safe checkpoint/restart for long RPA runs.
//!
//! Production RPA calculations spend thousands of CPU-seconds per
//! quadrature frequency while the state needed to resume is compact: the
//! `n_d × n_eig` warm-start eigenvector block, the accumulated energy, and
//! the per-frequency report summaries. This crate journals that state at
//! every frequency boundary so a crash loses at most one frequency of
//! work.
//!
//! Three layers, std-only:
//!
//! * [`crc32`] — the IEEE CRC32 used to detect truncation and bit rot,
//! * [`codec`] — a versioned binary snapshot format (magic, format
//!   version, config fingerprint, frequency index, warm-start block,
//!   accumulated energy, per-frequency summaries) framed by a trailing
//!   checksum; decoding is bit-exact for every `f64`,
//! * [`store`] — a two-slot atomic store: each save writes a temp file,
//!   fsyncs, renames over the **older** slot, and fsyncs the directory, so
//!   one valid snapshot always survives a mid-write crash. Loading decodes
//!   both slots, rejects any that fail the checksum, and returns the valid
//!   snapshot with the highest write sequence — falling back to the older
//!   slot when the newest is torn or corrupt.
//!
//! The crate knows nothing about RPA configuration semantics: the caller
//! supplies an opaque `fingerprint` (a hash of everything that must match
//! for a resume to be bit-for-bit correct) and checks it on load.

#![warn(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod store;

use std::fmt;

pub use codec::{
    decode_snapshot, encode_snapshot, IterRow, OmegaSummary, Snapshot, FORMAT_VERSION, MAGIC,
};
pub use crc32::crc32;
pub use store::{
    list_namespaces, valid_namespace_id, CheckpointStore, LoadedSnapshot, Slot, SlotState,
};

/// Errors reading, writing, or validating snapshots.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The snapshot bytes are not a valid snapshot (bad magic, truncated,
    /// failed checksum, or malformed payload).
    Corrupt {
        /// What was wrong.
        reason: String,
    },
    /// The snapshot has a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::Corrupt { reason } => write!(f, "corrupt checkpoint: {reason}"),
            CkptError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint format version {found} (this build reads {})",
                    FORMAT_VERSION
                )
            }
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

pub(crate) fn corrupt(reason: impl Into<String>) -> CkptError {
    CkptError::Corrupt {
        reason: reason.into(),
    }
}
