//! IEEE CRC32 (the zlib/gzip polynomial), table-driven.
//!
//! A 32-bit CRC detects every single-bit flip, every burst error up to 32
//! bits, and misses longer corruption with probability `2⁻³²` — ample for
//! catching torn writes and disk rot in checkpoint files, where the threat
//! model is accident, not an adversary.

/// Reflected polynomial of CRC-32/ISO-HDLC (zlib `crc32`).
const POLY: u32 = 0xEDB8_8320;

/// Byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 of `bytes` (initial value `!0`, final xor `!0` — matches zlib).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"the warm-start block survives the crash".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "missed flip at {i}:{bit}");
            }
        }
    }
}
