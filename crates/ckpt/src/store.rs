//! Two-slot atomic snapshot store.
//!
//! The journaling discipline:
//!
//! 1. every save encodes the snapshot, writes it to a temp file in the
//!    checkpoint directory, and `fsync`s the file,
//! 2. the temp file is renamed over the slot **not** holding the newest
//!    valid snapshot (slots alternate A → B → A → …),
//! 3. the directory itself is fsynced so the rename is durable.
//!
//! A crash before the rename leaves both slots untouched; a crash during
//! the rename is resolved by the filesystem (rename is atomic on POSIX);
//! a torn write can only ever damage the slot being replaced — the other
//! slot still holds the previous complete snapshot. The loader decodes
//! both slots, discards any that fail the CRC or structural checks, and
//! returns the survivor with the highest write sequence.

use crate::codec::{decode_snapshot, encode_snapshot, Snapshot};
use crate::CkptError;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The two alternating snapshot slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// `slot_a.ckpt`.
    A,
    /// `slot_b.ckpt`.
    B,
}

impl Slot {
    /// File name of this slot inside the checkpoint directory.
    pub fn file_name(self) -> &'static str {
        match self {
            Slot::A => "slot_a.ckpt",
            Slot::B => "slot_b.ckpt",
        }
    }

    fn other(self) -> Slot {
        match self {
            Slot::A => Slot::B,
            Slot::B => Slot::A,
        }
    }
}

/// What the loader found in one slot.
#[derive(Debug)]
pub enum SlotState {
    /// The slot file does not exist.
    Absent,
    /// The slot decoded cleanly; the sequence is reported.
    Valid(u64),
    /// The slot exists but failed validation.
    Corrupt(CkptError),
}

/// A successfully loaded snapshot plus provenance.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The decoded snapshot.
    pub snapshot: Snapshot,
    /// Which slot it came from.
    pub slot: Slot,
    /// True when the *other* slot held a newer-looking or corrupt file
    /// that failed validation — i.e. this load fell back to the older
    /// surviving snapshot.
    pub recovered_from_fallback: bool,
}

/// Journaled two-slot checkpoint store rooted at one directory.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    /// Slot the next save will overwrite.
    next_slot: Slot,
    /// Sequence number the next save will stamp.
    next_seq: u64,
}

impl CheckpointStore {
    /// Open (creating if needed) the checkpoint directory and scan the
    /// slots to position the write cursor after the newest valid snapshot.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut store = Self {
            dir,
            next_slot: Slot::A,
            next_seq: 0,
        };
        let (a, b) = (store.read_slot(Slot::A), store.read_slot(Slot::B));
        let newest = match (&a, &b) {
            (Ok(sa), Ok(sb)) => Some(if sa.sequence >= sb.sequence {
                (Slot::A, sa.sequence)
            } else {
                (Slot::B, sb.sequence)
            }),
            (Ok(sa), Err(_)) => Some((Slot::A, sa.sequence)),
            (Err(_), Ok(sb)) => Some((Slot::B, sb.sequence)),
            (Err(_), Err(_)) => None,
        };
        if let Some((slot, seq)) = newest {
            store.next_slot = slot.other();
            store.next_seq = seq + 1;
        }
        Ok(store)
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Full path of a slot file.
    pub fn slot_path(&self, slot: Slot) -> PathBuf {
        self.dir.join(slot.file_name())
    }

    /// Atomically persist a snapshot, stamping its write sequence.
    ///
    /// The snapshot's `sequence` field is overwritten with the store's
    /// monotone counter so the loader can order the two slots.
    pub fn save(&mut self, snap: &mut Snapshot) -> Result<(), CkptError> {
        let _span = mbrpa_obs::span("ckpt.save");
        snap.sequence = self.next_seq;
        let bytes = encode_snapshot(snap);
        mbrpa_obs::add("ckpt.bytes_written", bytes.len() as u64);
        mbrpa_obs::add("ckpt.saves", 1);
        let target = self.slot_path(self.next_slot);
        let tmp = self.dir.join(format!("{}.tmp", self.next_slot.file_name()));
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &target)?;
        sync_dir(&self.dir)?;
        self.next_slot = self.next_slot.other();
        self.next_seq += 1;
        Ok(())
    }

    /// Decode one slot.
    fn read_slot(&self, slot: Slot) -> Result<Snapshot, CkptError> {
        let bytes = fs::read(self.slot_path(slot))?;
        decode_snapshot(&bytes)
    }

    /// Report the state of both slots (A then B) without loading fully.
    pub fn slot_states(&self) -> [SlotState; 2] {
        [Slot::A, Slot::B].map(|slot| match self.read_slot(slot) {
            Ok(s) => SlotState::Valid(s.sequence),
            Err(CkptError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => SlotState::Absent,
            Err(e) => SlotState::Corrupt(e),
        })
    }

    /// Open a namespaced store `root/<id>/` for one job of a multi-job
    /// owner (a serving daemon's per-job checkpoint area). The id is
    /// restricted to `[A-Za-z0-9._-]` without a leading dot so a
    /// wire-supplied name can never escape `root` or hide from a rescan.
    pub fn open_namespaced(root: impl Into<PathBuf>, id: &str) -> Result<Self, CkptError> {
        if !valid_namespace_id(id) {
            return Err(crate::corrupt(format!(
                "invalid checkpoint namespace id {id:?}: need 1-128 chars of \
                 [A-Za-z0-9._-] with no leading dot"
            )));
        }
        Self::open(root.into().join(id))
    }

    /// Load the newest valid snapshot, falling back to the older slot when
    /// the newer one is missing, truncated, or corrupt. `Ok(None)` means no
    /// slot holds a valid snapshot (fresh directory, or both damaged).
    pub fn load_latest(&self) -> Result<Option<LoadedSnapshot>, CkptError> {
        let _span = mbrpa_obs::span("ckpt.load");
        mbrpa_obs::add("ckpt.loads", 1);
        let mut best: Option<(Slot, Snapshot)> = None;
        let mut any_invalid_file = false;
        for slot in [Slot::A, Slot::B] {
            match self.read_slot(slot) {
                Ok(snap) => {
                    let newer = best
                        .as_ref()
                        .is_none_or(|(_, cur)| snap.sequence > cur.sequence);
                    if newer {
                        best = Some((slot, snap));
                    }
                }
                Err(CkptError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(_) => any_invalid_file = true,
            }
        }
        Ok(best.map(|(slot, snapshot)| LoadedSnapshot {
            snapshot,
            slot,
            recovered_from_fallback: any_invalid_file,
        }))
    }
}

/// Is `id` acceptable as a checkpoint namespace (one path component,
/// no traversal, no hidden files)?
pub fn valid_namespace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 128
        && !id.starts_with('.')
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Enumerate the namespace ids under `root` (the inverse of
/// [`CheckpointStore::open_namespaced`]): every directory entry whose
/// name is a valid namespace id, sorted. A missing root is an empty
/// listing, not an error — a daemon's first boot has no jobs yet.
pub fn list_namespaces(root: impl AsRef<Path>) -> Result<Vec<String>, CkptError> {
    let root = root.as_ref();
    let entries = match fs::read_dir(root) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut ids = Vec::new();
    for entry in entries {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        if let Some(name) = entry.file_name().to_str() {
            if valid_namespace_id(name) {
                ids.push(name.to_owned());
            }
        }
    }
    ids.sort();
    Ok(ids)
}

/// Durably record the rename by fsyncing the directory (POSIX requires
/// this for the new directory entry to survive power loss).
fn sync_dir(dir: &Path) -> Result<(), CkptError> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbrpa_linalg::Mat;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        // ord: Relaxed — unique-id counter; nothing is published, only distinctness matters
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("mbrpa-ckpt-store-{}-{tag}-{n}", std::process::id()))
    }

    fn snap(completed: u64) -> Snapshot {
        Snapshot {
            fingerprint: 42,
            sequence: 0,
            completed,
            n_omega_total: 8,
            accumulated_energy: -0.5 * completed as f64,
            warm_start: Mat::from_fn(4, 2, |i, j| completed as f64 + i as f64 - j as f64),
            omega: (0..completed)
                .map(|k| crate::OmegaSummary {
                    omega: 10.0 - k as f64,
                    weight: 1.0,
                    unit_node: 0.1,
                    energy_term: -0.1,
                    contribution: -0.01,
                    filter_rounds: 1,
                    error: 1e-4,
                    converged: true,
                    eigenvalues: vec![-0.1, -0.05],
                    timings_s: [0.0; 4],
                    history: vec![],
                })
                .collect(),
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = scratch_dir("roundtrip");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save(&mut snap(1)).unwrap();
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.snapshot.completed, 1);
        assert!(!loaded.recovered_from_fallback);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slots_alternate_and_latest_wins() {
        let dir = scratch_dir("alternate");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save(&mut snap(1)).unwrap();
        store.save(&mut snap(2)).unwrap();
        store.save(&mut snap(3)).unwrap();
        // both slot files exist
        assert!(store.slot_path(Slot::A).exists());
        assert!(store.slot_path(Slot::B).exists());
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.snapshot.completed, 3);
        assert_eq!(loaded.snapshot.sequence, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_sequence_and_alternation() {
        let dir = scratch_dir("reopen");
        {
            let mut store = CheckpointStore::open(&dir).unwrap();
            store.save(&mut snap(1)).unwrap(); // seq 0 → slot A
        }
        {
            let mut store = CheckpointStore::open(&dir).unwrap();
            store.save(&mut snap(2)).unwrap(); // must go to slot B, seq 1
            let loaded = store.load_latest().unwrap().unwrap();
            assert_eq!(loaded.snapshot.completed, 2);
            assert_eq!(loaded.snapshot.sequence, 1);
            assert_eq!(loaded.slot, Slot::B);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_latest_falls_back_to_older_slot() {
        let dir = scratch_dir("fallback");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save(&mut snap(1)).unwrap();
        store.save(&mut snap(2)).unwrap();
        let latest_slot = store.load_latest().unwrap().unwrap().slot;
        // flip one byte in the newest slot
        let path = store.slot_path(latest_slot);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.slot, latest_slot.other());
        assert_eq!(loaded.snapshot.completed, 1);
        assert!(loaded.recovered_from_fallback);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_latest_falls_back_to_older_slot() {
        let dir = scratch_dir("truncate");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save(&mut snap(1)).unwrap();
        store.save(&mut snap(2)).unwrap();
        let latest_slot = store.load_latest().unwrap().unwrap().slot;
        let path = store.slot_path(latest_slot);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();

        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.snapshot.completed, 1);
        assert!(loaded.recovered_from_fallback);

        // a fresh store must not overwrite the sole valid snapshot next
        let store2 = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store2.next_slot, loaded.slot.other());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn both_slots_damaged_loads_none() {
        let dir = scratch_dir("bothbad");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save(&mut snap(1)).unwrap();
        store.save(&mut snap(2)).unwrap();
        for slot in [Slot::A, Slot::B] {
            fs::write(store.slot_path(slot), b"not a snapshot").unwrap();
        }
        assert!(store.load_latest().unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_loads_none() {
        let dir = scratch_dir("empty");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn namespace_id_charset_is_enforced() {
        for ok in ["job-1", "a", "run_42.v2", "ABC-def_0.9", &"x".repeat(128)] {
            assert!(valid_namespace_id(ok), "{ok:?} should be accepted");
        }
        for bad in [
            "",
            ".hidden",
            "..",
            "a/b",
            "a\\b",
            "job 1",
            "job\n",
            "über",
            &"x".repeat(129),
        ] {
            assert!(!valid_namespace_id(bad), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn namespaced_stores_are_isolated_and_listable() {
        let root = scratch_dir("namespaces");
        // missing root lists empty instead of erroring
        assert!(list_namespaces(&root).unwrap().is_empty());

        let mut a = CheckpointStore::open_namespaced(&root, "job-a").unwrap();
        let mut b = CheckpointStore::open_namespaced(&root, "job-b").unwrap();
        a.save(&mut snap(1)).unwrap();
        b.save(&mut snap(2)).unwrap();
        // each namespace sees only its own snapshot
        assert_eq!(a.load_latest().unwrap().unwrap().snapshot.completed, 1);
        assert_eq!(b.load_latest().unwrap().unwrap().snapshot.completed, 2);

        // stray files and invalid names are not listed
        fs::write(root.join("stray.txt"), b"x").unwrap();
        fs::create_dir(root.join(".hidden")).unwrap();
        assert_eq!(list_namespaces(&root).unwrap(), vec!["job-a", "job-b"]);

        let err = CheckpointStore::open_namespaced(&root, "../escape").unwrap_err();
        assert!(err.to_string().contains("invalid checkpoint namespace"));
        fs::remove_dir_all(&root).unwrap();
    }
}
