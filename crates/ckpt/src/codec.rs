//! The versioned binary snapshot format.
//!
//! Frame layout (all integers little-endian, all floats as raw IEEE-754
//! bits so decoding is bit-exact):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "MBRPACKP"
//! 8       4     format version (u32)
//! 12      8     payload length (u64)
//! 20      L     payload
//! 20+L    4     CRC32 over bytes [0, 20+L)
//! ```
//!
//! Payload:
//!
//! ```text
//! fingerprint u64 · sequence u64 · completed u64 · n_omega_total u64
//! accumulated_energy f64
//! warm_start: rows u64 · cols u64 · rows·cols f64 (column-major)
//! n_summaries u64, then per summary:
//!   omega, weight, unit_node, energy_term, contribution  f64 ×5
//!   filter_rounds u64 · error f64 · converged u8
//!   n_eigs u64 · eigenvalues f64 ×n
//!   timings (apply, matmult, eigensolve, eval_error seconds) f64 ×4
//!   n_history u64, then per row:
//!     ncheb u64 · energy_term f64 · error f64 · edge_eigs f64 ×4 · elapsed_s f64
//! ```
//!
//! Any truncation or bit flip anywhere in the frame fails the CRC; a
//! malformed-but-checksummed payload (impossible from this writer, but
//! cheap to guard) fails the structural checks below.

use crate::crc32::crc32;
use crate::{corrupt, CkptError};
use mbrpa_linalg::Mat;

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"MBRPACKP";

/// Format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Everything needed to resume an RPA run at a frequency boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Opaque hash of the run configuration; a resume must see the same
    /// fingerprint or the warm-start block is meaningless.
    pub fingerprint: u64,
    /// Monotone write counter, stamped by the store on save; the loader
    /// picks the valid slot with the highest sequence.
    pub sequence: u64,
    /// Quadrature frequencies completed so far (resume starts here).
    pub completed: u64,
    /// Total quadrature frequencies of the run.
    pub n_omega_total: u64,
    /// Energy accumulated over the completed frequencies (exact bits).
    pub accumulated_energy: f64,
    /// The `n_d × n_eig` eigenvector block that warm-starts the next
    /// frequency.
    pub warm_start: Mat<f64>,
    /// Per-frequency report summaries for the completed frequencies.
    pub omega: Vec<OmegaSummary>,
}

/// A compact, serializable image of one frequency's `OmegaReport`.
#[derive(Clone, Debug, PartialEq)]
pub struct OmegaSummary {
    /// Frequency `ω_k`.
    pub omega: f64,
    /// Quadrature weight `w_k`.
    pub weight: f64,
    /// Gauss–Legendre node on (0,1).
    pub unit_node: f64,
    /// `E_k = Σ ln(1 − μ) + μ`.
    pub energy_term: f64,
    /// `w_k E_k / 2π`.
    pub contribution: f64,
    /// Chebyshev filter applications used.
    pub filter_rounds: u64,
    /// Final Eq. 7 error.
    pub error: f64,
    /// Whether τ_SI was met.
    pub converged: bool,
    /// Computed eigenvalues (ascending).
    pub eigenvalues: Vec<f64>,
    /// Kernel seconds: apply, matmult, eigensolve, eval_error.
    pub timings_s: [f64; 4],
    /// Per-iteration history rows.
    pub history: Vec<IterRow>,
}

/// One serialized subspace-iteration history row.
#[derive(Clone, Debug, PartialEq)]
pub struct IterRow {
    /// Filter applications so far.
    pub ncheb: u64,
    /// Trace term at this iteration.
    pub energy_term: f64,
    /// Eq. 7 residual.
    pub error: f64,
    /// First two and last two Ritz values.
    pub edge_eigs: [f64; 4],
    /// Iteration wall seconds.
    pub elapsed_s: f64,
}

const HEADER_LEN: usize = 8 + 4 + 8;
const CRC_LEN: usize = 4;

/// Encode a snapshot into a self-checking byte frame.
pub fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut payload = Vec::with_capacity(
        8 * 5 + 16 + 8 * snap.warm_start.as_slice().len() + 256 * snap.omega.len(),
    );
    put_u64(&mut payload, snap.fingerprint);
    put_u64(&mut payload, snap.sequence);
    put_u64(&mut payload, snap.completed);
    put_u64(&mut payload, snap.n_omega_total);
    put_f64(&mut payload, snap.accumulated_energy);
    put_u64(&mut payload, snap.warm_start.rows() as u64);
    put_u64(&mut payload, snap.warm_start.cols() as u64);
    for &x in snap.warm_start.as_slice() {
        put_f64(&mut payload, x);
    }
    put_u64(&mut payload, snap.omega.len() as u64);
    for s in &snap.omega {
        put_f64(&mut payload, s.omega);
        put_f64(&mut payload, s.weight);
        put_f64(&mut payload, s.unit_node);
        put_f64(&mut payload, s.energy_term);
        put_f64(&mut payload, s.contribution);
        put_u64(&mut payload, s.filter_rounds);
        put_f64(&mut payload, s.error);
        payload.push(u8::from(s.converged));
        put_u64(&mut payload, s.eigenvalues.len() as u64);
        for &mu in &s.eigenvalues {
            put_f64(&mut payload, mu);
        }
        for &t in &s.timings_s {
            put_f64(&mut payload, t);
        }
        put_u64(&mut payload, s.history.len() as u64);
        for row in &s.history {
            put_u64(&mut payload, row.ncheb);
            put_f64(&mut payload, row.energy_term);
            put_f64(&mut payload, row.error);
            for &e in &row.edge_eigs {
                put_f64(&mut payload, e);
            }
            put_f64(&mut payload, row.elapsed_s);
        }
    }

    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + CRC_LEN);
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&payload);
    let crc = crc32(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Decode a frame produced by [`encode_snapshot`], verifying the magic,
/// version, length, and checksum before trusting any field.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, CkptError> {
    if bytes.len() < HEADER_LEN + CRC_LEN {
        return Err(corrupt(format!(
            "file too short for a snapshot header ({} bytes)",
            bytes.len()
        )));
    }
    if bytes[..8] != MAGIC {
        return Err(corrupt("bad magic (not a snapshot file)"));
    }
    // lint: allow(unwrap) — 4-byte slice of a length-checked header
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    if version != FORMAT_VERSION {
        return Err(CkptError::UnsupportedVersion { found: version });
    }
    // lint: allow(unwrap) — 8-byte slice of a length-checked header
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8-byte slice")) as usize;
    let expected_total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(CRC_LEN))
        .ok_or_else(|| corrupt("payload length overflows"))?;
    if bytes.len() != expected_total {
        return Err(corrupt(format!(
            "truncated or padded: header claims {expected_total} bytes, file has {}",
            bytes.len()
        )));
    }
    let body = &bytes[..bytes.len() - CRC_LEN];
    let stored_crc =
        // lint: allow(unwrap) — CRC_LEN == 4 trailing bytes, length checked above
        u32::from_le_bytes(bytes[bytes.len() - CRC_LEN..].try_into().expect("4-byte slice"));
    let actual_crc = crc32(body);
    if stored_crc != actual_crc {
        return Err(corrupt(format!(
            "checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        )));
    }

    let mut r = Reader {
        buf: &body[HEADER_LEN..],
        pos: 0,
    };
    let fingerprint = r.u64()?;
    let sequence = r.u64()?;
    let completed = r.u64()?;
    let n_omega_total = r.u64()?;
    let accumulated_energy = r.f64()?;
    let rows = r.usize_checked("warm-start rows")?;
    let cols = r.usize_checked("warm-start cols")?;
    let n_entries = rows
        .checked_mul(cols)
        .ok_or_else(|| corrupt("warm-start dims overflow"))?;
    r.fits(n_entries, 8, "warm-start block")?;
    let mut data = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        data.push(r.f64()?);
    }
    let warm_start = Mat::from_col_major(rows, cols, data);

    let n_summaries = r.usize_checked("summary count")?;
    r.fits(n_summaries, 8 * 13 + 1, "summaries")?;
    let mut omega = Vec::with_capacity(n_summaries);
    for _ in 0..n_summaries {
        let omega_v = r.f64()?;
        let weight = r.f64()?;
        let unit_node = r.f64()?;
        let energy_term = r.f64()?;
        let contribution = r.f64()?;
        let filter_rounds = r.u64()?;
        let error = r.f64()?;
        let converged = match r.u8()? {
            0 => false,
            1 => true,
            other => return Err(corrupt(format!("bad converged flag {other}"))),
        };
        let n_eigs = r.usize_checked("eigenvalue count")?;
        r.fits(n_eigs, 8, "eigenvalues")?;
        let mut eigenvalues = Vec::with_capacity(n_eigs);
        for _ in 0..n_eigs {
            eigenvalues.push(r.f64()?);
        }
        let mut timings_s = [0.0; 4];
        for t in &mut timings_s {
            *t = r.f64()?;
        }
        let n_history = r.usize_checked("history count")?;
        r.fits(n_history, 8 * 8, "history rows")?;
        let mut history = Vec::with_capacity(n_history);
        for _ in 0..n_history {
            let ncheb = r.u64()?;
            let energy_term = r.f64()?;
            let error = r.f64()?;
            let mut edge_eigs = [0.0; 4];
            for e in &mut edge_eigs {
                *e = r.f64()?;
            }
            let elapsed_s = r.f64()?;
            history.push(IterRow {
                ncheb,
                energy_term,
                error,
                edge_eigs,
                elapsed_s,
            });
        }
        omega.push(OmegaSummary {
            omega: omega_v,
            weight,
            unit_node,
            energy_term,
            contribution,
            filter_rounds,
            error,
            converged,
            eigenvalues,
            timings_s,
            history,
        });
    }
    if r.pos != r.buf.len() {
        return Err(corrupt(format!(
            "trailing garbage: {} unread payload bytes",
            r.buf.len() - r.pos
        )));
    }
    if completed as usize != omega.len() {
        return Err(corrupt(format!(
            "frequency index {completed} disagrees with {} stored summaries",
            omega.len()
        )));
    }
    Ok(Snapshot {
        fingerprint,
        sequence,
        completed,
        n_omega_total,
        accumulated_energy,
        warm_start,
        omega,
    })
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CkptError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("payload ends mid-field"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        let bytes = self.take(8)?;
        // lint: allow(unwrap) — take(8) returns exactly 8 bytes or errors
        let arr: [u8; 8] = bytes.try_into().expect("8-byte slice");
        Ok(u64::from_le_bytes(arr))
    }

    fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` that must fit in `usize` (sanity for counts and dims).
    fn usize_checked(&mut self, what: &str) -> Result<usize, CkptError> {
        usize::try_from(self.u64()?).map_err(|_| corrupt(format!("{what} exceeds usize")))
    }

    /// Reject counts that claim more elements than the remaining bytes can
    /// hold, so a forged count cannot trigger a huge allocation.
    fn fits(&self, count: usize, min_elem_bytes: usize, what: &str) -> Result<(), CkptError> {
        let need = count.checked_mul(min_elem_bytes);
        match need {
            Some(n) if n <= self.buf.len() - self.pos => Ok(()),
            _ => Err(corrupt(format!("{what} count {count} exceeds payload"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            sequence: 7,
            completed: 2,
            n_omega_total: 8,
            accumulated_energy: -1.704_473_21e0,
            warm_start: Mat::from_fn(5, 3, |i, j| (i as f64 + 1.0) * 0.5 - j as f64 / 7.0),
            omega: vec![
                OmegaSummary {
                    omega: 49.365,
                    weight: 128.4,
                    unit_node: 0.02,
                    energy_term: -0.00373,
                    contribution: -5.937e-4,
                    filter_rounds: 3,
                    error: 3.7e-4,
                    converged: true,
                    eigenvalues: vec![-0.0119, -0.0112, -0.003],
                    timings_s: [1.0, 0.25, 0.125, 0.0625],
                    history: vec![IterRow {
                        ncheb: 0,
                        energy_term: -0.0037,
                        error: 3.7e-4,
                        edge_eigs: [-0.0119, -0.0112, -0.003, -0.0025],
                        elapsed_s: 5.14,
                    }],
                },
                OmegaSummary {
                    omega: 12.1,
                    weight: 30.0,
                    unit_node: 0.1,
                    energy_term: -0.01,
                    contribution: -4.7e-4,
                    filter_rounds: 0,
                    error: 1.1e-4,
                    converged: false,
                    eigenvalues: vec![],
                    timings_s: [0.0; 4],
                    history: vec![],
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let snap = sample();
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back, snap);
        // bit-exactness of the energy and warm-start block, specifically
        assert_eq!(
            back.accumulated_energy.to_bits(),
            snap.accumulated_energy.to_bits()
        );
        for (a, b) in back
            .warm_start
            .as_slice()
            .iter()
            .zip(snap.warm_start.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn round_trips_non_finite_and_negative_zero() {
        let mut snap = sample();
        snap.accumulated_energy = -0.0;
        snap.warm_start =
            Mat::from_col_major(2, 2, vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0]);
        let back = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        for (a, b) in back
            .warm_start
            .as_slice()
            .iter()
            .zip(snap.warm_start.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.accumulated_energy.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_snapshot(&sample());
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = encode_snapshot(&sample());
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(CkptError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn rejects_every_truncation_length() {
        let bytes = encode_snapshot(&sample());
        for len in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..len]).is_err(),
                "accepted truncation to {len} bytes"
            );
        }
    }

    #[test]
    fn rejects_every_single_byte_corruption() {
        let bytes = encode_snapshot(&sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            assert!(
                decode_snapshot(&bad).is_err(),
                "accepted corruption at byte {i}"
            );
        }
    }

    #[test]
    fn empty_run_snapshot_round_trips() {
        let snap = Snapshot {
            fingerprint: 1,
            sequence: 0,
            completed: 0,
            n_omega_total: 4,
            accumulated_energy: 0.0,
            warm_start: Mat::zeros(0, 0),
            omega: vec![],
        };
        assert_eq!(decode_snapshot(&encode_snapshot(&snap)).unwrap(), snap);
    }
}
