//! Property-based tests for the checkpoint codec and the two-slot store:
//! arbitrary snapshots round-trip bit-exactly, and injected faults
//! (truncation, bit flips) never produce a wrong snapshot — they either
//! fall back to the older slot or load nothing.

// Test code: panics are failures, and exact float comparisons assert
// bitwise-reproducible results (DESIGN.md §9).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use mbrpa_ckpt::{
    decode_snapshot, encode_snapshot, CheckpointStore, IterRow, OmegaSummary, Snapshot,
};
use mbrpa_linalg::Mat;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mbrpa-ckpt-prop-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed) // ord: Relaxed — unique-id counter, no data published
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Finite or non-finite, negative zero included — the codec must carry
/// every bit pattern the solver can produce.
fn any_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1e12f64..1e12,
        1 => Just(-0.0f64),
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
    ]
}

fn iter_row() -> impl Strategy<Value = IterRow> {
    (
        0u64..100,
        any_f64(),
        any_f64(),
        (any_f64(), any_f64(), any_f64(), any_f64()),
        0.0f64..1e4,
    )
        .prop_map(
            |(ncheb, energy_term, error, (e0, e1, e2, e3), elapsed_s)| IterRow {
                ncheb,
                energy_term,
                error,
                edge_eigs: [e0, e1, e2, e3],
                elapsed_s,
            },
        )
}

fn omega_summary() -> impl Strategy<Value = OmegaSummary> {
    (
        (any_f64(), any_f64(), any_f64(), any_f64(), any_f64()),
        0u64..50,
        any_f64(),
        any::<bool>(),
        proptest::collection::vec(any_f64(), 0..12),
        (0.0f64..1e4, 0.0f64..1e4, 0.0f64..1e4, 0.0f64..1e4),
        proptest::collection::vec(iter_row(), 0..4),
    )
        .prop_map(
            |(
                (omega, weight, unit_node, energy_term, contribution),
                filter_rounds,
                error,
                converged,
                eigenvalues,
                (t0, t1, t2, t3),
                history,
            )| OmegaSummary {
                omega,
                weight,
                unit_node,
                energy_term,
                contribution,
                filter_rounds,
                error,
                converged,
                eigenvalues,
                timings_s: [t0, t1, t2, t3],
                history,
            },
        )
}

fn snapshot() -> impl Strategy<Value = Snapshot> {
    (
        any::<u64>(),
        any::<u64>(),
        (0usize..8, 1usize..6),
        proptest::collection::vec(any_f64(), 0..64),
        proptest::collection::vec(omega_summary(), 0..4),
    )
        .prop_map(|(fingerprint, sequence, (rows, cols), data, omega)| {
            let mut values = data;
            values.resize(rows * cols, 0.0);
            Snapshot {
                fingerprint,
                sequence,
                completed: omega.len() as u64,
                n_omega_total: (omega.len() as u64) + 2,
                accumulated_energy: omega.iter().map(|o| o.contribution).sum(),
                warm_start: Mat::from_col_major(rows, cols, values),
                omega,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity, bit for bit, for any snapshot —
    /// including NaN, ±∞, and −0.0 payloads.
    #[test]
    fn codec_round_trip_is_bit_exact(snap in snapshot()) {
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).unwrap();
        prop_assert_eq!(back.fingerprint, snap.fingerprint);
        prop_assert_eq!(back.sequence, snap.sequence);
        prop_assert_eq!(back.completed, snap.completed);
        prop_assert_eq!(
            back.accumulated_energy.to_bits(),
            snap.accumulated_energy.to_bits()
        );
        prop_assert_eq!(back.warm_start.rows(), snap.warm_start.rows());
        prop_assert_eq!(back.warm_start.cols(), snap.warm_start.cols());
        for (a, b) in back
            .warm_start
            .as_slice()
            .iter()
            .zip(snap.warm_start.as_slice())
        {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(back.omega.len(), snap.omega.len());
        for (a, b) in back.omega.iter().zip(&snap.omega) {
            prop_assert_eq!(a.energy_term.to_bits(), b.energy_term.to_bits());
            prop_assert_eq!(a.eigenvalues.len(), b.eigenvalues.len());
            for (x, y) in a.eigenvalues.iter().zip(&b.eigenvalues) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            prop_assert_eq!(a.history.len(), b.history.len());
        }
    }

    /// Any truncation of a valid frame is rejected — never misdecoded.
    #[test]
    fn truncation_never_decodes(snap in snapshot(), cut in 0.0f64..1.0) {
        let bytes = encode_snapshot(&snap);
        let keep = ((bytes.len() as f64) * cut) as usize;
        prop_assert!(keep < bytes.len());
        prop_assert!(decode_snapshot(&bytes[..keep]).is_err());
    }

    /// Any single flipped bit is caught by the CRC (or the structural
    /// checks) — never silently accepted as different data.
    #[test]
    fn bit_flip_never_decodes_differently(
        snap in snapshot(),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_snapshot(&snap);
        let idx = (((bytes.len() - 1) as f64) * pos) as usize;
        bytes[idx] ^= 1 << bit;
        match decode_snapshot(&bytes) {
            Err(_) => {}
            Ok(back) => prop_assert_eq!(back, snap, "corruption decoded as different data"),
        }
    }

    /// Fault injection on the store: damage the newest slot any way
    /// (truncate or flip a bit) and the load falls back to the older
    /// snapshot instead of failing or returning garbage.
    #[test]
    fn damaged_latest_slot_falls_back(
        snap in snapshot(),
        truncate in any::<bool>(),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = scratch_dir();
        let mut store = CheckpointStore::open(dir.clone()).unwrap();
        let mut older = snap.clone();
        let mut newer = snap.clone();
        newer.accumulated_energy += 1.0;
        store.save(&mut older).unwrap(); // stamps sequence 0
        store.save(&mut newer).unwrap(); // stamps sequence 1

        let latest = store.load_latest().unwrap().unwrap();
        prop_assert_eq!(latest.snapshot.sequence, newer.sequence);
        let victim = store.slot_path(latest.slot);
        let bytes = std::fs::read(&victim).unwrap();
        let damaged = if truncate {
            let keep = (((bytes.len() - 1) as f64) * pos) as usize;
            bytes[..keep].to_vec()
        } else {
            let mut b = bytes;
            let idx = (((b.len() - 1) as f64) * pos) as usize;
            b[idx] ^= 1 << bit;
            b
        };
        std::fs::write(&victim, &damaged).unwrap();

        let reopened = CheckpointStore::open(dir.clone()).unwrap();
        match reopened.load_latest().unwrap() {
            Some(loaded) => {
                // either the damage was caught (fallback to the older
                // snapshot) or — only possible for an undamaging flip —
                // the newest still decodes to exactly what was written
                if loaded.recovered_from_fallback {
                    prop_assert_eq!(loaded.snapshot.completed, older.completed);
                    prop_assert_eq!(loaded.snapshot.sequence, older.sequence);
                } else {
                    prop_assert_eq!(&loaded.snapshot, &newer);
                }
            }
            None => prop_assert!(false, "older slot should have survived"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
