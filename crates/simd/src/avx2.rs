//! AVX2+FMA backend (x86_64).
//!
//! Every function here reproduces the canonical semantics of
//! [`crate::scalar`] bit-for-bit: elementwise ops use one
//! `_mm256_fmadd_pd`/`_mm256_fnmadd_pd` per `f64::mul_add` in the
//! oracle (and plain `_mm256_mul_pd` per plain `*`), and reductions
//! realize the canonical lane layout as register lanes, handle the
//! remainder with the oracle's own scalar formula on the extracted lane
//! state, and finish with the shared folds in [`crate::lanes`].
//!
//! All functions are `unsafe` because of `#[target_feature]`: callers
//! (the dispatch layer in `lib.rs`) must have verified `avx2` and `fma`
//! support at runtime.

#![allow(unsafe_op_in_unsafe_fn)]

use crate::lanes;
use core::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_broadcast_sd, _mm256_castpd_si256, _mm256_cmp_pd,
    _mm256_fmadd_pd, _mm256_fnmadd_pd, _mm256_loadu_pd, _mm256_maskload_pd, _mm256_maskstore_pd,
    _mm256_mul_pd, _mm256_permute_pd, _mm256_set1_pd, _mm256_set_pd, _mm256_setzero_pd,
    _mm256_storeu_pd, _CMP_LT_OQ,
};

/// Swap re/im within each complex pair: `[a, b, c, d] → [b, a, d, c]`.
#[inline]
#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
unsafe fn swap_pairs(v: __m256d) -> __m256d {
    _mm256_permute_pd::<0b0101>(v)
}

// ---------------------------------------------------------------------------
// Elementwise, real coefficients
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn scale_copy(c: f64, x: &[f64], o: &mut [f64]) {
    debug_assert_eq!(x.len(), o.len());
    let n = o.len();
    let n4 = n - n % 4;
    let vc = _mm256_set1_pd(c);
    let (xp, op) = (x.as_ptr(), o.as_mut_ptr());
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n and both slices have length n.
        _mm256_storeu_pd(op.add(i), _mm256_mul_pd(vc, _mm256_loadu_pd(xp.add(i))));
        i += 4;
    }
    for r in n4..n {
        o[r] = c * x[r];
    }
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn axpy(c: f64, x: &[f64], o: &mut [f64]) {
    debug_assert_eq!(x.len(), o.len());
    let n = o.len();
    let n4 = n - n % 4;
    let vc = _mm256_set1_pd(c);
    let (xp, op) = (x.as_ptr(), o.as_mut_ptr());
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n and both slices have length n.
        let ov = _mm256_loadu_pd(op.add(i));
        let xv = _mm256_loadu_pd(xp.add(i));
        _mm256_storeu_pd(op.add(i), _mm256_fmadd_pd(vc, xv, ov));
        i += 4;
    }
    for r in n4..n {
        o[r] = c.mul_add(x[r], o[r]);
    }
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn axpy2(c: f64, p: &[f64], m: &[f64], o: &mut [f64]) {
    debug_assert_eq!(p.len(), o.len());
    debug_assert_eq!(m.len(), o.len());
    let n = o.len();
    let n4 = n - n % 4;
    let vc = _mm256_set1_pd(c);
    let (pp, mp, op) = (p.as_ptr(), m.as_ptr(), o.as_mut_ptr());
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n and all three slices have length n.
        let sum = _mm256_add_pd(_mm256_loadu_pd(pp.add(i)), _mm256_loadu_pd(mp.add(i)));
        let ov = _mm256_loadu_pd(op.add(i));
        _mm256_storeu_pd(op.add(i), _mm256_fmadd_pd(vc, sum, ov));
        i += 4;
    }
    for r in n4..n {
        o[r] = c.mul_add(p[r] + m[r], o[r]);
    }
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn scal(c: f64, x: &mut [f64]) {
    let n = x.len();
    let n4 = n - n % 4;
    let vc = _mm256_set1_pd(c);
    let xp = x.as_mut_ptr();
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n.
        _mm256_storeu_pd(xp.add(i), _mm256_mul_pd(vc, _mm256_loadu_pd(xp.add(i))));
        i += 4;
    }
    for xr in &mut x[n4..] {
        *xr *= c;
    }
}

#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. The wrapper checks the extreme indices (`origin + min offset` and
// `last row end + max offset`) against `src`; every index the sweep forms
// is an affine combination with non-negative coefficients, so it lies
// between those corners and all raw loads/stores stay in bounds.
pub(crate) unsafe fn stencil_rows(
    terms: &[(f64, isize)],
    src: &[f64],
    origin: usize,
    row_stride: usize,
    slab_stride: usize,
    rows_per_slab: usize,
    row_len: usize,
    o: &mut [f64],
) {
    let n = row_len;
    let (w0, off0) = terms[0];
    let rest = &terms[1..];
    let vw0 = _mm256_set1_pd(w0);
    let sp = src.as_ptr();
    let op = o.as_mut_ptr();
    let nrows = o.len() / n;
    let mut slab_base = origin;
    let mut row_in_slab = 0usize;
    let mut base = origin;
    // Every row leaves the same n % 4 remainder, so the tail mask is
    // built once per call.
    let mask = _mm256_castpd_si256(_mm256_cmp_pd::<_CMP_LT_OQ>(
        _mm256_set_pd(3.0, 2.0, 1.0, 0.0),
        _mm256_set1_pd((n % 4) as f64),
    ));
    for rix in 0..nrows {
        // SAFETY: base is in bounds (see function-level argument).
        let rp = sp.add(base);
        let orow = op.add(rix * n);
        // Statically-unrolled register blocks (16-, 8-, then 4-wide):
        // each output element sits in one lane of one named accumulator
        // register for its whole term chain, so the chains interleave
        // (hiding FMA latency) and each per-term coefficient broadcast is
        // shared by the whole block. A dynamic vector count would spill
        // the accumulator array to the stack on every term — the static
        // tiers keep everything in ymm registers. The final `n % 4`
        // elements run one masked vector — disabled lanes load as zero,
        // compute garbage, and are never stored — so no row ever falls
        // back to a scalar loop.
        let mut i = 0usize;
        while i + 16 <= n {
            // SAFETY: i + 16 <= n; base + off is corner-bounded (above).
            let tp = rp.offset(off0).add(i);
            let mut a0 = _mm256_mul_pd(vw0, _mm256_loadu_pd(tp));
            let mut a1 = _mm256_mul_pd(vw0, _mm256_loadu_pd(tp.add(4)));
            let mut a2 = _mm256_mul_pd(vw0, _mm256_loadu_pd(tp.add(8)));
            let mut a3 = _mm256_mul_pd(vw0, _mm256_loadu_pd(tp.add(12)));
            for &(w, off) in rest {
                let vw = _mm256_set1_pd(w);
                let tp = rp.offset(off).add(i);
                a0 = _mm256_fmadd_pd(vw, _mm256_loadu_pd(tp), a0);
                a1 = _mm256_fmadd_pd(vw, _mm256_loadu_pd(tp.add(4)), a1);
                a2 = _mm256_fmadd_pd(vw, _mm256_loadu_pd(tp.add(8)), a2);
                a3 = _mm256_fmadd_pd(vw, _mm256_loadu_pd(tp.add(12)), a3);
            }
            _mm256_storeu_pd(orow.add(i), a0);
            _mm256_storeu_pd(orow.add(i + 4), a1);
            _mm256_storeu_pd(orow.add(i + 8), a2);
            _mm256_storeu_pd(orow.add(i + 12), a3);
            i += 16;
        }
        if i + 8 <= n {
            // SAFETY: i + 8 <= n; base + off is corner-bounded (above).
            let tp = rp.offset(off0).add(i);
            let mut a0 = _mm256_mul_pd(vw0, _mm256_loadu_pd(tp));
            let mut a1 = _mm256_mul_pd(vw0, _mm256_loadu_pd(tp.add(4)));
            for &(w, off) in rest {
                let vw = _mm256_set1_pd(w);
                let tp = rp.offset(off).add(i);
                a0 = _mm256_fmadd_pd(vw, _mm256_loadu_pd(tp), a0);
                a1 = _mm256_fmadd_pd(vw, _mm256_loadu_pd(tp.add(4)), a1);
            }
            _mm256_storeu_pd(orow.add(i), a0);
            _mm256_storeu_pd(orow.add(i + 4), a1);
            i += 8;
        }
        if i + 4 <= n {
            // SAFETY: i + 4 <= n; base + off is corner-bounded (above).
            let mut a0 = _mm256_mul_pd(vw0, _mm256_loadu_pd(rp.offset(off0).add(i)));
            for &(w, off) in rest {
                a0 = _mm256_fmadd_pd(
                    _mm256_set1_pd(w),
                    _mm256_loadu_pd(rp.offset(off).add(i)),
                    a0,
                );
            }
            _mm256_storeu_pd(orow.add(i), a0);
            i += 4;
        }
        if i < n {
            // SAFETY: enabled mask lanes satisfy i + lane < n; base + off
            // is corner-bounded (above).
            let mut a0 = _mm256_mul_pd(vw0, _mm256_maskload_pd(rp.offset(off0).add(i), mask));
            for &(w, off) in rest {
                a0 = _mm256_fmadd_pd(
                    _mm256_set1_pd(w),
                    _mm256_maskload_pd(rp.offset(off).add(i), mask),
                    a0,
                );
            }
            _mm256_maskstore_pd(orow.add(i), mask, a0);
        }
        row_in_slab += 1;
        if row_in_slab == rows_per_slab {
            row_in_slab = 0;
            slab_base += slab_stride;
            base = slab_base;
        } else {
            base += row_stride;
        }
    }
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn axpby(a: f64, b: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = y.len();
    let n4 = n - n % 4;
    let va = _mm256_set1_pd(a);
    let vb = _mm256_set1_pd(b);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n and both slices have length n.
        let by = _mm256_mul_pd(vb, _mm256_loadu_pd(yp.add(i)));
        let xv = _mm256_loadu_pd(xp.add(i));
        _mm256_storeu_pd(yp.add(i), _mm256_fmadd_pd(va, xv, by));
        i += 4;
    }
    for r in n4..n {
        y[r] = a.mul_add(x[r], b * y[r]);
    }
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn shift_scale(s: f64, c: f64, x: &[f64], v: &mut [f64]) {
    debug_assert_eq!(x.len(), v.len());
    let n = v.len();
    let n4 = n - n % 4;
    let vs = _mm256_set1_pd(s);
    let vc = _mm256_set1_pd(c);
    let (xp, vp) = (x.as_ptr(), v.as_mut_ptr());
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n and both slices have length n.
        let vv = _mm256_loadu_pd(vp.add(i));
        let xv = _mm256_loadu_pd(xp.add(i));
        _mm256_storeu_pd(vp.add(i), _mm256_mul_pd(vs, _mm256_fnmadd_pd(vc, xv, vv)));
        i += 4;
    }
    for r in n4..n {
        v[r] = s * (-c).mul_add(x[r], v[r]);
    }
}

#[allow(clippy::many_single_char_names)]
#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn shift_scale_sub(
    s: f64,
    c: f64,
    t: f64,
    y: &[f64],
    xprev: &[f64],
    w: &mut [f64],
) {
    debug_assert_eq!(y.len(), w.len());
    debug_assert_eq!(xprev.len(), w.len());
    let n = w.len();
    let n4 = n - n % 4;
    let vs = _mm256_set1_pd(s);
    let vc = _mm256_set1_pd(c);
    let vt = _mm256_set1_pd(t);
    let (yp, xp, wp) = (y.as_ptr(), xprev.as_ptr(), w.as_mut_ptr());
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n and all three slices have length n.
        let wv = _mm256_loadu_pd(wp.add(i));
        let yv = _mm256_loadu_pd(yp.add(i));
        let xv = _mm256_loadu_pd(xp.add(i));
        let inner = _mm256_mul_pd(vs, _mm256_fnmadd_pd(vc, yv, wv));
        _mm256_storeu_pd(wp.add(i), _mm256_fnmadd_pd(vt, xv, inner));
        i += 4;
    }
    for r in n4..n {
        w[r] = (-t).mul_add(xprev[r], s * (-c).mul_add(y[r], w[r]));
    }
}

// ---------------------------------------------------------------------------
// Elementwise, complex coefficients on interleaved data
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn axpy_c64(ar: f64, ai: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len() % 2, 0);
    let n = y.len();
    let n4 = n - n % 4;
    let var = _mm256_set1_pd(ar);
    // Memory order [-ai, ai, -ai, ai] (set_pd lists high→low lanes).
    let vas = _mm256_set_pd(ai, -ai, ai, -ai);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n and both slices have length n.
        let xv = _mm256_loadu_pd(xp.add(i));
        let yv = _mm256_loadu_pd(yp.add(i));
        let t = _mm256_fmadd_pd(var, xv, yv);
        _mm256_storeu_pd(yp.add(i), _mm256_fmadd_pd(vas, swap_pairs(xv), t));
        i += 4;
    }
    if n4 < n {
        let (xr, xi) = (x[n4], x[n4 + 1]);
        y[n4] = (-ai).mul_add(xi, ar.mul_add(xr, y[n4]));
        y[n4 + 1] = ai.mul_add(xr, ar.mul_add(xi, y[n4 + 1]));
    }
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn axpby_c64(ar: f64, ai: f64, br: f64, bi: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len() % 2, 0);
    let n = y.len();
    let n4 = n - n % 4;
    let var = _mm256_set1_pd(ar);
    let vas = _mm256_set_pd(ai, -ai, ai, -ai);
    let vbr = _mm256_set1_pd(br);
    let vbs = _mm256_set_pd(bi, -bi, bi, -bi);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n and both slices have length n.
        let xv = _mm256_loadu_pd(xp.add(i));
        let yv = _mm256_loadu_pd(yp.add(i));
        let ax = _mm256_fmadd_pd(vas, swap_pairs(xv), _mm256_mul_pd(var, xv));
        let t = _mm256_fmadd_pd(vbs, swap_pairs(yv), ax);
        _mm256_storeu_pd(yp.add(i), _mm256_fmadd_pd(vbr, yv, t));
        i += 4;
    }
    if n4 < n {
        let (xr, xi) = (x[n4], x[n4 + 1]);
        let (yr, yi) = (y[n4], y[n4 + 1]);
        let axr = (-ai).mul_add(xi, ar * xr);
        let axi = ai.mul_add(xr, ar * xi);
        y[n4] = br.mul_add(yr, (-bi).mul_add(yi, axr));
        y[n4 + 1] = br.mul_add(yi, bi.mul_add(yr, axi));
    }
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn scal_c64(ar: f64, ai: f64, x: &mut [f64]) {
    debug_assert_eq!(x.len() % 2, 0);
    let n = x.len();
    let n4 = n - n % 4;
    let var = _mm256_set1_pd(ar);
    let vas = _mm256_set_pd(ai, -ai, ai, -ai);
    let xp = x.as_mut_ptr();
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n.
        let xv = _mm256_loadu_pd(xp.add(i));
        let prod = _mm256_fmadd_pd(vas, swap_pairs(xv), _mm256_mul_pd(var, xv));
        _mm256_storeu_pd(xp.add(i), prod);
        i += 4;
    }
    if n4 < n {
        let (xr, xi) = (x[n4], x[n4 + 1]);
        x[n4] = (-ai).mul_add(xi, ar * xr);
        x[n4 + 1] = ai.mul_add(xr, ar * xi);
    }
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let n8 = n - n % lanes::F64_LANES;
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut i = 0;
    while i < n8 {
        // SAFETY: i + 8 <= n and both slices have length n.
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), acc0);
        acc1 = _mm256_fmadd_pd(
            _mm256_loadu_pd(xp.add(i + 4)),
            _mm256_loadu_pd(yp.add(i + 4)),
            acc1,
        );
        i += 8;
    }
    let mut state = [0.0_f64; lanes::F64_LANES];
    // SAFETY: `state` has room for both 4-lane stores.
    _mm256_storeu_pd(state.as_mut_ptr(), acc0);
    _mm256_storeu_pd(state.as_mut_ptr().add(4), acc1);
    for r in n8..n {
        let l = r % lanes::F64_LANES;
        state[l] = x[r].mul_add(y[r], state[l]);
    }
    lanes::fold(&state)
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn nrm2_sq(x: &[f64]) -> f64 {
    let n = x.len();
    let n8 = n - n % lanes::F64_LANES;
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let xp = x.as_ptr();
    let mut i = 0;
    while i < n8 {
        // SAFETY: i + 8 <= n.
        let v0 = _mm256_loadu_pd(xp.add(i));
        let v1 = _mm256_loadu_pd(xp.add(i + 4));
        acc0 = _mm256_fmadd_pd(v0, v0, acc0);
        acc1 = _mm256_fmadd_pd(v1, v1, acc1);
        i += 8;
    }
    let mut state = [0.0_f64; lanes::F64_LANES];
    // SAFETY: `state` has room for both 4-lane stores.
    _mm256_storeu_pd(state.as_mut_ptr(), acc0);
    _mm256_storeu_pd(state.as_mut_ptr().add(4), acc1);
    for (r, &xr) in x.iter().enumerate().skip(n8) {
        let l = r % lanes::F64_LANES;
        state[l] = xr.mul_add(xr, state[l]);
    }
    lanes::fold(&state)
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
unsafe fn dot_c64_states(
    x: &[f64],
    y: &[f64],
) -> ([f64; 2 * lanes::C64_LANES], [f64; 2 * lanes::C64_LANES]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len() % 2, 0);
    let n = x.len();
    let n8 = n - n % (2 * lanes::C64_LANES);
    let mut p0 = _mm256_setzero_pd();
    let mut p1 = _mm256_setzero_pd();
    let mut q0 = _mm256_setzero_pd();
    let mut q1 = _mm256_setzero_pd();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut i = 0;
    while i < n8 {
        // SAFETY: i + 8 <= n and both slices have length n.
        let xv0 = _mm256_loadu_pd(xp.add(i));
        let yv0 = _mm256_loadu_pd(yp.add(i));
        p0 = _mm256_fmadd_pd(xv0, yv0, p0);
        q0 = _mm256_fmadd_pd(xv0, swap_pairs(yv0), q0);
        let xv1 = _mm256_loadu_pd(xp.add(i + 4));
        let yv1 = _mm256_loadu_pd(yp.add(i + 4));
        p1 = _mm256_fmadd_pd(xv1, yv1, p1);
        q1 = _mm256_fmadd_pd(xv1, swap_pairs(yv1), q1);
        i += 8;
    }
    let mut p = [0.0_f64; 2 * lanes::C64_LANES];
    let mut q = [0.0_f64; 2 * lanes::C64_LANES];
    // SAFETY: `p`/`q` each have room for both 4-lane stores.
    _mm256_storeu_pd(p.as_mut_ptr(), p0);
    _mm256_storeu_pd(p.as_mut_ptr().add(4), p1);
    _mm256_storeu_pd(q.as_mut_ptr(), q0);
    _mm256_storeu_pd(q.as_mut_ptr().add(4), q1);
    let mut j = n8 / 2;
    while j < n / 2 {
        let l = 2 * (j % lanes::C64_LANES);
        let (xr, xi) = (x[2 * j], x[2 * j + 1]);
        let (yr, yi) = (y[2 * j], y[2 * j + 1]);
        p[l] = xr.mul_add(yr, p[l]);
        p[l + 1] = xi.mul_add(yi, p[l + 1]);
        q[l] = xr.mul_add(yi, q[l]);
        q[l + 1] = xi.mul_add(yr, q[l + 1]);
        j += 1;
    }
    (p, q)
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn dot_t_c64(x: &[f64], y: &[f64]) -> (f64, f64) {
    let (p, q) = dot_c64_states(x, y);
    lanes::combine_t(&p, &q)
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn dot_h_c64(x: &[f64], y: &[f64]) -> (f64, f64) {
    let (p, q) = dot_c64_states(x, y);
    lanes::combine_h(&p, &q)
}

// ---------------------------------------------------------------------------
// GEMM microkernels
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn gemm_f64_8x4(k: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; 32]) {
    debug_assert!(ap.len() >= 8 * k);
    debug_assert!(bp.len() >= 4 * k);
    let accp = acc.as_mut_ptr();
    // SAFETY: `acc` is exactly 32 f64s; offsets 0..28 stay in bounds.
    let mut c00 = _mm256_loadu_pd(accp);
    let mut c01 = _mm256_loadu_pd(accp.add(4));
    let mut c10 = _mm256_loadu_pd(accp.add(8));
    let mut c11 = _mm256_loadu_pd(accp.add(12));
    let mut c20 = _mm256_loadu_pd(accp.add(16));
    let mut c21 = _mm256_loadu_pd(accp.add(20));
    let mut c30 = _mm256_loadu_pd(accp.add(24));
    let mut c31 = _mm256_loadu_pd(accp.add(28));
    let app = ap.as_ptr();
    let bpp = bp.as_ptr();
    for p in 0..k {
        // SAFETY: panel bounds checked by the debug_asserts above; the
        // packing layer always provides full 8-tall / 4-wide panels.
        let a0 = _mm256_loadu_pd(app.add(8 * p));
        let a1 = _mm256_loadu_pd(app.add(8 * p + 4));
        let b0 = _mm256_broadcast_sd(&*bpp.add(4 * p));
        c00 = _mm256_fmadd_pd(a0, b0, c00);
        c01 = _mm256_fmadd_pd(a1, b0, c01);
        let b1 = _mm256_broadcast_sd(&*bpp.add(4 * p + 1));
        c10 = _mm256_fmadd_pd(a0, b1, c10);
        c11 = _mm256_fmadd_pd(a1, b1, c11);
        let b2 = _mm256_broadcast_sd(&*bpp.add(4 * p + 2));
        c20 = _mm256_fmadd_pd(a0, b2, c20);
        c21 = _mm256_fmadd_pd(a1, b2, c21);
        let b3 = _mm256_broadcast_sd(&*bpp.add(4 * p + 3));
        c30 = _mm256_fmadd_pd(a0, b3, c30);
        c31 = _mm256_fmadd_pd(a1, b3, c31);
    }
    // SAFETY: same bounds as the loads above.
    _mm256_storeu_pd(accp, c00);
    _mm256_storeu_pd(accp.add(4), c01);
    _mm256_storeu_pd(accp.add(8), c10);
    _mm256_storeu_pd(accp.add(12), c11);
    _mm256_storeu_pd(accp.add(16), c20);
    _mm256_storeu_pd(accp.add(20), c21);
    _mm256_storeu_pd(accp.add(24), c30);
    _mm256_storeu_pd(accp.add(28), c31);
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn gemm_c64_4x4(k: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; 32]) {
    debug_assert!(ap.len() >= 8 * k);
    debug_assert!(bp.len() >= 8 * k);
    let accp = acc.as_mut_ptr();
    // SAFETY: `acc` is exactly 32 f64s; column j lives at 8j (re) / 8j+4 (im).
    let mut cr0 = _mm256_loadu_pd(accp);
    let mut ci0 = _mm256_loadu_pd(accp.add(4));
    let mut cr1 = _mm256_loadu_pd(accp.add(8));
    let mut ci1 = _mm256_loadu_pd(accp.add(12));
    let mut cr2 = _mm256_loadu_pd(accp.add(16));
    let mut ci2 = _mm256_loadu_pd(accp.add(20));
    let mut cr3 = _mm256_loadu_pd(accp.add(24));
    let mut ci3 = _mm256_loadu_pd(accp.add(28));
    let app = ap.as_ptr();
    let bpp = bp.as_ptr();
    for p in 0..k {
        // SAFETY: split panels hold [re×4 | im×4] per depth step; bounds
        // follow from the debug_asserts above.
        let arv = _mm256_loadu_pd(app.add(8 * p));
        let aiv = _mm256_loadu_pd(app.add(8 * p + 4));
        let br0 = _mm256_broadcast_sd(&*bpp.add(8 * p));
        let bi0 = _mm256_broadcast_sd(&*bpp.add(8 * p + 4));
        cr0 = _mm256_fnmadd_pd(aiv, bi0, _mm256_fmadd_pd(arv, br0, cr0));
        ci0 = _mm256_fmadd_pd(aiv, br0, _mm256_fmadd_pd(arv, bi0, ci0));
        let br1 = _mm256_broadcast_sd(&*bpp.add(8 * p + 1));
        let bi1 = _mm256_broadcast_sd(&*bpp.add(8 * p + 5));
        cr1 = _mm256_fnmadd_pd(aiv, bi1, _mm256_fmadd_pd(arv, br1, cr1));
        ci1 = _mm256_fmadd_pd(aiv, br1, _mm256_fmadd_pd(arv, bi1, ci1));
        let br2 = _mm256_broadcast_sd(&*bpp.add(8 * p + 2));
        let bi2 = _mm256_broadcast_sd(&*bpp.add(8 * p + 6));
        cr2 = _mm256_fnmadd_pd(aiv, bi2, _mm256_fmadd_pd(arv, br2, cr2));
        ci2 = _mm256_fmadd_pd(aiv, br2, _mm256_fmadd_pd(arv, bi2, ci2));
        let br3 = _mm256_broadcast_sd(&*bpp.add(8 * p + 3));
        let bi3 = _mm256_broadcast_sd(&*bpp.add(8 * p + 7));
        cr3 = _mm256_fnmadd_pd(aiv, bi3, _mm256_fmadd_pd(arv, br3, cr3));
        ci3 = _mm256_fmadd_pd(aiv, br3, _mm256_fmadd_pd(arv, bi3, ci3));
    }
    // SAFETY: same bounds as the loads above.
    _mm256_storeu_pd(accp, cr0);
    _mm256_storeu_pd(accp.add(4), ci0);
    _mm256_storeu_pd(accp.add(8), cr1);
    _mm256_storeu_pd(accp.add(12), ci1);
    _mm256_storeu_pd(accp.add(16), cr2);
    _mm256_storeu_pd(accp.add(20), ci2);
    _mm256_storeu_pd(accp.add(24), cr3);
    _mm256_storeu_pd(accp.add(28), ci3);
}

// ---------------------------------------------------------------------------
// Gram tiles
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn gram2x4_f64(
    a0: &[f64],
    a1: &[f64],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
    out: &mut [f64; 8],
) {
    let k = a0.len();
    debug_assert!(
        a1.len() == k && b0.len() == k && b1.len() == k && b2.len() == k && b3.len() == k
    );
    let k4 = k - k % lanes::GRAM_F64_LANES;
    let mut s = [_mm256_setzero_pd(); 8];
    let ap = [a0.as_ptr(), a1.as_ptr()];
    let bp = [b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr()];
    let mut p = 0;
    while p < k4 {
        // SAFETY: p + 4 <= k and every slice has length k.
        let av0 = _mm256_loadu_pd(ap[0].add(p));
        let av1 = _mm256_loadu_pd(ap[1].add(p));
        for j in 0..4 {
            let bv = _mm256_loadu_pd(bp[j].add(p));
            s[2 * j] = _mm256_fmadd_pd(av0, bv, s[2 * j]);
            s[2 * j + 1] = _mm256_fmadd_pd(av1, bv, s[2 * j + 1]);
        }
        p += 4;
    }
    let mut state = [[0.0_f64; lanes::GRAM_F64_LANES]; 8];
    for (arr, acc) in state.iter_mut().zip(s.iter()) {
        // SAFETY: each lane array holds exactly 4 f64s.
        _mm256_storeu_pd(arr.as_mut_ptr(), *acc);
    }
    let a = [a0, a1];
    let b = [b0, b1, b2, b3];
    for r in k4..k {
        let l = r % lanes::GRAM_F64_LANES;
        for j in 0..4 {
            let bv = b[j][r];
            for i in 0..2 {
                let st = &mut state[2 * j + i][l];
                *st = a[i][r].mul_add(bv, *st);
            }
        }
    }
    for (o, arr) in out.iter_mut().zip(state.iter()) {
        *o = lanes::fold(arr);
    }
}

#[target_feature(enable = "avx2,fma")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee AVX2+FMA
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn gram2_c64(
    conj: bool,
    a0: &[f64],
    a1: &[f64],
    b0: &[f64],
    b1: &[f64],
    out: &mut [f64; 8],
) {
    let n = a0.len();
    debug_assert_eq!(n % 2, 0);
    debug_assert!(a1.len() == n && b0.len() == n && b1.len() == n);
    let kc = n / 2;
    let kc2 = kc - kc % lanes::GRAM_C64_LANES;
    let mut pv = [_mm256_setzero_pd(); 4];
    let mut qv = [_mm256_setzero_pd(); 4];
    let ap = [a0.as_ptr(), a1.as_ptr()];
    let bp = [b0.as_ptr(), b1.as_ptr()];
    let mut pc = 0;
    while pc < kc2 {
        let f = 2 * pc;
        // SAFETY: f + 4 <= n and every slice has length n.
        let av0 = _mm256_loadu_pd(ap[0].add(f));
        let av1 = _mm256_loadu_pd(ap[1].add(f));
        for j in 0..2 {
            let bv = _mm256_loadu_pd(bp[j].add(f));
            let bs = swap_pairs(bv);
            pv[2 * j] = _mm256_fmadd_pd(av0, bv, pv[2 * j]);
            qv[2 * j] = _mm256_fmadd_pd(av0, bs, qv[2 * j]);
            pv[2 * j + 1] = _mm256_fmadd_pd(av1, bv, pv[2 * j + 1]);
            qv[2 * j + 1] = _mm256_fmadd_pd(av1, bs, qv[2 * j + 1]);
        }
        pc += lanes::GRAM_C64_LANES;
    }
    let mut ps = [[0.0_f64; 2 * lanes::GRAM_C64_LANES]; 4];
    let mut qs = [[0.0_f64; 2 * lanes::GRAM_C64_LANES]; 4];
    for idx in 0..4 {
        // SAFETY: each lane array holds exactly 4 f64s.
        _mm256_storeu_pd(ps[idx].as_mut_ptr(), pv[idx]);
        _mm256_storeu_pd(qs[idx].as_mut_ptr(), qv[idx]);
    }
    let a = [a0, a1];
    let b = [b0, b1];
    for r in kc2..kc {
        let l = 2 * (r % lanes::GRAM_C64_LANES);
        for j in 0..2 {
            let (yr, yi) = (b[j][2 * r], b[j][2 * r + 1]);
            for i in 0..2 {
                let (xr, xi) = (a[i][2 * r], a[i][2 * r + 1]);
                let s = &mut ps[2 * j + i];
                s[l] = xr.mul_add(yr, s[l]);
                s[l + 1] = xi.mul_add(yi, s[l + 1]);
                let t = &mut qs[2 * j + i];
                t[l] = xr.mul_add(yi, t[l]);
                t[l + 1] = xi.mul_add(yr, t[l + 1]);
            }
        }
    }
    for idx in 0..4 {
        let (re, im) = if conj {
            lanes::combine_h(&ps[idx], &qs[idx])
        } else {
            lanes::combine_t(&ps[idx], &qs[idx])
        };
        out[2 * idx] = re;
        out[2 * idx + 1] = im;
    }
}
