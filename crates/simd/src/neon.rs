//! NEON backend (aarch64).
//!
//! Mirrors the canonical semantics of [`crate::scalar`] bit-for-bit with
//! 2-wide f64 vectors: `vfmaq_f64`/`vfmsq_f64` realize every
//! `f64::mul_add` in the oracle (NEON f64 FMA is a single rounding), and
//! reductions keep the canonical 8-lane (real) / 4-complex-lane layout
//! as groups of four / two registers, finishing with the shared folds in
//! [`crate::lanes`]. NEON is a baseline feature of aarch64, so dispatch
//! always offers it there; functions stay `unsafe` for symmetry with the
//! AVX2 backend and because of the raw-pointer loads.

#![allow(unsafe_op_in_unsafe_fn)]

use crate::lanes;
use core::arch::aarch64::{
    float64x2_t, vaddq_f64, vdupq_n_f64, vextq_f64, vfmaq_f64, vfmsq_f64, vld1q_f64, vmulq_f64,
    vst1q_f64,
};

/// Swap re/im within the complex pair held by one register.
#[inline]
#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
unsafe fn swap_pair(v: float64x2_t) -> float64x2_t {
    vextq_f64::<1>(v, v)
}

// ---------------------------------------------------------------------------
// Elementwise, real coefficients
// ---------------------------------------------------------------------------

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn scale_copy(c: f64, x: &[f64], o: &mut [f64]) {
    debug_assert_eq!(x.len(), o.len());
    let n = o.len();
    let n2 = n - n % 2;
    let vc = vdupq_n_f64(c);
    let (xp, op) = (x.as_ptr(), o.as_mut_ptr());
    let mut i = 0;
    while i < n2 {
        // SAFETY: i + 2 <= n and both slices have length n.
        vst1q_f64(op.add(i), vmulq_f64(vc, vld1q_f64(xp.add(i))));
        i += 2;
    }
    for r in n2..n {
        o[r] = c * x[r];
    }
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn axpy(c: f64, x: &[f64], o: &mut [f64]) {
    debug_assert_eq!(x.len(), o.len());
    let n = o.len();
    let n2 = n - n % 2;
    let vc = vdupq_n_f64(c);
    let (xp, op) = (x.as_ptr(), o.as_mut_ptr());
    let mut i = 0;
    while i < n2 {
        // SAFETY: i + 2 <= n and both slices have length n.
        let ov = vld1q_f64(op.add(i));
        vst1q_f64(op.add(i), vfmaq_f64(ov, vc, vld1q_f64(xp.add(i))));
        i += 2;
    }
    for r in n2..n {
        o[r] = c.mul_add(x[r], o[r]);
    }
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn axpy2(c: f64, p: &[f64], m: &[f64], o: &mut [f64]) {
    debug_assert_eq!(p.len(), o.len());
    debug_assert_eq!(m.len(), o.len());
    let n = o.len();
    let n2 = n - n % 2;
    let vc = vdupq_n_f64(c);
    let (pp, mp, op) = (p.as_ptr(), m.as_ptr(), o.as_mut_ptr());
    let mut i = 0;
    while i < n2 {
        // SAFETY: i + 2 <= n and all three slices have length n.
        let sum = vaddq_f64(vld1q_f64(pp.add(i)), vld1q_f64(mp.add(i)));
        let ov = vld1q_f64(op.add(i));
        vst1q_f64(op.add(i), vfmaq_f64(ov, vc, sum));
        i += 2;
    }
    for r in n2..n {
        o[r] = c.mul_add(p[r] + m[r], o[r]);
    }
}

#[target_feature(enable = "neon")]
#[allow(clippy::too_many_arguments)]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. The wrapper checks the extreme indices (`origin + min offset` and
// `last row end + max offset`) against `src`; every index the sweep forms
// is an affine combination with non-negative coefficients, so it lies
// between those corners and all raw loads/stores stay in bounds.
pub(crate) unsafe fn stencil_rows(
    terms: &[(f64, isize)],
    src: &[f64],
    origin: usize,
    row_stride: usize,
    slab_stride: usize,
    rows_per_slab: usize,
    row_len: usize,
    o: &mut [f64],
) {
    let n = row_len;
    let (w0, off0) = terms[0];
    let rest = &terms[1..];
    let vw0 = vdupq_n_f64(w0);
    let sp = src.as_ptr();
    let op = o.as_mut_ptr();
    let nrows = o.len() / n;
    let mut slab_base = origin;
    let mut row_in_slab = 0usize;
    let mut base = origin;
    for rix in 0..nrows {
        // SAFETY: base is in bounds (see function-level argument).
        let rp = sp.add(base);
        let orow = op.add(rix * n);
        // Blocks of four 2-lane accumulators: the four FMA chains
        // interleave (hiding FMA latency) and each per-term coefficient
        // broadcast is shared by all four vectors. The < 8 remainder runs
        // 2-wide, then at most one element scalar — `mul_add` is the same
        // fused operation per lane, so the chain stays bit-identical.
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n and base + off is corner-bounded.
            let tp = rp.offset(off0).add(i);
            let mut acc = [
                vmulq_f64(vw0, vld1q_f64(tp)),
                vmulq_f64(vw0, vld1q_f64(tp.add(2))),
                vmulq_f64(vw0, vld1q_f64(tp.add(4))),
                vmulq_f64(vw0, vld1q_f64(tp.add(6))),
            ];
            for &(w, off) in rest {
                let vw = vdupq_n_f64(w);
                let tp = rp.offset(off).add(i);
                for (v, a) in acc.iter_mut().enumerate() {
                    *a = vfmaq_f64(*a, vw, vld1q_f64(tp.add(2 * v)));
                }
            }
            for (v, a) in acc.iter().enumerate() {
                vst1q_f64(orow.add(i + 2 * v), *a);
            }
            i += 8;
        }
        while i + 2 <= n {
            // SAFETY: i + 2 <= n and base + off is corner-bounded.
            let mut a = vmulq_f64(vw0, vld1q_f64(rp.offset(off0).add(i)));
            for &(w, off) in rest {
                a = vfmaq_f64(a, vdupq_n_f64(w), vld1q_f64(rp.offset(off).add(i)));
            }
            vst1q_f64(orow.add(i), a);
            i += 2;
        }
        if i < n {
            let p = (base + i) as isize;
            // SAFETY: the final element's indices are corner-bounded.
            let mut acc = w0 * *sp.offset(p + off0);
            for &(w, off) in rest {
                acc = w.mul_add(*sp.offset(p + off), acc);
            }
            *orow.add(i) = acc;
        }
        row_in_slab += 1;
        if row_in_slab == rows_per_slab {
            row_in_slab = 0;
            slab_base += slab_stride;
            base = slab_base;
        } else {
            base += row_stride;
        }
    }
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn scal(c: f64, x: &mut [f64]) {
    let n = x.len();
    let n2 = n - n % 2;
    let vc = vdupq_n_f64(c);
    let xp = x.as_mut_ptr();
    let mut i = 0;
    while i < n2 {
        // SAFETY: i + 2 <= n.
        vst1q_f64(xp.add(i), vmulq_f64(vc, vld1q_f64(xp.add(i))));
        i += 2;
    }
    for r in n2..n {
        x[r] *= c;
    }
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn axpby(a: f64, b: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = y.len();
    let n2 = n - n % 2;
    let va = vdupq_n_f64(a);
    let vb = vdupq_n_f64(b);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i < n2 {
        // SAFETY: i + 2 <= n and both slices have length n.
        let by = vmulq_f64(vb, vld1q_f64(yp.add(i)));
        vst1q_f64(yp.add(i), vfmaq_f64(by, va, vld1q_f64(xp.add(i))));
        i += 2;
    }
    for r in n2..n {
        y[r] = a.mul_add(x[r], b * y[r]);
    }
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn shift_scale(s: f64, c: f64, x: &[f64], v: &mut [f64]) {
    debug_assert_eq!(x.len(), v.len());
    let n = v.len();
    let n2 = n - n % 2;
    let vs = vdupq_n_f64(s);
    let vc = vdupq_n_f64(c);
    let (xp, vp) = (x.as_ptr(), v.as_mut_ptr());
    let mut i = 0;
    while i < n2 {
        // SAFETY: i + 2 <= n and both slices have length n.
        let vv = vld1q_f64(vp.add(i));
        let xv = vld1q_f64(xp.add(i));
        vst1q_f64(vp.add(i), vmulq_f64(vs, vfmsq_f64(vv, vc, xv)));
        i += 2;
    }
    for r in n2..n {
        v[r] = s * (-c).mul_add(x[r], v[r]);
    }
}

#[allow(clippy::many_single_char_names)]
#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn shift_scale_sub(
    s: f64,
    c: f64,
    t: f64,
    y: &[f64],
    xprev: &[f64],
    w: &mut [f64],
) {
    debug_assert_eq!(y.len(), w.len());
    debug_assert_eq!(xprev.len(), w.len());
    let n = w.len();
    let n2 = n - n % 2;
    let vs = vdupq_n_f64(s);
    let vc = vdupq_n_f64(c);
    let vt = vdupq_n_f64(t);
    let (yp, xp, wp) = (y.as_ptr(), xprev.as_ptr(), w.as_mut_ptr());
    let mut i = 0;
    while i < n2 {
        // SAFETY: i + 2 <= n and all three slices have length n.
        let wv = vld1q_f64(wp.add(i));
        let yv = vld1q_f64(yp.add(i));
        let xv = vld1q_f64(xp.add(i));
        let inner = vmulq_f64(vs, vfmsq_f64(wv, vc, yv));
        vst1q_f64(wp.add(i), vfmsq_f64(inner, vt, xv));
        i += 2;
    }
    for r in n2..n {
        w[r] = (-t).mul_add(xprev[r], s * (-c).mul_add(y[r], w[r]));
    }
}

// ---------------------------------------------------------------------------
// Elementwise, complex coefficients on interleaved data
// ---------------------------------------------------------------------------

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
unsafe fn signed_pair(v: f64) -> float64x2_t {
    let arr = [-v, v];
    // SAFETY: `arr` holds exactly 2 f64s.
    vld1q_f64(arr.as_ptr())
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn axpy_c64(ar: f64, ai: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len() % 2, 0);
    let n = y.len();
    let var = vdupq_n_f64(ar);
    let vas = signed_pair(ai);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i < n {
        // SAFETY: i + 2 <= n (n is even) and both slices have length n.
        let xv = vld1q_f64(xp.add(i));
        let yv = vld1q_f64(yp.add(i));
        let t = vfmaq_f64(yv, var, xv);
        vst1q_f64(yp.add(i), vfmaq_f64(t, vas, swap_pair(xv)));
        i += 2;
    }
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn axpby_c64(ar: f64, ai: f64, br: f64, bi: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len() % 2, 0);
    let n = y.len();
    let var = vdupq_n_f64(ar);
    let vas = signed_pair(ai);
    let vbr = vdupq_n_f64(br);
    let vbs = signed_pair(bi);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i < n {
        // SAFETY: i + 2 <= n (n is even) and both slices have length n.
        let xv = vld1q_f64(xp.add(i));
        let yv = vld1q_f64(yp.add(i));
        let ax = vfmaq_f64(vmulq_f64(var, xv), vas, swap_pair(xv));
        let t = vfmaq_f64(ax, vbs, swap_pair(yv));
        vst1q_f64(yp.add(i), vfmaq_f64(t, vbr, yv));
        i += 2;
    }
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn scal_c64(ar: f64, ai: f64, x: &mut [f64]) {
    debug_assert_eq!(x.len() % 2, 0);
    let n = x.len();
    let var = vdupq_n_f64(ar);
    let vas = signed_pair(ai);
    let xp = x.as_mut_ptr();
    let mut i = 0;
    while i < n {
        // SAFETY: i + 2 <= n (n is even).
        let xv = vld1q_f64(xp.add(i));
        vst1q_f64(xp.add(i), vfmaq_f64(vmulq_f64(var, xv), vas, swap_pair(xv)));
        i += 2;
    }
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let n8 = n - n % lanes::F64_LANES;
    let mut acc = [vdupq_n_f64(0.0); 4];
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut i = 0;
    while i < n8 {
        for (h, a) in acc.iter_mut().enumerate() {
            // SAFETY: i + 8 <= n and both slices have length n.
            *a = vfmaq_f64(
                *a,
                vld1q_f64(xp.add(i + 2 * h)),
                vld1q_f64(yp.add(i + 2 * h)),
            );
        }
        i += 8;
    }
    let mut state = [0.0_f64; lanes::F64_LANES];
    for (h, a) in acc.iter().enumerate() {
        // SAFETY: `state` has room for all four 2-lane stores.
        vst1q_f64(state.as_mut_ptr().add(2 * h), *a);
    }
    for r in n8..n {
        let l = r % lanes::F64_LANES;
        state[l] = x[r].mul_add(y[r], state[l]);
    }
    lanes::fold(&state)
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn nrm2_sq(x: &[f64]) -> f64 {
    let n = x.len();
    let n8 = n - n % lanes::F64_LANES;
    let mut acc = [vdupq_n_f64(0.0); 4];
    let xp = x.as_ptr();
    let mut i = 0;
    while i < n8 {
        for (h, a) in acc.iter_mut().enumerate() {
            // SAFETY: i + 8 <= n.
            let v = vld1q_f64(xp.add(i + 2 * h));
            *a = vfmaq_f64(*a, v, v);
        }
        i += 8;
    }
    let mut state = [0.0_f64; lanes::F64_LANES];
    for (h, a) in acc.iter().enumerate() {
        // SAFETY: `state` has room for all four 2-lane stores.
        vst1q_f64(state.as_mut_ptr().add(2 * h), *a);
    }
    for r in n8..n {
        let l = r % lanes::F64_LANES;
        state[l] = x[r].mul_add(x[r], state[l]);
    }
    lanes::fold(&state)
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
unsafe fn dot_c64_states(
    x: &[f64],
    y: &[f64],
) -> ([f64; 2 * lanes::C64_LANES], [f64; 2 * lanes::C64_LANES]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len() % 2, 0);
    let n = x.len();
    let n8 = n - n % (2 * lanes::C64_LANES);
    let mut pv = [vdupq_n_f64(0.0); 4];
    let mut qv = [vdupq_n_f64(0.0); 4];
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut i = 0;
    while i < n8 {
        for h in 0..4 {
            // SAFETY: i + 8 <= n and both slices have length n.
            let xv = vld1q_f64(xp.add(i + 2 * h));
            let yv = vld1q_f64(yp.add(i + 2 * h));
            pv[h] = vfmaq_f64(pv[h], xv, yv);
            qv[h] = vfmaq_f64(qv[h], xv, swap_pair(yv));
        }
        i += 8;
    }
    let mut p = [0.0_f64; 2 * lanes::C64_LANES];
    let mut q = [0.0_f64; 2 * lanes::C64_LANES];
    for h in 0..4 {
        // SAFETY: `p`/`q` have room for all four 2-lane stores.
        vst1q_f64(p.as_mut_ptr().add(2 * h), pv[h]);
        vst1q_f64(q.as_mut_ptr().add(2 * h), qv[h]);
    }
    let mut j = n8 / 2;
    while j < n / 2 {
        let l = 2 * (j % lanes::C64_LANES);
        let (xr, xi) = (x[2 * j], x[2 * j + 1]);
        let (yr, yi) = (y[2 * j], y[2 * j + 1]);
        p[l] = xr.mul_add(yr, p[l]);
        p[l + 1] = xi.mul_add(yi, p[l + 1]);
        q[l] = xr.mul_add(yi, q[l]);
        q[l + 1] = xi.mul_add(yr, q[l + 1]);
        j += 1;
    }
    (p, q)
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn dot_t_c64(x: &[f64], y: &[f64]) -> (f64, f64) {
    let (p, q) = dot_c64_states(x, y);
    lanes::combine_t(&p, &q)
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn dot_h_c64(x: &[f64], y: &[f64]) -> (f64, f64) {
    let (p, q) = dot_c64_states(x, y);
    lanes::combine_h(&p, &q)
}

// ---------------------------------------------------------------------------
// GEMM microkernels
// ---------------------------------------------------------------------------

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn gemm_f64_8x4(k: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; 32]) {
    debug_assert!(ap.len() >= 8 * k);
    debug_assert!(bp.len() >= 4 * k);
    let accp = acc.as_mut_ptr();
    let mut c = [vdupq_n_f64(0.0); 16];
    for (h, cv) in c.iter_mut().enumerate() {
        // SAFETY: `acc` is exactly 32 f64s.
        *cv = vld1q_f64(accp.add(2 * h));
    }
    let app = ap.as_ptr();
    let bpp = bp.as_ptr();
    for p in 0..k {
        let mut a = [vdupq_n_f64(0.0); 4];
        for (h, av) in a.iter_mut().enumerate() {
            // SAFETY: panel bounds checked by the debug_asserts above.
            *av = vld1q_f64(app.add(8 * p + 2 * h));
        }
        for j in 0..4 {
            // SAFETY: 4 * p + j < 4 * k <= bp.len().
            let bj = vdupq_n_f64(*bpp.add(4 * p + j));
            for h in 0..4 {
                c[4 * j + h] = vfmaq_f64(c[4 * j + h], a[h], bj);
            }
        }
    }
    for (h, cv) in c.iter().enumerate() {
        // SAFETY: same bounds as the loads above.
        vst1q_f64(accp.add(2 * h), *cv);
    }
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn gemm_c64_4x4(k: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; 32]) {
    debug_assert!(ap.len() >= 8 * k);
    debug_assert!(bp.len() >= 8 * k);
    let accp = acc.as_mut_ptr();
    let mut c = [vdupq_n_f64(0.0); 16];
    for (h, cv) in c.iter_mut().enumerate() {
        // SAFETY: `acc` is exactly 32 f64s.
        *cv = vld1q_f64(accp.add(2 * h));
    }
    let app = ap.as_ptr();
    let bpp = bp.as_ptr();
    for p in 0..k {
        // SAFETY: split panels hold [re×4 | im×4] per depth step.
        let ar0 = vld1q_f64(app.add(8 * p));
        let ar1 = vld1q_f64(app.add(8 * p + 2));
        let ai0 = vld1q_f64(app.add(8 * p + 4));
        let ai1 = vld1q_f64(app.add(8 * p + 6));
        for j in 0..4 {
            // SAFETY: 8 * p + 4 + j < 8 * k <= bp.len().
            let brj = vdupq_n_f64(*bpp.add(8 * p + j));
            let bij = vdupq_n_f64(*bpp.add(8 * p + 4 + j));
            // Column j: c[4j..4j+2] = re halves, c[4j+2..4j+4] = im halves.
            c[4 * j] = vfmsq_f64(vfmaq_f64(c[4 * j], ar0, brj), ai0, bij);
            c[4 * j + 1] = vfmsq_f64(vfmaq_f64(c[4 * j + 1], ar1, brj), ai1, bij);
            c[4 * j + 2] = vfmaq_f64(vfmaq_f64(c[4 * j + 2], ar0, bij), ai0, brj);
            c[4 * j + 3] = vfmaq_f64(vfmaq_f64(c[4 * j + 3], ar1, bij), ai1, brj);
        }
    }
    for (h, cv) in c.iter().enumerate() {
        // SAFETY: same bounds as the loads above.
        vst1q_f64(accp.add(2 * h), *cv);
    }
}

// ---------------------------------------------------------------------------
// Gram tiles
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn gram2x4_f64(
    a0: &[f64],
    a1: &[f64],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
    out: &mut [f64; 8],
) {
    let k = a0.len();
    debug_assert!(
        a1.len() == k && b0.len() == k && b1.len() == k && b2.len() == k && b3.len() == k
    );
    let k4 = k - k % lanes::GRAM_F64_LANES;
    // Pair (i, j): registers s[2 * (2 * j + i)] (lanes 0–1) and + 1 (lanes 2–3).
    let mut s = [vdupq_n_f64(0.0); 16];
    let ap = [a0.as_ptr(), a1.as_ptr()];
    let bp = [b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr()];
    let mut p = 0;
    while p < k4 {
        // SAFETY: p + 4 <= k and every slice has length k.
        let av = [
            vld1q_f64(ap[0].add(p)),
            vld1q_f64(ap[0].add(p + 2)),
            vld1q_f64(ap[1].add(p)),
            vld1q_f64(ap[1].add(p + 2)),
        ];
        for j in 0..4 {
            let bv0 = vld1q_f64(bp[j].add(p));
            let bv1 = vld1q_f64(bp[j].add(p + 2));
            for i in 0..2 {
                let base = 2 * (2 * j + i);
                s[base] = vfmaq_f64(s[base], av[2 * i], bv0);
                s[base + 1] = vfmaq_f64(s[base + 1], av[2 * i + 1], bv1);
            }
        }
        p += 4;
    }
    let mut state = [[0.0_f64; lanes::GRAM_F64_LANES]; 8];
    for (idx, arr) in state.iter_mut().enumerate() {
        // SAFETY: each lane array holds exactly 4 f64s.
        vst1q_f64(arr.as_mut_ptr(), s[2 * idx]);
        vst1q_f64(arr.as_mut_ptr().add(2), s[2 * idx + 1]);
    }
    let a = [a0, a1];
    let b = [b0, b1, b2, b3];
    for r in k4..k {
        let l = r % lanes::GRAM_F64_LANES;
        for j in 0..4 {
            let bv = b[j][r];
            for i in 0..2 {
                let st = &mut state[2 * j + i][l];
                *st = a[i][r].mul_add(bv, *st);
            }
        }
    }
    for (o, arr) in out.iter_mut().zip(state.iter()) {
        *o = lanes::fold(arr);
    }
}

#[target_feature(enable = "neon")]
// SAFETY: `#[target_feature]` fn — the caller must guarantee NEON
// support; `dispatch_on!` only routes here when `available()` reported
// it. All memory access goes through safe slices.
pub(crate) unsafe fn gram2_c64(
    conj: bool,
    a0: &[f64],
    a1: &[f64],
    b0: &[f64],
    b1: &[f64],
    out: &mut [f64; 8],
) {
    let n = a0.len();
    debug_assert_eq!(n % 2, 0);
    debug_assert!(a1.len() == n && b0.len() == n && b1.len() == n);
    let kc = n / 2;
    let kc2 = kc - kc % lanes::GRAM_C64_LANES;
    // Pair (i, j): registers [2 * (2 * j + i)] (complex lane 0) and + 1 (lane 1).
    let mut pv = [vdupq_n_f64(0.0); 8];
    let mut qv = [vdupq_n_f64(0.0); 8];
    let ap = [a0.as_ptr(), a1.as_ptr()];
    let bp = [b0.as_ptr(), b1.as_ptr()];
    let mut pc = 0;
    while pc < kc2 {
        let f = 2 * pc;
        // SAFETY: f + 4 <= n and every slice has length n.
        let av = [
            vld1q_f64(ap[0].add(f)),
            vld1q_f64(ap[0].add(f + 2)),
            vld1q_f64(ap[1].add(f)),
            vld1q_f64(ap[1].add(f + 2)),
        ];
        for j in 0..2 {
            let bv0 = vld1q_f64(bp[j].add(f));
            let bv1 = vld1q_f64(bp[j].add(f + 2));
            let bs0 = swap_pair(bv0);
            let bs1 = swap_pair(bv1);
            for i in 0..2 {
                let base = 2 * (2 * j + i);
                pv[base] = vfmaq_f64(pv[base], av[2 * i], bv0);
                pv[base + 1] = vfmaq_f64(pv[base + 1], av[2 * i + 1], bv1);
                qv[base] = vfmaq_f64(qv[base], av[2 * i], bs0);
                qv[base + 1] = vfmaq_f64(qv[base + 1], av[2 * i + 1], bs1);
            }
        }
        pc += lanes::GRAM_C64_LANES;
    }
    let mut ps = [[0.0_f64; 2 * lanes::GRAM_C64_LANES]; 4];
    let mut qs = [[0.0_f64; 2 * lanes::GRAM_C64_LANES]; 4];
    for idx in 0..4 {
        // SAFETY: each lane array holds exactly 4 f64s.
        vst1q_f64(ps[idx].as_mut_ptr(), pv[2 * idx]);
        vst1q_f64(ps[idx].as_mut_ptr().add(2), pv[2 * idx + 1]);
        vst1q_f64(qs[idx].as_mut_ptr(), qv[2 * idx]);
        vst1q_f64(qs[idx].as_mut_ptr().add(2), qv[2 * idx + 1]);
    }
    let a = [a0, a1];
    let b = [b0, b1];
    for r in kc2..kc {
        let l = 2 * (r % lanes::GRAM_C64_LANES);
        for j in 0..2 {
            let (yr, yi) = (b[j][2 * r], b[j][2 * r + 1]);
            for i in 0..2 {
                let (xr, xi) = (a[i][2 * r], a[i][2 * r + 1]);
                let s = &mut ps[2 * j + i];
                s[l] = xr.mul_add(yr, s[l]);
                s[l + 1] = xi.mul_add(yi, s[l + 1]);
                let t = &mut qs[2 * j + i];
                t[l] = xr.mul_add(yi, t[l]);
                t[l + 1] = xi.mul_add(yr, t[l + 1]);
            }
        }
    }
    for idx in 0..4 {
        let (re, im) = if conj {
            lanes::combine_h(&ps[idx], &qs[idx])
        } else {
            lanes::combine_t(&ps[idx], &qs[idx])
        };
        out[2 * idx] = re;
        out[2 * idx + 1] = im;
    }
}
