//! Runtime-dispatched SIMD primitives for the hot mbrpa kernels.
//!
//! This crate is the only place in the workspace allowed to touch
//! `core::arch` intrinsics (enforced by the mbrpa-lint `arch_intrinsics`
//! rule). It exposes a *safe* slice-level API — scaled copies, fused
//! axpy variants, Chebyshev shift/scale updates, complex axpy/axpby,
//! lane-split dot products and norms, BLIS-style GEMM microkernels, and
//! Gram tiles — and picks the fastest available backend at runtime:
//!
//! | path     | arch     | selected when                                  |
//! |----------|----------|------------------------------------------------|
//! | `avx2`   | x86_64   | `avx2` **and** `fma` detected via CPUID        |
//! | `neon`   | aarch64  | always (NEON is baseline on aarch64)           |
//! | `scalar` | any      | fallback, and forced via `MBRPA_SIMD=scalar`   |
//!
//! **Bit-identity guarantee.** Every backend produces *bitwise
//! identical* results for every primitive, on every input. The scalar
//! implementation in [`scalar`] is the canonical semantics: elementwise
//! ops pin each rounding (plain `*`/`+` or `f64::mul_add` exactly where
//! backends use hardware FMA), and reductions use the fixed lane-split
//! accumulation described in [`lanes`], with the final lane fold shared
//! between all paths. Checkpoint resume, the golden pinned-energy test,
//! and the daemon's content-addressed result cache therefore stay exact
//! no matter which path runs — and CI forces each path to prove it.
//!
//! The active path resolves once, lazily, from (in priority order) a
//! programmatic [`force`] (the `-simd` CLI flag), the `MBRPA_SIMD`
//! environment variable (`auto`, `scalar`, `avx2`, `neon`), and CPU
//! detection. Requesting a path the CPU cannot run fails loudly rather
//! than silently degrading.

// Test code asserts exact float equality on purpose: bit-identity
// across dispatch paths is this crate's contract.
#![cfg_attr(test, allow(clippy::float_cmp))]

mod lanes;
mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

pub use lanes::{C64_LANES, F64_LANES, GRAM_C64_LANES, GRAM_F64_LANES};

use std::sync::atomic::{AtomicU8, Ordering};

/// A SIMD dispatch path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Portable scalar fallback (the canonical semantics).
    Scalar,
    /// AVX2 + FMA on x86_64.
    Avx2,
    /// NEON on aarch64.
    Neon,
}

impl Dispatch {
    /// Stable lowercase name, as accepted by `MBRPA_SIMD` and shown in
    /// profile reports and the daemon health document.
    pub fn name(self) -> &'static str {
        match self {
            Dispatch::Scalar => "scalar",
            Dispatch::Avx2 => "avx2",
            Dispatch::Neon => "neon",
        }
    }

    /// Parse an `MBRPA_SIMD` / `-simd` value. `Ok(None)` means `auto`
    /// (pick the best available path); unknown names are an error.
    pub fn parse(s: &str) -> Result<Option<Dispatch>, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Ok(None),
            "scalar" => Ok(Some(Dispatch::Scalar)),
            "avx2" => Ok(Some(Dispatch::Avx2)),
            "neon" => Ok(Some(Dispatch::Neon)),
            other => Err(format!(
                "unknown SIMD dispatch {other:?} (expected auto, scalar, avx2, or neon)"
            )),
        }
    }

    fn code(self) -> u8 {
        match self {
            Dispatch::Scalar => 1,
            Dispatch::Avx2 => 2,
            Dispatch::Neon => 3,
        }
    }

    fn from_code(c: u8) -> Option<Dispatch> {
        match c {
            1 => Some(Dispatch::Scalar),
            2 => Some(Dispatch::Avx2),
            3 => Some(Dispatch::Neon),
            _ => None,
        }
    }
}

/// Dispatch paths this CPU can run, best first.
pub fn available() -> &'static [Dispatch] {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return &[Dispatch::Avx2, Dispatch::Scalar];
        }
        &[Dispatch::Scalar]
    }
    #[cfg(target_arch = "aarch64")]
    {
        &[Dispatch::Neon, Dispatch::Scalar]
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        &[Dispatch::Scalar]
    }
}

/// 0 = unresolved; otherwise `Dispatch::code()`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn resolve_from_env() -> Result<Dispatch, String> {
    let req = match std::env::var("MBRPA_SIMD") {
        Ok(v) => Dispatch::parse(&v).map_err(|e| format!("MBRPA_SIMD: {e}"))?,
        Err(_) => None,
    };
    match req {
        None => Ok(available()[0]),
        Some(d) if available().contains(&d) => Ok(d),
        Some(d) => Err(format!(
            "MBRPA_SIMD requests {:?} but this CPU only supports {:?}",
            d.name(),
            available().iter().map(|a| a.name()).collect::<Vec<_>>()
        )),
    }
}

/// The active dispatch path, resolving it on first use from [`force`],
/// then `MBRPA_SIMD`, then CPU detection.
///
/// # Panics
/// Panics if `MBRPA_SIMD` names an unknown or unavailable path — a
/// deliberate loud failure so a mis-forced CI run can never silently
/// fall back. Binaries call [`init_from_env`] early to turn the same
/// condition into a clean error message instead.
pub fn active() -> Dispatch {
    // ord: Relaxed — ACTIVE carries a self-contained code; no other data is
    // published through it, so visibility ordering cannot change the result
    if let Some(d) = Dispatch::from_code(ACTIVE.load(Ordering::Relaxed)) {
        return d;
    }
    // lint: allow(unwrap) — invalid MBRPA_SIMD must abort, not degrade;
    // documented in the function contract above.
    let d = resolve_from_env().expect("invalid MBRPA_SIMD");
    // A concurrent first caller may have won the race; every candidate
    // writes a value derived from the same env + CPUID state, so either
    // outcome is the same dispatch.
    // ord: Relaxed — value is self-contained (see load above); the CAS only arbitrates ties
    let _ = ACTIVE.compare_exchange(0, d.code(), Ordering::Relaxed, Ordering::Relaxed);
    // lint: allow(unwrap) — the slot now holds a valid nonzero code.
    // ord: Relaxed — re-read of the self-contained code
    Dispatch::from_code(ACTIVE.load(Ordering::Relaxed)).expect("dispatch slot corrupted")
}

/// Resolve the dispatch path from `MBRPA_SIMD` + CPU detection without
/// panicking, locking it in on success. Binaries call this during
/// startup so configuration errors surface as clean diagnostics.
pub fn init_from_env() -> Result<Dispatch, String> {
    let d = resolve_from_env()?;
    // ord: Relaxed — self-contained dispatch code (see `active`); CAS only arbitrates ties
    let _ = ACTIVE.compare_exchange(0, d.code(), Ordering::Relaxed, Ordering::Relaxed);
    // lint: allow(unwrap) — the slot now holds a valid nonzero code.
    // ord: Relaxed — re-read of the self-contained code
    Ok(Dispatch::from_code(ACTIVE.load(Ordering::Relaxed)).expect("dispatch slot corrupted"))
}

/// Force a specific path (`Some`) or best-available (`None`), as the
/// `-simd` CLI flag does. Fails if the path is unavailable on this CPU
/// or a *different* path has already been locked in by first use.
pub fn force(req: Option<Dispatch>) -> Result<Dispatch, String> {
    let d = match req {
        None => available()[0],
        Some(d) if available().contains(&d) => d,
        Some(d) => {
            return Err(format!(
                "SIMD dispatch {:?} is not available on this CPU (supported: {:?})",
                d.name(),
                available().iter().map(|a| a.name()).collect::<Vec<_>>()
            ))
        }
    };
    // ord: Relaxed — self-contained dispatch code (see `active`); CAS only arbitrates ties
    match ACTIVE.compare_exchange(0, d.code(), Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => Ok(d),
        Err(prev) if prev == d.code() => Ok(d),
        Err(prev) => Err(format!(
            "SIMD dispatch already resolved to {:?}; cannot re-force to {:?}",
            Dispatch::from_code(prev).map(Dispatch::name).unwrap_or("?"),
            d.name()
        )),
    }
}

// ---------------------------------------------------------------------------
// Dispatched API
//
// Each primitive has an `*_on` form taking an explicit path (hoist
// `active()` out of per-line loops; also how the bitwise-identity
// proptests drive every path) and a convenience form using `active()`.
// Passing a path that is not in `available()` is safe: it falls back to
// the scalar canonical semantics, which are bit-identical by contract.
// ---------------------------------------------------------------------------

macro_rules! dispatch_on {
    ($d:expr, $name:ident ( $($arg:expr),* )) => {
        match $d {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the Avx2 path is only offered by `available()` (and
            // accepted by `force`/env resolution) when CPUID reports both
            // `avx2` and `fma`.
            Dispatch::Avx2 => unsafe { avx2::$name($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is a baseline feature of every aarch64 target.
            Dispatch::Neon => unsafe { neon::$name($($arg),*) },
            _ => scalar::$name($($arg),*),
        }
    };
}

/// `o = c · x` on the given path.
#[inline]
pub fn scale_copy_on(d: Dispatch, c: f64, x: &[f64], o: &mut [f64]) {
    dispatch_on!(d, scale_copy(c, x, o))
}

/// `o = c · x` on the active path.
#[inline]
pub fn scale_copy(c: f64, x: &[f64], o: &mut [f64]) {
    scale_copy_on(active(), c, x, o)
}

/// `o[i] += c · x[i]` (fused) on the given path.
#[inline]
pub fn axpy_on(d: Dispatch, c: f64, x: &[f64], o: &mut [f64]) {
    dispatch_on!(d, axpy(c, x, o))
}

/// `o[i] += c · x[i]` (fused) on the active path.
#[inline]
pub fn axpy(c: f64, x: &[f64], o: &mut [f64]) {
    axpy_on(active(), c, x, o)
}

/// `o[i] += c · (p[i] + m[i])` (fused) on the given path — the paired
/// ± stencil update.
#[inline]
pub fn axpy2_on(d: Dispatch, c: f64, p: &[f64], m: &[f64], o: &mut [f64]) {
    dispatch_on!(d, axpy2(c, p, m, o))
}

/// `o[i] += c · (p[i] + m[i])` (fused) on the active path.
#[inline]
pub fn axpy2(c: f64, p: &[f64], m: &[f64], o: &mut [f64]) {
    axpy2_on(active(), c, p, m, o)
}

/// `x *= c` on the given path.
#[inline]
pub fn scal_on(d: Dispatch, c: f64, x: &mut [f64]) {
    dispatch_on!(d, scal(c, x))
}

/// `x *= c` on the active path.
#[inline]
pub fn scal(c: f64, x: &mut [f64]) {
    scal_on(active(), c, x)
}

/// `y[i] = a · x[i] + b · y[i]` (fused multiply for the `a` term) on the
/// given path.
#[inline]
pub fn axpby_on(d: Dispatch, a: f64, b: f64, x: &[f64], y: &mut [f64]) {
    dispatch_on!(d, axpby(a, b, x, y))
}

/// `y[i] = a · x[i] + b · y[i]` on the active path.
#[inline]
pub fn axpby(a: f64, b: f64, x: &[f64], y: &mut [f64]) {
    axpby_on(active(), a, b, x, y)
}

/// Chebyshev recurrence step `v[i] = s · (v[i] − c · x[i])` on the given
/// path.
#[inline]
pub fn shift_scale_on(d: Dispatch, s: f64, c: f64, x: &[f64], v: &mut [f64]) {
    dispatch_on!(d, shift_scale(s, c, x, v))
}

/// Chebyshev recurrence step `v[i] = s · (v[i] − c · x[i])` on the
/// active path.
#[inline]
pub fn shift_scale(s: f64, c: f64, x: &[f64], v: &mut [f64]) {
    shift_scale_on(active(), s, c, x, v)
}

/// Chebyshev three-term step
/// `w[i] = s · (w[i] − c · y[i]) − t · xprev[i]` on the given path.
#[inline]
#[allow(clippy::many_single_char_names)]
pub fn shift_scale_sub_on(
    d: Dispatch,
    s: f64,
    c: f64,
    t: f64,
    y: &[f64],
    xprev: &[f64],
    w: &mut [f64],
) {
    dispatch_on!(d, shift_scale_sub(s, c, t, y, xprev, w))
}

/// Chebyshev three-term step on the active path.
#[inline]
#[allow(clippy::many_single_char_names)]
pub fn shift_scale_sub(s: f64, c: f64, t: f64, y: &[f64], xprev: &[f64], w: &mut [f64]) {
    shift_scale_sub_on(active(), s, c, t, y, xprev, w)
}

/// Uniform-offset stencil sweep over a halo'd source volume, on the
/// given path. Output row `rix` (slab `rix / rows_per_slab`, row
/// `rix % rows_per_slab` within it) reads from `src` starting at
/// `origin + slab·slab_stride + row·row_stride`, and each of its
/// `row_len` components is
/// `Σ_t terms[t].0 · src[row_base + i + terms[t].1]`, accumulated in
/// `terms` order — a multiply for the first term and one FMA for every
/// further term — so each output element is one independent rounding
/// chain and all paths are bit-identical by construction. The caller
/// provides the halo: `src` must answer every `(weight, signed offset)`
/// term at every point (wrapped copies for periodic boundaries, zeros
/// for Dirichlet — a `w·0` FMA contributes exactly nothing), which is
/// what makes the sweep completely free of boundary branches.
///
/// `o.len()` must be a whole number of slabs of `rows_per_slab` rows of
/// `row_len` components; the call panics if any term offset could
/// escape `src` at the extreme corners (which bounds every interior
/// index, all strides being non-negative).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn stencil_rows_on(
    d: Dispatch,
    terms: &[(f64, isize)],
    src: &[f64],
    origin: usize,
    row_stride: usize,
    slab_stride: usize,
    rows_per_slab: usize,
    row_len: usize,
    o: &mut [f64],
) {
    assert!(!terms.is_empty(), "at least one stencil term");
    if o.is_empty() {
        return;
    }
    assert!(row_len > 0 && rows_per_slab > 0, "degenerate row shape");
    assert_eq!(
        o.len() % (rows_per_slab * row_len),
        0,
        "out is not whole slabs"
    );
    let nrows = o.len() / row_len;
    let nslabs = nrows / rows_per_slab;
    let min_off = terms.iter().map(|t| t.1).min().unwrap_or(0);
    let max_off = terms.iter().map(|t| t.1).max().unwrap_or(0);
    // Corner bounds in u128/i128 so adversarially large strides cannot
    // wrap the check while the kernel's pointer arithmetic wraps too.
    let last = origin as u128
        + (nslabs as u128 - 1) * slab_stride as u128
        + (rows_per_slab as u128 - 1) * row_stride as u128
        + (row_len as u128 - 1);
    assert!(
        origin as i128 + min_off as i128 >= 0,
        "term offset underruns src"
    );
    assert!(
        (last as i128 + max_off as i128) < src.len() as i128,
        "term offset overruns src"
    );
    dispatch_on!(
        d,
        stencil_rows(
            terms,
            src,
            origin,
            row_stride,
            slab_stride,
            rows_per_slab,
            row_len,
            o
        )
    )
}

/// Uniform-offset stencil sweep on the active path.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn stencil_rows(
    terms: &[(f64, isize)],
    src: &[f64],
    origin: usize,
    row_stride: usize,
    slab_stride: usize,
    rows_per_slab: usize,
    row_len: usize,
    o: &mut [f64],
) {
    stencil_rows_on(
        active(),
        terms,
        src,
        origin,
        row_stride,
        slab_stride,
        rows_per_slab,
        row_len,
        o,
    )
}

/// Complex `y += (ar + i·ai) · x` on interleaved `[re, im, …]` slices,
/// on the given path.
#[inline]
pub fn axpy_c64_on(d: Dispatch, ar: f64, ai: f64, x: &[f64], y: &mut [f64]) {
    dispatch_on!(d, axpy_c64(ar, ai, x, y))
}

/// Complex `y += (ar + i·ai) · x` on interleaved slices, active path.
#[inline]
pub fn axpy_c64(ar: f64, ai: f64, x: &[f64], y: &mut [f64]) {
    axpy_c64_on(active(), ar, ai, x, y)
}

/// Complex `y = a·x + b·y` on interleaved slices, on the given path.
#[inline]
pub fn axpby_c64_on(d: Dispatch, ar: f64, ai: f64, br: f64, bi: f64, x: &[f64], y: &mut [f64]) {
    dispatch_on!(d, axpby_c64(ar, ai, br, bi, x, y))
}

/// Complex `y = a·x + b·y` on interleaved slices, active path.
#[inline]
pub fn axpby_c64(ar: f64, ai: f64, br: f64, bi: f64, x: &[f64], y: &mut [f64]) {
    axpby_c64_on(active(), ar, ai, br, bi, x, y)
}

/// Complex `x *= (ar + i·ai)` on an interleaved slice, on the given path.
#[inline]
pub fn scal_c64_on(d: Dispatch, ar: f64, ai: f64, x: &mut [f64]) {
    dispatch_on!(d, scal_c64(ar, ai, x))
}

/// Complex `x *= (ar + i·ai)` on an interleaved slice, active path.
#[inline]
pub fn scal_c64(ar: f64, ai: f64, x: &mut [f64]) {
    scal_c64_on(active(), ar, ai, x)
}

/// Real dot `Σ x[i]·y[i]` with the canonical 8-lane split, given path.
#[inline]
pub fn dot_on(d: Dispatch, x: &[f64], y: &[f64]) -> f64 {
    dispatch_on!(d, dot(x, y))
}

/// Real dot `Σ x[i]·y[i]` on the active path.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    dot_on(active(), x, y)
}

/// Squared Euclidean norm `Σ x[i]²` (componentwise — pass interleaved
/// complex data directly), given path.
#[inline]
pub fn nrm2_sq_on(d: Dispatch, x: &[f64]) -> f64 {
    dispatch_on!(d, nrm2_sq(x))
}

/// Squared Euclidean norm `Σ x[i]²` on the active path.
#[inline]
pub fn nrm2_sq(x: &[f64]) -> f64 {
    nrm2_sq_on(active(), x)
}

/// Unconjugated complex dot `xᵀy` on interleaved slices, given path.
/// Returns `(re, im)`.
#[inline]
pub fn dot_t_c64_on(d: Dispatch, x: &[f64], y: &[f64]) -> (f64, f64) {
    dispatch_on!(d, dot_t_c64(x, y))
}

/// Unconjugated complex dot `xᵀy` on the active path.
#[inline]
pub fn dot_t_c64(x: &[f64], y: &[f64]) -> (f64, f64) {
    dot_t_c64_on(active(), x, y)
}

/// Conjugated complex dot `xᴴy` on interleaved slices, given path.
/// Returns `(re, im)`.
#[inline]
pub fn dot_h_c64_on(d: Dispatch, x: &[f64], y: &[f64]) -> (f64, f64) {
    dispatch_on!(d, dot_h_c64(x, y))
}

/// Conjugated complex dot `xᴴy` on the active path.
#[inline]
pub fn dot_h_c64(x: &[f64], y: &[f64]) -> (f64, f64) {
    dot_h_c64_on(active(), x, y)
}

/// 8×4 f64 GEMM microkernel: `acc[8j + i] += Σ_p ap[8p + i] · bp[4p + j]`
/// over packed panels, on the given path. `acc` is column-major
/// (column `j` at `acc[8j..8j + 8]`) and carries across k-blocks.
#[inline]
pub fn gemm_f64_8x4_on(d: Dispatch, k: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; 32]) {
    dispatch_on!(d, gemm_f64_8x4(k, ap, bp, acc))
}

/// 8×4 f64 GEMM microkernel on the active path.
#[inline]
pub fn gemm_f64_8x4(k: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; 32]) {
    gemm_f64_8x4_on(active(), k, ap, bp, acc)
}

/// 4×4 split-complex GEMM microkernel on packed split panels
/// (`[re×4 | im×4]` per depth step in both `ap` and `bp`), on the given
/// path. Column `j` of `acc` holds `[re×4 | im×4]` at `acc[8j..8j + 8]`.
/// Complex products are realized as real FMAs:
/// `re += ar·br − ai·bi`, `im += ar·bi + ai·br`, one rounding each.
#[inline]
pub fn gemm_c64_4x4_on(d: Dispatch, k: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; 32]) {
    dispatch_on!(d, gemm_c64_4x4(k, ap, bp, acc))
}

/// 4×4 split-complex GEMM microkernel on the active path.
#[inline]
pub fn gemm_c64_4x4(k: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; 32]) {
    gemm_c64_4x4_on(active(), k, ap, bp, acc)
}

/// 2×4 real Gram tile: `out[2j + i] = a_iᵀ b_j` with the canonical
/// 4-lane depth split, on the given path.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn gram2x4_f64_on(
    d: Dispatch,
    a0: &[f64],
    a1: &[f64],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
    out: &mut [f64; 8],
) {
    dispatch_on!(d, gram2x4_f64(a0, a1, b0, b1, b2, b3, out))
}

/// 2×4 real Gram tile on the active path.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn gram2x4_f64(
    a0: &[f64],
    a1: &[f64],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
    out: &mut [f64; 8],
) {
    gram2x4_f64_on(active(), a0, a1, b0, b1, b2, b3, out)
}

/// 2×2 complex Gram tile on interleaved columns: `out` holds the four
/// complex results `(i, j)` at `out[2·(2j + i)..][..2]`, computing
/// `a_iᵀ b_j` (`conj = false`) or `a_iᴴ b_j` (`conj = true`) with the
/// canonical 2-complex-lane depth split, on the given path.
#[inline]
pub fn gram2_c64_on(
    d: Dispatch,
    conj: bool,
    a0: &[f64],
    a1: &[f64],
    b0: &[f64],
    b1: &[f64],
    out: &mut [f64; 8],
) {
    dispatch_on!(d, gram2_c64(conj, a0, a1, b0, b1, out))
}

/// 2×2 complex Gram tile on the active path.
#[inline]
pub fn gram2_c64(conj: bool, a0: &[f64], a1: &[f64], b0: &[f64], b1: &[f64], out: &mut [f64; 8]) {
    gram2_c64_on(active(), conj, a0, a1, b0, b1, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn dispatch_parse_accepts_known_names() {
        assert_eq!(Dispatch::parse("auto").unwrap(), None);
        assert_eq!(Dispatch::parse("").unwrap(), None);
        assert_eq!(Dispatch::parse("Scalar").unwrap(), Some(Dispatch::Scalar));
        assert_eq!(Dispatch::parse("AVX2").unwrap(), Some(Dispatch::Avx2));
        assert_eq!(Dispatch::parse("neon").unwrap(), Some(Dispatch::Neon));
        assert!(Dispatch::parse("sse9").is_err());
    }

    #[test]
    fn available_always_offers_scalar_last() {
        let avail = available();
        assert!(!avail.is_empty());
        assert_eq!(*avail.last().unwrap(), Dispatch::Scalar);
    }

    #[test]
    fn dot_matches_naive_sum_closely() {
        let x = pseudo_random(1003, 1);
        let y = pseudo_random(1003, 2);
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        for &d in available() {
            let got = dot_on(d, &x, &y);
            assert!((got - naive).abs() < 1e-10, "{d:?}: {got} vs {naive}");
        }
    }

    #[test]
    fn nrm2_sq_is_nonnegative_and_exact_on_units() {
        let mut x = vec![0.0; 17];
        x[3] = -3.0;
        x[11] = 4.0;
        for &d in available() {
            assert_eq!(nrm2_sq_on(d, &x), 25.0, "{d:?}");
        }
    }

    #[test]
    fn complex_dots_match_reference() {
        // x = [i, 2], y = [i, 1 + i]: xᵀy = 1 + 2i, xᴴy = 3 + 2i.
        let x = [0.0, 1.0, 2.0, 0.0];
        let y = [0.0, 1.0, 1.0, 1.0];
        for &d in available() {
            assert_eq!(dot_t_c64_on(d, &x, &y), (1.0, 2.0), "{d:?}");
            assert_eq!(dot_h_c64_on(d, &x, &y), (3.0, 2.0), "{d:?}");
        }
    }

    #[test]
    fn elementwise_primitives_compute_expected_values() {
        for &d in available() {
            let x = [1.0, -2.0, 3.0];
            let mut o = [0.0; 3];
            scale_copy_on(d, 2.0, &x, &mut o);
            assert_eq!(o, [2.0, -4.0, 6.0]);
            axpy_on(d, 0.5, &x, &mut o);
            assert_eq!(o, [2.5, -5.0, 7.5]);
            axpy2_on(d, 1.0, &x, &x, &mut o);
            assert_eq!(o, [4.5, -9.0, 13.5]);
            scal_on(d, 2.0, &mut o);
            assert_eq!(o, [9.0, -18.0, 27.0]);
            axpby_on(d, 1.0, 0.0, &x, &mut o);
            assert_eq!(o, x);
            let mut v = [10.0, 20.0];
            shift_scale_on(d, 2.0, 3.0, &[1.0, 2.0], &mut v);
            assert_eq!(v, [14.0, 28.0]); // 2·(v − 3x)
            let mut w = [1.0, 1.0];
            shift_scale_sub_on(d, 1.0, 0.0, 1.0, &[0.0, 0.0], &[5.0, 7.0], &mut w);
            assert_eq!(w, [-4.0, -6.0]); // w − xprev
        }
    }

    #[test]
    fn stencil_rows_matches_naive_sum() {
        // 2 slabs × 3 rows × 11 components out of a halo'd source with a
        // one-row/one-slab halo on each side, radius-2 in-row offsets.
        let (nslab, nrow, n) = (2, 3, 11);
        let r = 2;
        let row = n + 2 * r; // 15
        let slab = row * (nrow + 2); // one halo row each side
        let src = pseudo_random(slab * (nslab + 2), 31);
        let origin = slab + row + r;
        let terms: Vec<(f64, isize)> = vec![
            (-1.5, 0),
            (0.25, 1),
            (0.25, -1),
            (-0.0625, 2),
            (-0.0625, -2),
            (0.5, row as isize),
            (0.5, -(row as isize)),
            (0.125, slab as isize),
        ];
        let naive: Vec<f64> = (0..nslab * nrow * n)
            .map(|e| {
                let (k, rest) = (e / (nrow * n), e % (nrow * n));
                let (j, i) = (rest / n, rest % n);
                let p = (origin + k * slab + j * row + i) as isize;
                terms
                    .iter()
                    .map(|&(w, off)| w * src[(p + off) as usize])
                    .sum()
            })
            .collect();
        for &d in available() {
            let mut o = vec![0.0; nslab * nrow * n];
            stencil_rows_on(d, &terms, &src, origin, row, slab, nrow, n, &mut o);
            for (g, e) in o.iter().zip(naive.iter()) {
                assert!((g - e).abs() < 1e-12, "{d:?}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn complex_elementwise_matches_complex_arithmetic() {
        // (1 + 2i) · (3 − i) = 5 + 5i
        for &d in available() {
            let x = [3.0, -1.0];
            let mut y = [0.0, 0.0];
            axpy_c64_on(d, 1.0, 2.0, &x, &mut y);
            assert_eq!(y, [5.0, 5.0]);
            let mut z = [3.0, -1.0];
            scal_c64_on(d, 1.0, 2.0, &mut z);
            assert_eq!(z, [5.0, 5.0]);
            // y = a·x + b·y with a = i, b = 2: i·(3 − i) + 2·(5 + 5i) = 11 + 13i
            let mut w = [5.0, 5.0];
            axpby_c64_on(d, 0.0, 1.0, 2.0, 0.0, &x, &mut w);
            assert_eq!(w, [11.0, 13.0]);
        }
    }

    #[test]
    fn gemm_f64_kernel_matches_naive_tile() {
        let k = 37;
        let ap = pseudo_random(8 * k, 3);
        let bp = pseudo_random(4 * k, 4);
        let mut naive = [0.0_f64; 32];
        for p in 0..k {
            for j in 0..4 {
                for i in 0..8 {
                    naive[8 * j + i] += ap[8 * p + i] * bp[4 * p + j];
                }
            }
        }
        for &d in available() {
            let mut acc = [0.0_f64; 32];
            gemm_f64_8x4_on(d, k, &ap, &bp, &mut acc);
            for (g, n) in acc.iter().zip(naive.iter()) {
                assert!((g - n).abs() < 1e-12, "{d:?}");
            }
        }
    }

    #[test]
    fn gemm_c64_kernel_matches_naive_complex_tile() {
        let k = 19;
        let ap = pseudo_random(8 * k, 5);
        let bp = pseudo_random(8 * k, 6);
        let mut naive = [0.0_f64; 32];
        for p in 0..k {
            for j in 0..4 {
                let (br, bi) = (bp[8 * p + j], bp[8 * p + 4 + j]);
                for i in 0..4 {
                    let (ar, ai) = (ap[8 * p + i], ap[8 * p + 4 + i]);
                    naive[8 * j + i] += ar * br - ai * bi;
                    naive[8 * j + 4 + i] += ar * bi + ai * br;
                }
            }
        }
        for &d in available() {
            let mut acc = [0.0_f64; 32];
            gemm_c64_4x4_on(d, k, &ap, &bp, &mut acc);
            for (g, n) in acc.iter().zip(naive.iter()) {
                assert!((g - n).abs() < 1e-12, "{d:?}");
            }
        }
    }

    #[test]
    fn gram_tiles_match_dot_products() {
        let k = 53;
        let cols: Vec<Vec<f64>> = (0..6).map(|s| pseudo_random(k, 10 + s)).collect();
        for &d in available() {
            let mut out = [0.0_f64; 8];
            gram2x4_f64_on(
                d, &cols[0], &cols[1], &cols[2], &cols[3], &cols[4], &cols[5], &mut out,
            );
            for j in 0..4 {
                for i in 0..2 {
                    let naive: f64 = cols[i].iter().zip(&cols[2 + j]).map(|(a, b)| a * b).sum();
                    assert!((out[2 * j + i] - naive).abs() < 1e-11, "{d:?}");
                }
            }
        }
        // Complex tile, k must be even in f64 length.
        let zcols: Vec<Vec<f64>> = (0..4).map(|s| pseudo_random(2 * k + 2, 20 + s)).collect();
        for &d in available() {
            for conj in [false, true] {
                let mut out = [0.0_f64; 8];
                gram2_c64_on(
                    d, conj, &zcols[0], &zcols[1], &zcols[2], &zcols[3], &mut out,
                );
                for j in 0..2 {
                    for i in 0..2 {
                        let (mut re, mut im) = (0.0_f64, 0.0_f64);
                        for (xc, yc) in zcols[i].chunks_exact(2).zip(zcols[2 + j].chunks_exact(2)) {
                            let (xr, xi) = (xc[0], if conj { -xc[1] } else { xc[1] });
                            re += xr * yc[0] - xi * yc[1];
                            im += xr * yc[1] + xi * yc[0];
                        }
                        let idx = 2 * (2 * j + i);
                        assert!((out[idx] - re).abs() < 1e-11, "{d:?} conj={conj}");
                        assert!((out[idx + 1] - im).abs() < 1e-11, "{d:?} conj={conj}");
                    }
                }
            }
        }
    }
}
