//! Canonical scalar implementations — the semantic definition of every
//! primitive in this crate.
//!
//! This module is the oracle: whatever bits these functions produce are
//! *the* correct answer, and every vector backend must reproduce them
//! exactly. Two rules make that possible:
//!
//! 1. **Elementwise ops** use the same per-element formula the vector
//!    backends use — in particular [`f64::mul_add`] wherever a backend
//!    issues a hardware FMA, and plain `*`/`+` where it does not. A
//!    vector lane applies exactly one rounding per operation to exactly
//!    the operands the scalar formula names, so equal formulas ⇒ equal
//!    bits, lane by lane.
//! 2. **Reductions** accumulate into the fixed lane layout described in
//!    [`crate::lanes`] (element `i` → lane `i mod LANES`, one FMA chain
//!    per lane, shared final fold), which both paths realize literally.
//!
//! Complex data is interleaved `[re, im, re, im, …]` f64 slices; the
//! split-complex GEMM panels are described at [`crate::gemm_c64_4x4`].

use crate::lanes;

// ---------------------------------------------------------------------------
// Elementwise, real coefficients (componentwise-safe for complex data)
// ---------------------------------------------------------------------------

pub(crate) fn scale_copy(c: f64, x: &[f64], o: &mut [f64]) {
    debug_assert_eq!(x.len(), o.len());
    for (oi, &xi) in o.iter_mut().zip(x) {
        *oi = c * xi;
    }
}

pub(crate) fn axpy(c: f64, x: &[f64], o: &mut [f64]) {
    debug_assert_eq!(x.len(), o.len());
    for (oi, &xi) in o.iter_mut().zip(x) {
        *oi = c.mul_add(xi, *oi);
    }
}

pub(crate) fn axpy2(c: f64, p: &[f64], m: &[f64], o: &mut [f64]) {
    debug_assert_eq!(p.len(), o.len());
    debug_assert_eq!(m.len(), o.len());
    for ((oi, &pi), &mi) in o.iter_mut().zip(p).zip(m) {
        *oi = c.mul_add(pi + mi, *oi);
    }
}

pub(crate) fn scal(c: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= c;
    }
}

pub(crate) fn axpby(a: f64, b: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = a.mul_add(xi, b * *yi);
    }
}

pub(crate) fn shift_scale(s: f64, c: f64, x: &[f64], v: &mut [f64]) {
    debug_assert_eq!(x.len(), v.len());
    for (vi, &xi) in v.iter_mut().zip(x) {
        *vi = s * (-c).mul_add(xi, *vi);
    }
}

#[allow(clippy::many_single_char_names)]
pub(crate) fn shift_scale_sub(s: f64, c: f64, t: f64, y: &[f64], xprev: &[f64], w: &mut [f64]) {
    debug_assert_eq!(y.len(), w.len());
    debug_assert_eq!(xprev.len(), w.len());
    for ((wi, &yi), &xi) in w.iter_mut().zip(y).zip(xprev) {
        *wi = (-t).mul_add(xi, s * (-c).mul_add(yi, *wi));
    }
}

/// Uniform-offset stencil sweep over a halo'd source volume: row `rix`
/// (slab `rix / rows_per_slab`, row-in-slab `rix % rows_per_slab`) starts
/// at `origin + slab·slab_stride + row·row_stride` in `src`, and each of
/// its `row_len` output components is
///
/// ```text
/// o[rix·row_len + i] = Σ_t  terms[t].0 · src[row_base + i + terms[t].1]
/// ```
///
/// accumulated **in `terms` order** — a multiply for the first term and
/// one FMA per further term — so every output element is an independent
/// rounding chain and vector backends are bit-identical lane by lane.
/// Because the source carries its halo (wrapped or zeroed by the caller),
/// the same signed offsets apply at every point and there is no boundary
/// special-casing anywhere in the sweep.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stencil_rows(
    terms: &[(f64, isize)],
    src: &[f64],
    origin: usize,
    row_stride: usize,
    slab_stride: usize,
    rows_per_slab: usize,
    row_len: usize,
    o: &mut [f64],
) {
    let (w0, off0) = terms[0];
    let rest = &terms[1..];
    for (rix, orow) in o.chunks_exact_mut(row_len).enumerate() {
        let base =
            origin + (rix / rows_per_slab) * slab_stride + (rix % rows_per_slab) * row_stride;
        for (i, oi) in orow.iter_mut().enumerate() {
            let p = (base + i) as isize;
            let mut acc = w0 * src[(p + off0) as usize];
            for &(w, off) in rest {
                acc = w.mul_add(src[(p + off) as usize], acc);
            }
            *oi = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Elementwise, complex coefficients on interleaved data
// ---------------------------------------------------------------------------

pub(crate) fn axpy_c64(ar: f64, ai: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yp, xp) in y.chunks_exact_mut(2).zip(x.chunks_exact(2)) {
        let (xr, xi) = (xp[0], xp[1]);
        yp[0] = (-ai).mul_add(xi, ar.mul_add(xr, yp[0]));
        yp[1] = ai.mul_add(xr, ar.mul_add(xi, yp[1]));
    }
}

pub(crate) fn axpby_c64(ar: f64, ai: f64, br: f64, bi: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yp, xp) in y.chunks_exact_mut(2).zip(x.chunks_exact(2)) {
        let (xr, xi) = (xp[0], xp[1]);
        let (yr, yi) = (yp[0], yp[1]);
        let axr = (-ai).mul_add(xi, ar * xr);
        let axi = ai.mul_add(xr, ar * xi);
        yp[0] = br.mul_add(yr, (-bi).mul_add(yi, axr));
        yp[1] = br.mul_add(yi, bi.mul_add(yr, axi));
    }
}

pub(crate) fn scal_c64(ar: f64, ai: f64, x: &mut [f64]) {
    for xp in x.chunks_exact_mut(2) {
        let (xr, xi) = (xp[0], xp[1]);
        xp[0] = (-ai).mul_add(xi, ar * xr);
        xp[1] = ai.mul_add(xr, ar * xi);
    }
}

// ---------------------------------------------------------------------------
// Reductions (canonical lane layout, shared fold)
// ---------------------------------------------------------------------------

pub(crate) fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut state = [0.0_f64; lanes::F64_LANES];
    for (i, (&a, &b)) in x.iter().zip(y).enumerate() {
        let l = i % lanes::F64_LANES;
        state[l] = a.mul_add(b, state[l]);
    }
    lanes::fold(&state)
}

pub(crate) fn nrm2_sq(x: &[f64]) -> f64 {
    let mut state = [0.0_f64; lanes::F64_LANES];
    for (i, &a) in x.iter().enumerate() {
        let l = i % lanes::F64_LANES;
        state[l] = a.mul_add(a, state[l]);
    }
    lanes::fold(&state)
}

/// Accumulate the shared p/q component-product lane states of a complex
/// dot (see [`lanes::combine_t`] for the layout).
fn dot_c64_states(
    x: &[f64],
    y: &[f64],
) -> ([f64; 2 * lanes::C64_LANES], [f64; 2 * lanes::C64_LANES]) {
    debug_assert_eq!(x.len(), y.len());
    let mut p = [0.0_f64; 2 * lanes::C64_LANES];
    let mut q = [0.0_f64; 2 * lanes::C64_LANES];
    for (j, (xc, yc)) in x.chunks_exact(2).zip(y.chunks_exact(2)).enumerate() {
        let l = 2 * (j % lanes::C64_LANES);
        p[l] = xc[0].mul_add(yc[0], p[l]);
        p[l + 1] = xc[1].mul_add(yc[1], p[l + 1]);
        q[l] = xc[0].mul_add(yc[1], q[l]);
        q[l + 1] = xc[1].mul_add(yc[0], q[l + 1]);
    }
    (p, q)
}

pub(crate) fn dot_t_c64(x: &[f64], y: &[f64]) -> (f64, f64) {
    let (p, q) = dot_c64_states(x, y);
    lanes::combine_t(&p, &q)
}

pub(crate) fn dot_h_c64(x: &[f64], y: &[f64]) -> (f64, f64) {
    let (p, q) = dot_c64_states(x, y);
    lanes::combine_h(&p, &q)
}

// ---------------------------------------------------------------------------
// GEMM microkernels on packed panels
// ---------------------------------------------------------------------------

pub(crate) fn gemm_f64_8x4(k: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; 32]) {
    debug_assert!(ap.len() >= 8 * k);
    debug_assert!(bp.len() >= 4 * k);
    for p in 0..k {
        let a = &ap[8 * p..8 * p + 8];
        let b = &bp[4 * p..4 * p + 4];
        for j in 0..4 {
            let bj = b[j];
            for i in 0..8 {
                acc[8 * j + i] = a[i].mul_add(bj, acc[8 * j + i]);
            }
        }
    }
}

pub(crate) fn gemm_c64_4x4(k: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; 32]) {
    debug_assert!(ap.len() >= 8 * k);
    debug_assert!(bp.len() >= 8 * k);
    for p in 0..k {
        let ar = &ap[8 * p..8 * p + 4];
        let ai = &ap[8 * p + 4..8 * p + 8];
        let br = &bp[8 * p..8 * p + 4];
        let bi = &bp[8 * p + 4..8 * p + 8];
        for j in 0..4 {
            let (brj, bij) = (br[j], bi[j]);
            for i in 0..4 {
                let re = 8 * j + i;
                let im = 8 * j + 4 + i;
                acc[re] = (-ai[i]).mul_add(bij, ar[i].mul_add(brj, acc[re]));
                acc[im] = ai[i].mul_add(brj, ar[i].mul_add(bij, acc[im]));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Gram tiles (shared-stream column blocks of AᵀB / AᴴB)
// ---------------------------------------------------------------------------

pub(crate) fn gram2x4_f64(
    a0: &[f64],
    a1: &[f64],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
    out: &mut [f64; 8],
) {
    let k = a0.len();
    debug_assert!(
        a1.len() == k && b0.len() == k && b1.len() == k && b2.len() == k && b3.len() == k
    );
    let a = [a0, a1];
    let b = [b0, b1, b2, b3];
    // Pair (i, j) accumulates in state[2 * j + i].
    let mut state = [[0.0_f64; lanes::GRAM_F64_LANES]; 8];
    for p in 0..k {
        let l = p % lanes::GRAM_F64_LANES;
        for j in 0..4 {
            let bv = b[j][p];
            for i in 0..2 {
                let s = &mut state[2 * j + i][l];
                *s = a[i][p].mul_add(bv, *s);
            }
        }
    }
    for (o, s) in out.iter_mut().zip(state.iter()) {
        *o = lanes::fold(s);
    }
}

pub(crate) fn gram2_c64(
    conj: bool,
    a0: &[f64],
    a1: &[f64],
    b0: &[f64],
    b1: &[f64],
    out: &mut [f64; 8],
) {
    let kc = a0.len() / 2;
    debug_assert!(a0.len().is_multiple_of(2));
    debug_assert!(a1.len() == a0.len() && b0.len() == a0.len() && b1.len() == a0.len());
    let a = [a0, a1];
    let b = [b0, b1];
    // Pair (i, j) accumulates p/q states in index 2 * j + i.
    let mut ps = [[0.0_f64; 2 * lanes::GRAM_C64_LANES]; 4];
    let mut qs = [[0.0_f64; 2 * lanes::GRAM_C64_LANES]; 4];
    for pc in 0..kc {
        let l = 2 * (pc % lanes::GRAM_C64_LANES);
        for j in 0..2 {
            let (yr, yi) = (b[j][2 * pc], b[j][2 * pc + 1]);
            for i in 0..2 {
                let (xr, xi) = (a[i][2 * pc], a[i][2 * pc + 1]);
                let s = &mut ps[2 * j + i];
                s[l] = xr.mul_add(yr, s[l]);
                s[l + 1] = xi.mul_add(yi, s[l + 1]);
                let t = &mut qs[2 * j + i];
                t[l] = xr.mul_add(yi, t[l]);
                t[l + 1] = xi.mul_add(yr, t[l + 1]);
            }
        }
    }
    for idx in 0..4 {
        let (re, im) = if conj {
            lanes::combine_h(&ps[idx], &qs[idx])
        } else {
            lanes::combine_t(&ps[idx], &qs[idx])
        };
        out[2 * idx] = re;
        out[2 * idx + 1] = im;
    }
}
