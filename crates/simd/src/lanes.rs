//! Shared lane-state folding — the single place partial lane sums become
//! final reduction results.
//!
//! Every reduction in this crate (real and complex dots, squared norms,
//! Gram tiles) accumulates into a fixed number of independent *lanes*:
//! element `i` of the input always lands in lane `i mod LANES`, and each
//! lane is a pure sequential fused-multiply-add chain. A vector backend
//! realizes the lanes as SIMD register lanes; the scalar backend keeps
//! them in a small array. Both then call the fold/combine functions in
//! this module on the extracted lane state, so the reduction tree — and
//! therefore the result bits — are identical across dispatch paths *by
//! construction*, not by testing alone (the proptests in
//! `tests/bitwise_identity.rs` check the construction anyway).

/// Number of independent f64 accumulation lanes in every real reduction
/// (`dot`, `nrm2_sq`). On AVX2 these are two 4-wide registers; on NEON
/// four 2-wide registers; the scalar oracle keeps an `[f64; 8]`.
pub const F64_LANES: usize = 8;

/// Number of complex accumulation lanes in every complex reduction
/// (`dot_t_c64`, `dot_h_c64`). Each complex lane spans two adjacent f64
/// lanes (re, im), so the f64 lane state is `2 * C64_LANES` wide.
pub const C64_LANES: usize = 4;

/// f64 lanes per pair accumulator in the real Gram tile (`gram2x4_f64`):
/// depth step `p` lands in lane `p mod GRAM_F64_LANES`.
pub const GRAM_F64_LANES: usize = 4;

/// Complex lanes per pair accumulator in the complex Gram tile
/// (`gram2_c64`): complex depth step `p` lands in lane `p mod GRAM_C64_LANES`.
pub const GRAM_C64_LANES: usize = 2;

/// Canonical lane fold: plain sequential sum in lane order.
#[inline]
pub fn fold(lanes: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &l in lanes {
        acc += l;
    }
    acc
}

/// Combine the component-product lane states of an **unconjugated**
/// complex dot `xᵀy`.
///
/// `p[2l] / p[2l+1]` hold Σ xr·yr / Σ xi·yi partials for complex lane
/// `l`; `q[2l] / q[2l+1]` hold Σ xr·yi / Σ xi·yr (the "swapped-y"
/// stream a vector backend gets from one in-lane permute). Then
/// `re = Σp_even − Σp_odd`, `im = Σq_even + Σq_odd`, with each partial
/// sum folded sequentially in lane order.
#[inline]
pub fn combine_t(p: &[f64], q: &[f64]) -> (f64, f64) {
    let (mut pr, mut pi, mut qr, mut qi) = (0.0_f64, 0.0_f64, 0.0_f64, 0.0_f64);
    let mut l = 0;
    while l < p.len() {
        pr += p[l];
        pi += p[l + 1];
        qr += q[l];
        qi += q[l + 1];
        l += 2;
    }
    (pr - pi, qr + qi)
}

/// Combine the same lane states as [`combine_t`] into the **conjugated**
/// complex dot `xᴴy`: `re = Σp_even + Σp_odd`, `im = Σq_even − Σq_odd`.
#[inline]
pub fn combine_h(p: &[f64], q: &[f64]) -> (f64, f64) {
    let (mut pr, mut pi, mut qr, mut qi) = (0.0_f64, 0.0_f64, 0.0_f64, 0.0_f64);
    let mut l = 0;
    while l < p.len() {
        pr += p[l];
        pi += p[l + 1];
        qr += q[l];
        qi += q[l + 1];
        l += 2;
    }
    (pr + pi, qr - qi)
}
