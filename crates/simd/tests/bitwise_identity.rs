//! Bitwise identity of every `mbrpa-simd` primitive across dispatch paths.
//!
//! The crate's contract (DESIGN.md §13) is that the scalar backend is not
//! merely "close to" the vector backends — it replicates their lane
//! layout and fused-multiply-add structure exactly, so **every** path
//! returns the same bits for the same input. These properties drive each
//! primitive over random lengths (covering empty inputs, sub-register
//! tails, and multi-block bodies) and assert exact `to_bits` equality of
//! each non-scalar path against the scalar oracle.

// Test code: panics are failures, and exact bit comparisons are the whole
// point here.
#![allow(clippy::float_cmp)]

use mbrpa_simd::{available, Dispatch};
use proptest::prelude::*;

/// Deterministic xorshift stream so vector contents follow from one seed
/// (dependent-size strategies stay out of the proptest layer).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 as f64 / u64::MAX as f64) - 0.5
    }
    fn vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_f64()).collect()
    }
}

/// Every available non-scalar path (the paths under test).
fn vector_paths() -> impl Iterator<Item = Dispatch> {
    available()
        .iter()
        .copied()
        .filter(|&d| d != Dispatch::Scalar)
}

fn assert_same_bits(d: Dispatch, what: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch on {d:?}");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: lane {i} differs on {d:?}: {g:e} ({:#x}) vs scalar {w:e} ({:#x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn real_elementwise_bitwise_identical(
        n in 0usize..67,
        c in -2.0f64..2.0,
        b in -2.0f64..2.0,
        seed in 1u64..u64::MAX,
    ) {
        let mut rng = Rng::new(seed);
        let x = rng.vec(n);
        let p = rng.vec(n);
        let init = rng.vec(n);
        let s = Dispatch::Scalar;
        for d in vector_paths() {
            let (mut want, mut got) = (init.clone(), init.clone());
            mbrpa_simd::scale_copy_on(s, c, &x, &mut want);
            mbrpa_simd::scale_copy_on(d, c, &x, &mut got);
            assert_same_bits(d, "scale_copy", &got, &want);

            let (mut want, mut got) = (init.clone(), init.clone());
            mbrpa_simd::axpy_on(s, c, &x, &mut want);
            mbrpa_simd::axpy_on(d, c, &x, &mut got);
            assert_same_bits(d, "axpy", &got, &want);

            let (mut want, mut got) = (init.clone(), init.clone());
            mbrpa_simd::axpy2_on(s, c, &p, &x, &mut want);
            mbrpa_simd::axpy2_on(d, c, &p, &x, &mut got);
            assert_same_bits(d, "axpy2", &got, &want);

            let (mut want, mut got) = (init.clone(), init.clone());
            mbrpa_simd::scal_on(s, c, &mut want);
            mbrpa_simd::scal_on(d, c, &mut got);
            assert_same_bits(d, "scal", &got, &want);

            let (mut want, mut got) = (init.clone(), init.clone());
            mbrpa_simd::axpby_on(s, c, b, &x, &mut want);
            mbrpa_simd::axpby_on(d, c, b, &x, &mut got);
            assert_same_bits(d, "axpby", &got, &want);

            let (mut want, mut got) = (init.clone(), init.clone());
            mbrpa_simd::shift_scale_on(s, c, b, &x, &mut want);
            mbrpa_simd::shift_scale_on(d, c, b, &x, &mut got);
            assert_same_bits(d, "shift_scale", &got, &want);

            let (mut want, mut got) = (init.clone(), init.clone());
            mbrpa_simd::shift_scale_sub_on(s, c, b, 0.75, &x, &p, &mut want);
            mbrpa_simd::shift_scale_sub_on(d, c, b, 0.75, &x, &p, &mut got);
            assert_same_bits(d, "shift_scale_sub", &got, &want);
        }
    }

    #[test]
    fn complex_elementwise_bitwise_identical(
        m in 0usize..33,
        ar in -2.0f64..2.0,
        ai in -2.0f64..2.0,
        br in -2.0f64..2.0,
        bi in -2.0f64..2.0,
        seed in 1u64..u64::MAX,
    ) {
        let mut rng = Rng::new(seed);
        let x = rng.vec(2 * m);
        let init = rng.vec(2 * m);
        let s = Dispatch::Scalar;
        for d in vector_paths() {
            let (mut want, mut got) = (init.clone(), init.clone());
            mbrpa_simd::axpy_c64_on(s, ar, ai, &x, &mut want);
            mbrpa_simd::axpy_c64_on(d, ar, ai, &x, &mut got);
            assert_same_bits(d, "axpy_c64", &got, &want);

            let (mut want, mut got) = (init.clone(), init.clone());
            mbrpa_simd::axpby_c64_on(s, ar, ai, br, bi, &x, &mut want);
            mbrpa_simd::axpby_c64_on(d, ar, ai, br, bi, &x, &mut got);
            assert_same_bits(d, "axpby_c64", &got, &want);

            let (mut want, mut got) = (init.clone(), init.clone());
            mbrpa_simd::scal_c64_on(s, ar, ai, &mut want);
            mbrpa_simd::scal_c64_on(d, ar, ai, &mut got);
            assert_same_bits(d, "scal_c64", &got, &want);
        }
    }

    #[test]
    fn reductions_bitwise_identical(
        m in 0usize..41,
        seed in 1u64..u64::MAX,
    ) {
        let mut rng = Rng::new(seed);
        let x = rng.vec(2 * m);
        let y = rng.vec(2 * m);
        let s = Dispatch::Scalar;
        for d in vector_paths() {
            let want = mbrpa_simd::dot_on(s, &x, &y);
            let got = mbrpa_simd::dot_on(d, &x, &y);
            assert_same_bits(d, "dot", &[got], &[want]);

            let want = mbrpa_simd::nrm2_sq_on(s, &x);
            let got = mbrpa_simd::nrm2_sq_on(d, &x);
            assert_same_bits(d, "nrm2_sq", &[got], &[want]);

            let (wr, wi) = mbrpa_simd::dot_t_c64_on(s, &x, &y);
            let (gr, gi) = mbrpa_simd::dot_t_c64_on(d, &x, &y);
            assert_same_bits(d, "dot_t_c64", &[gr, gi], &[wr, wi]);

            let (wr, wi) = mbrpa_simd::dot_h_c64_on(s, &x, &y);
            let (gr, gi) = mbrpa_simd::dot_h_c64_on(d, &x, &y);
            assert_same_bits(d, "dot_h_c64", &[gr, gi], &[wr, wi]);
        }
    }

    #[test]
    fn gemm_microkernels_bitwise_identical(
        k in 0usize..9,
        seed in 1u64..u64::MAX,
    ) {
        let mut rng = Rng::new(seed);
        let ap = rng.vec(8 * k);
        let bp_f = rng.vec(4 * k);
        let bp_c = rng.vec(8 * k);
        let init: Vec<f64> = rng.vec(32);
        let mut acc_init = [0.0f64; 32];
        acc_init.copy_from_slice(&init);
        let s = Dispatch::Scalar;
        for d in vector_paths() {
            let (mut want, mut got) = (acc_init, acc_init);
            mbrpa_simd::gemm_f64_8x4_on(s, k, &ap, &bp_f, &mut want);
            mbrpa_simd::gemm_f64_8x4_on(d, k, &ap, &bp_f, &mut got);
            assert_same_bits(d, "gemm_f64_8x4", &got, &want);

            let (mut want, mut got) = (acc_init, acc_init);
            mbrpa_simd::gemm_c64_4x4_on(s, k, &ap, &bp_c, &mut want);
            mbrpa_simd::gemm_c64_4x4_on(d, k, &ap, &bp_c, &mut got);
            assert_same_bits(d, "gemm_c64_4x4", &got, &want);
        }
    }

    #[test]
    fn gram_tiles_bitwise_identical(
        n in 0usize..27,
        conj in any::<bool>(),
        seed in 1u64..u64::MAX,
    ) {
        let mut rng = Rng::new(seed);
        let cols: Vec<Vec<f64>> = (0..6).map(|_| rng.vec(n)).collect();
        let za = rng.vec(2 * n);
        let zb = rng.vec(2 * n);
        let zc = rng.vec(2 * n);
        let zd = rng.vec(2 * n);
        let s = Dispatch::Scalar;
        for d in vector_paths() {
            let (mut want, mut got) = ([0.0f64; 8], [0.0f64; 8]);
            mbrpa_simd::gram2x4_f64_on(
                s, &cols[0], &cols[1], &cols[2], &cols[3], &cols[4], &cols[5], &mut want,
            );
            mbrpa_simd::gram2x4_f64_on(
                d, &cols[0], &cols[1], &cols[2], &cols[3], &cols[4], &cols[5], &mut got,
            );
            assert_same_bits(d, "gram2x4_f64", &got, &want);

            let (mut want, mut got) = ([0.0f64; 8], [0.0f64; 8]);
            mbrpa_simd::gram2_c64_on(s, conj, &za, &zb, &zc, &zd, &mut want);
            mbrpa_simd::gram2_c64_on(d, conj, &za, &zb, &zc, &zd, &mut got);
            assert_same_bits(d, "gram2_c64", &got, &want);
        }
    }

    #[test]
    fn stencil_rows_bitwise_identical(
        n in 1usize..40,
        nrow in 1usize..4,
        nslab in 1usize..3,
        r in 0usize..3,
        seed in 1u64..u64::MAX,
    ) {
        let mut rng = Rng::new(seed);
        // One halo row per slab and one halo slab on each side, plus an
        // in-row halo of r, mirroring how the grid crate lays out its
        // halo'd volume.
        let row = n + 2 * r;
        let slab = row * (nrow + 2);
        let src = rng.vec(slab * (nslab + 2));
        let origin = slab + row + r;
        let mut terms: Vec<(f64, isize)> = vec![(rng.next_f64(), 0)];
        for t in 1..=r {
            terms.push((rng.next_f64(), t as isize));
            terms.push((rng.next_f64(), -(t as isize)));
        }
        terms.push((rng.next_f64(), row as isize));
        terms.push((rng.next_f64(), -(row as isize)));
        terms.push((rng.next_f64(), slab as isize));
        terms.push((rng.next_f64(), -(slab as isize)));
        let out_len = nslab * nrow * n;
        for d in vector_paths() {
            let mut want = vec![0.0; out_len];
            let mut got = vec![0.0; out_len];
            mbrpa_simd::stencil_rows_on(
                Dispatch::Scalar, &terms, &src, origin, row, slab, nrow, n, &mut want,
            );
            mbrpa_simd::stencil_rows_on(d, &terms, &src, origin, row, slab, nrow, n, &mut got);
            assert_same_bits(d, "stencil_rows", &got, &want);
        }
    }
}
