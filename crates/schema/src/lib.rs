//! mbrpa-schema: the single registry of schema-version tags.
//!
//! Every versioned document mbrpa writes to disk or the wire — job
//! submissions, results, cache entries, lint reports, bench reports —
//! carries a `"schema"` tag of the form `mbrpa.<name>/<version>`.
//! Writers and validators used to each embed their own copy of these
//! literals, which is exactly how silent writer/validator drift starts:
//! one side bumps its string, the other keeps accepting (or starts
//! rejecting) documents it should not.
//!
//! This crate is the one place those tags may be spelled. The
//! `schema_tag` rule in `mbrpa-lint` enforces it structurally: any
//! `mbrpa.*/N` string literal in non-test code outside this crate is a
//! lint finding. Test code is exempt so suites can deliberately forge
//! wrong-schema documents.
//!
//! Bumping a version is therefore a one-line change here plus whatever
//! migration the document actually needs — and the bump is visible to
//! every reader and writer at once.

/// Job submission body accepted by `POST /v1/jobs` (`mbrpa-serve`).
pub const JOB: &str = "mbrpa.job/1";
/// Job lifecycle/status document served by `GET /v1/jobs/<id>`.
pub const JOB_STATUS: &str = "mbrpa.job-status/1";
/// Completed-run result document (also embedded in cache entries).
pub const RESULT: &str = "mbrpa.result/1";
/// Daemon health/introspection document (`GET /v1/health`).
pub const HEALTH: &str = "mbrpa.health/1";
/// Job listing envelope (`GET /v1/jobs`).
pub const JOB_LIST: &str = "mbrpa.job-list/1";
/// Content-addressed exact-result cache entry (`<root>/cache/<fp>.json`).
pub const CACHE_ENTRY: &str = "mbrpa.cache-entry/1";
/// `mbrpa-lint` findings report (`--json` output / `--validate` input).
pub const LINT_FINDINGS: &str = "mbrpa.lint-findings/1";
/// `kernels_bench` report (`BENCH_kernels.json`); v2 added `dispatch`.
pub const KERNELS_BENCH: &str = "mbrpa.kernels-bench/2";
/// One worker's liveness/occupancy as tracked by `rparouter` (embedded
/// in the router's health document and `GET /v1/workers`).
pub const WORKER: &str = "mbrpa.worker/1";
/// The router's job-ownership table (`GET /v1/routes`, persisted as
/// `<root>/route-table.json`).
pub const ROUTE_TABLE: &str = "mbrpa.route-table/1";

/// Every registered tag, for exhaustiveness checks and tooling.
pub const ALL: [&str; 10] = [
    JOB,
    JOB_STATUS,
    RESULT,
    HEALTH,
    JOB_LIST,
    CACHE_ENTRY,
    LINT_FINDINGS,
    KERNELS_BENCH,
    WORKER,
    ROUTE_TABLE,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    /// Registered tags must all follow `mbrpa.<name>/<version>` with a
    /// lowercase dashed name and a decimal version — the exact shape the
    /// lint rule scans for, so a malformed registry entry would silently
    /// escape enforcement.
    #[test]
    fn tags_are_well_formed() {
        for tag in ALL {
            let rest = tag.strip_prefix("mbrpa.").expect("mbrpa. prefix");
            let (name, version) = rest.split_once('/').expect("name/version split");
            assert!(!name.is_empty() && !version.is_empty(), "{tag}");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "tag name must be lowercase dashed: {tag}"
            );
            assert!(
                version.chars().all(|c| c.is_ascii_digit()),
                "tag version must be decimal: {tag}"
            );
        }
    }

    /// Two documents must never share a tag.
    #[test]
    fn tags_are_distinct() {
        for (i, a) in ALL.iter().enumerate() {
            for b in ALL.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
