//! Property-based tests for the DFT substrate: Hamiltonian symmetry,
//! spectral bounds, Sternheimer structure, and system building.

use mbrpa_dft::{Hamiltonian, PotentialParams, SiliconSpec, SternheimerOperator};
use mbrpa_linalg::{vecops, C64};
use proptest::prelude::*;

fn small_ham(seed: u64, perturbation: f64) -> Hamiltonian {
    let crystal = SiliconSpec {
        points_per_cell: 5,
        perturbation,
        seed,
        ..SiliconSpec::default()
    }
    .build();
    Hamiltonian::new(&crystal, 2, &PotentialParams::default())
}

fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// H is symmetric: uᵀHv == vᵀHu for random u, v and random geometry.
    #[test]
    fn hamiltonian_symmetry(
        seed in 0u64..1000,
        pert in 0.0f64..0.08,
        u in vec_strategy(125),
        v in vec_strategy(125),
    ) {
        let ham = small_ham(seed, pert);
        let mut hu = vec![0.0; 125];
        let mut hv = vec![0.0; 125];
        ham.apply(&u, &mut hu);
        ham.apply(&v, &mut hv);
        let uhv: f64 = u.iter().zip(hv.iter()).map(|(a, b)| a * b).sum();
        let vhu: f64 = v.iter().zip(hu.iter()).map(|(a, b)| a * b).sum();
        prop_assert!((uhv - vhu).abs() < 1e-9 * (1.0 + uhv.abs()));
    }

    /// Rayleigh quotients live inside the deterministic spectral bounds.
    #[test]
    fn rayleigh_quotient_within_bounds(seed in 0u64..1000, v in vec_strategy(125)) {
        let norm2: f64 = v.iter().map(|x| x * x).sum();
        prop_assume!(norm2 > 1e-6);
        let ham = small_ham(seed, 0.02);
        let mut hv = vec![0.0; 125];
        ham.apply(&v, &mut hv);
        let rq: f64 = v.iter().zip(hv.iter()).map(|(a, b)| a * b).sum::<f64>() / norm2;
        prop_assert!(rq <= ham.spectral_upper_bound() + 1e-9);
        prop_assert!(rq >= ham.spectral_lower_bound() - 1e-9);
    }

    /// Sternheimer operators satisfy A = Aᵀ (complex symmetry) and
    /// Im(xᴴAx) = ω‖x‖².
    #[test]
    fn sternheimer_complex_symmetry(
        seed in 0u64..1000,
        lambda in -6.0f64..0.0,
        omega in 0.01f64..10.0,
        re in vec_strategy(125),
        im in vec_strategy(125),
    ) {
        let ham = small_ham(seed, 0.02);
        let op = SternheimerOperator::new(&ham, lambda, omega);
        let x: Vec<C64> = re.iter().zip(im.iter()).map(|(&a, &b)| C64::new(a, b)).collect();
        let mut ax = vec![C64::new(0.0, 0.0); 125];
        op.apply(&x, &mut ax);
        // Im(xᴴAx) = ω‖x‖² because H − λI is real symmetric
        let xh_ax: C64 = x.iter().zip(ax.iter()).map(|(a, b)| a.conj() * b).sum();
        let norm2: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        prop_assert!((xh_ax.im - omega * norm2).abs() < 1e-8 * (1.0 + norm2));
    }

    /// Sternheimer apply is H·x plus the diagonal shift.
    #[test]
    fn sternheimer_is_shifted_hamiltonian(
        seed in 0u64..100,
        lambda in -3.0f64..3.0,
        omega in 0.01f64..5.0,
        re in vec_strategy(125),
    ) {
        let ham = small_ham(seed, 0.02);
        let op = SternheimerOperator::new(&ham, lambda, omega);
        let x: Vec<C64> = re.iter().map(|&a| C64::new(a, 0.0)).collect();
        let mut ax = vec![C64::new(0.0, 0.0); 125];
        op.apply(&x, &mut ax);
        let mut hx = vec![0.0; 125];
        ham.apply(&re, &mut hx);
        for i in 0..125 {
            let expect = C64::new(hx[i] - lambda * re[i], omega * re[i]);
            prop_assert!((ax[i] - expect).norm() < 1e-10);
        }
    }

    /// System builder: atom counts, electron counts, and grid sizes scale
    /// exactly with replication.
    #[test]
    fn ladder_scaling(cells in 1usize..6, ppc in 5usize..9) {
        let c = SiliconSpec {
            points_per_cell: ppc,
            cells_z: cells,
            ..SiliconSpec::default()
        }
        .build();
        prop_assert_eq!(c.atoms.len(), 8 * cells);
        prop_assert_eq!(c.n_occupied(), 16 * cells);
        prop_assert_eq!(c.n_grid(), ppc * ppc * ppc * cells);
    }

    /// Vacancy systems preserve the pristine geometry minus one site.
    #[test]
    fn vacancy_geometry(seed in 0u64..500, site in 0usize..8) {
        let spec = SiliconSpec {
            points_per_cell: 5,
            seed,
            ..SiliconSpec::default()
        };
        let full = spec.build();
        let vac = spec.build_with_vacancy(site);
        prop_assert_eq!(vac.atoms.len(), 7);
        for atom in &vac.atoms {
            prop_assert!(full.atoms.contains(atom));
        }
    }
}

/// Nonlocal projector apply agrees between real and complex vectors (an
/// integration-level check of the generic scalar path).
#[test]
fn projector_generic_consistency() {
    let crystal = SiliconSpec {
        points_per_cell: 5,
        ..SiliconSpec::default()
    }
    .build();
    let params = PotentialParams::default();
    let nl = mbrpa_dft::NonlocalProjectors::build(&crystal, &params);
    let n = crystal.n_grid();
    let x: Vec<f64> = (0..n).map(|i| ((i * 17) % 23) as f64 * 0.1 - 1.0).collect();
    let xc: Vec<C64> = x.iter().map(|&a| C64::new(a, -2.0 * a)).collect();
    let mut yr = vec![0.0; n];
    nl.apply_add(&x, &mut yr);
    let mut yc = vec![C64::new(0.0, 0.0); n];
    nl.apply_add(&xc, &mut yc);
    for i in 0..n {
        assert!((yc[i].re - yr[i]).abs() < 1e-12);
        assert!((yc[i].im + 2.0 * yr[i]).abs() < 1e-12);
    }
    assert!(vecops::norm2(&yr) > 0.0);
}
