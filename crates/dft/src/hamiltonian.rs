//! The Kohn–Sham Hamiltonian `H = −½∇² + V_loc + 𝒳Γ𝒳ᵀ` and the shifted
//! complex-symmetric Sternheimer operator `A_{j,k} = H − λ_j I + iω_k I`.

use crate::potential::{local_potential, NonlocalProjectors, PotentialParams};
use crate::system::Crystal;
use mbrpa_grid::Laplacian;
use mbrpa_linalg::{exactly_zero, Mat, Scalar, C64};
use rayon::prelude::*;

/// Real symmetric grid Hamiltonian.
///
/// The operator is partially matrix-free: the kinetic term is the radius-`r`
/// stencil (never assembled), the local potential is a diagonal, and the
/// non-local term is the sparse outer product the paper calls `𝒳𝒳ᴴ`.
#[derive(Clone, Debug)]
pub struct Hamiltonian {
    lap: Laplacian,
    vloc: Vec<f64>,
    nonlocal: Option<NonlocalProjectors>,
}

impl Hamiltonian {
    /// Assemble the model Hamiltonian for a crystal.
    pub fn new(crystal: &Crystal, radius: usize, params: &PotentialParams) -> Self {
        let lap = Laplacian::new(crystal.grid, radius);
        let vloc = local_potential(crystal, params);
        let nonlocal = if !exactly_zero(params.nonlocal_strength) {
            Some(NonlocalProjectors::build(crystal, params))
        } else {
            None
        };
        Self {
            lap,
            vloc,
            nonlocal,
        }
    }

    /// Build from explicit parts (used by tests and synthetic problems).
    pub fn from_parts(
        lap: Laplacian,
        vloc: Vec<f64>,
        nonlocal: Option<NonlocalProjectors>,
    ) -> Self {
        assert_eq!(vloc.len(), lap.grid().len());
        if let Some(nl) = &nonlocal {
            assert_eq!(nl.dim(), vloc.len());
        }
        Self {
            lap,
            vloc,
            nonlocal,
        }
    }

    /// Grid dimension `n_d`.
    pub fn dim(&self) -> usize {
        self.vloc.len()
    }

    /// The kinetic stencil.
    pub fn laplacian(&self) -> &Laplacian {
        &self.lap
    }

    /// The diagonal local potential.
    pub fn vloc(&self) -> &[f64] {
        &self.vloc
    }

    /// The non-local projector term, if present.
    pub fn nonlocal(&self) -> Option<&NonlocalProjectors> {
        self.nonlocal.as_ref()
    }

    /// `out = H v` for one vector (real or complex).
    pub fn apply<T: Scalar>(&self, v: &[T], out: &mut [T]) {
        self.lap.apply(v, out);
        self.apply_tail(v, out);
    }

    /// Telemetry-free single-vector apply; block drivers call this from
    /// worker tasks and record counters once on the calling thread.
    pub fn apply_raw<T: Scalar>(&self, v: &[T], out: &mut [T]) {
        self.lap.apply_raw(v, out);
        self.apply_tail(v, out);
    }

    /// Finish `H v` given `out = ∇² v`: scale by −½ while adding
    /// `V_loc ⊙ v`, then the non-local projector term.
    fn apply_tail<T: Scalar>(&self, v: &[T], out: &mut [T]) {
        for ((o, &x), &p) in out.iter_mut().zip(v.iter()).zip(self.vloc.iter()) {
            *o = o.scale(-0.5) + x.scale(p);
        }
        if let Some(nl) = &self.nonlocal {
            nl.apply_add(v, out);
        }
    }

    /// `out = H V` column by column (stencil applied one vector at a time,
    /// per §III-C of the paper), splitting the columns across threads when
    /// [`mbrpa_grid::par::block_apply_chunks`] says the pool has idle
    /// capacity.
    pub fn apply_block<T: Scalar>(&self, v: &Mat<T>, out: &mut Mat<T>) {
        assert_eq!(v.shape(), out.shape());
        assert_eq!(v.rows(), self.dim());
        let s = v.cols();
        let n = self.dim();
        mbrpa_obs::add("grid.stencil_applies", s as u64);
        mbrpa_obs::add(
            "grid.stencil_flops",
            self.lap.apply_flops_per_vector() * (T::COMPONENTS * s) as u64,
        );
        let chunks = mbrpa_grid::par::block_apply_chunks(s, self.apply_flops() * T::COMPONENTS);
        if chunks <= 1 || n == 0 {
            for j in 0..s {
                self.apply_raw(v.col(j), out.col_mut(j));
            }
            return;
        }
        let cols_per = s.div_ceil(chunks);
        let tasks: Vec<(&[T], &mut [T])> = v
            .as_slice()
            .chunks(n * cols_per)
            .zip(out.as_mut_slice().chunks_mut(n * cols_per))
            .collect();
        tasks.into_par_iter().for_each(|(src, dst)| {
            for (sc, dc) in src.chunks(n).zip(dst.chunks_mut(n)) {
                self.apply_raw(sc, dc);
            }
        });
    }

    /// Assemble the dense matrix (test oracle / direct baseline; small
    /// grids only).
    pub fn to_dense(&self) -> Mat<f64> {
        let n = self.dim();
        let mut m = Mat::zeros(n, n);
        let mut e = vec![0.0; n];
        let mut col = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            self.apply(&e, &mut col);
            m.col_mut(j).copy_from_slice(&col);
            e[j] = 0.0;
        }
        m
    }

    /// Deterministic upper bound on `λ_max(H)` (Weyl + Gershgorin):
    /// `½·λ_max(−∇²) + max V_loc + Σγ_a`. Used as the safe Chebyshev
    /// filter endpoint — clipping the true spectrum would make the filter
    /// amplify the top states instead of the wanted bottom ones.
    pub fn spectral_upper_bound(&self) -> f64 {
        let r = self.lap.radius();
        let w = mbrpa_grid::second_derivative_weights(r);
        let per_axis = |h: f64| -> f64 {
            (w[0].abs() + 2.0 * w[1..].iter().map(|c| c.abs()).sum::<f64>()) / (h * h)
        };
        let g = self.lap.grid();
        let lap_max = per_axis(g.hx) + per_axis(g.hy) + per_axis(g.hz);
        let vmax = self.vloc.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let nl = self.nonlocal.as_ref().map_or(0.0, |n| n.strength_sum());
        0.5 * lap_max + vmax + nl
    }

    /// Deterministic lower bound on `λ_min(H)`: `min V_loc` (kinetic and
    /// the PSD non-local term only raise the spectrum).
    pub fn spectral_lower_bound(&self) -> f64 {
        self.vloc.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// FLOP estimate of one `H·v` application (used by the deterministic
    /// block-size cost model).
    pub fn apply_flops(&self) -> usize {
        let stencil = self.dim() * (6 * self.lap.radius() + 1) * 2;
        let diag = self.dim() * 2;
        let nl = self.nonlocal.as_ref().map_or(0, |n| 4 * n.nnz());
        stencil + diag + nl
    }
}

/// The complex-symmetric Sternheimer coefficient matrix
/// `A = H − λ I + iω I` (Eq. 8 of the paper). Its spectrum is
/// `λ(H) − λ + iω` (Eq. 9): indefinite for high orbital index `λ = λ_j`,
/// and approaching singularity as `ω → 0`.
#[derive(Clone, Debug)]
pub struct SternheimerOperator<'a> {
    ham: &'a Hamiltonian,
    /// Real shift `−λ_j`.
    pub lambda: f64,
    /// Imaginary shift `ω_k > 0`.
    pub omega: f64,
}

impl<'a> SternheimerOperator<'a> {
    /// Wrap `H` with the `(j, k)` shift pair.
    pub fn new(ham: &'a Hamiltonian, lambda: f64, omega: f64) -> Self {
        Self { ham, lambda, omega }
    }

    /// Grid dimension.
    pub fn dim(&self) -> usize {
        self.ham.dim()
    }

    /// The underlying Hamiltonian.
    pub fn hamiltonian(&self) -> &Hamiltonian {
        self.ham
    }

    /// `out = (H − λ + iω) v`.
    pub fn apply(&self, v: &[C64], out: &mut [C64]) {
        self.ham.apply(v, out);
        self.shift_tail(v, out);
    }

    /// Telemetry-free single-vector apply; block drivers call this from
    /// worker tasks and record counters once on the calling thread.
    pub fn apply_raw(&self, v: &[C64], out: &mut [C64]) {
        self.ham.apply_raw(v, out);
        self.shift_tail(v, out);
    }

    fn shift_tail(&self, v: &[C64], out: &mut [C64]) {
        let shift = C64::new(-self.lambda, self.omega);
        for (o, &x) in out.iter_mut().zip(v.iter()) {
            *o += shift * x;
        }
    }

    /// Block application, one column at a time, splitting the columns
    /// across threads when [`mbrpa_grid::par::block_apply_chunks`] says the
    /// pool has idle capacity.
    pub fn apply_block(&self, v: &Mat<C64>, out: &mut Mat<C64>) {
        assert_eq!(v.shape(), out.shape());
        assert_eq!(v.rows(), self.dim());
        let s = v.cols();
        let n = self.dim();
        mbrpa_obs::add("grid.stencil_applies", s as u64);
        mbrpa_obs::add(
            "grid.stencil_flops",
            self.ham.laplacian().apply_flops_per_vector()
                * (<C64 as Scalar>::COMPONENTS * s) as u64,
        );
        let chunks = mbrpa_grid::par::block_apply_chunks(s, self.apply_flops());
        if chunks <= 1 || n == 0 {
            for j in 0..s {
                self.apply_raw(v.col(j), out.col_mut(j));
            }
            return;
        }
        let cols_per = s.div_ceil(chunks);
        let tasks: Vec<(&[C64], &mut [C64])> = v
            .as_slice()
            .chunks(n * cols_per)
            .zip(out.as_mut_slice().chunks_mut(n * cols_per))
            .collect();
        tasks.into_par_iter().for_each(|(src, dst)| {
            for (sc, dc) in src.chunks(n).zip(dst.chunks_mut(n)) {
                self.apply_raw(sc, dc);
            }
        });
    }

    /// FLOPs of one application to one vector.
    pub fn apply_flops(&self) -> usize {
        // complex arithmetic ≈ 4× real per multiply-add on the real stencil
        2 * self.ham.apply_flops() + 8 * self.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SiliconSpec;
    use mbrpa_linalg::symmetric_eig;

    fn small_ham() -> (Crystal, Hamiltonian) {
        let c = SiliconSpec {
            points_per_cell: 7,
            ..SiliconSpec::default()
        }
        .build();
        let h = Hamiltonian::new(&c, 2, &PotentialParams::default());
        (c, h)
    }

    #[test]
    fn hamiltonian_is_symmetric() {
        let (_, h) = small_ham();
        let dense = h.to_dense();
        let diff = dense.max_abs_diff(&dense.transpose());
        assert!(diff < 1e-10, "asymmetry {diff}");
    }

    #[test]
    fn spectrum_is_bounded_below_and_gapped() {
        let (c, h) = small_ham();
        let eig = symmetric_eig(&h.to_dense()).unwrap();
        let n_s = c.n_occupied();
        // bounded below by the potential depth bound
        assert!(eig.values[0] > -(c.atoms.len() as f64) * 10.0);
        // spectrum increases and the occupied block exists
        assert!(eig.values[n_s - 1] < eig.values[eig.values.len() - 1]);
        // kinetic term dominates at the top: top of spectrum positive
        assert!(*eig.values.last().unwrap() > 0.0);
    }

    #[test]
    fn sternheimer_shift_spectrum() {
        // Eq. 9: λ(A) = λ(H) − λ_j + iω
        let (_, h) = small_ham();
        let dense = h.to_dense();
        let eig = symmetric_eig(&dense).unwrap();
        let (lam, om) = (eig.values[3], 0.25);
        let op = SternheimerOperator::new(&h, lam, om);
        // apply A to the 4th eigenvector: result must be iω times it
        let n = h.dim();
        let v: Vec<C64> = eig
            .vectors
            .col(3)
            .iter()
            .map(|&x| C64::new(x, 0.0))
            .collect();
        let mut av = vec![C64::new(0.0, 0.0); n];
        op.apply(&v, &mut av);
        for (a, x) in av.iter().zip(v.iter()) {
            let expect = C64::new(0.0, om) * x;
            assert!((a - expect).norm() < 1e-9);
        }
    }

    #[test]
    fn sternheimer_is_complex_symmetric_not_hermitian() {
        let (_, h) = small_ham();
        let op = SternheimerOperator::new(&h, 0.5, 0.3);
        let n = h.dim();
        // A = Aᵀ: xᵀAy == yᵀAx for random complex x, y
        let mut state = 77u64;
        let mut rand_c = |n: usize| -> Vec<C64> {
            (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let re = (state as f64 / u64::MAX as f64) - 0.5;
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let im = (state as f64 / u64::MAX as f64) - 0.5;
                    C64::new(re, im)
                })
                .collect()
        };
        let x = rand_c(n);
        let y = rand_c(n);
        let mut ax = vec![C64::new(0.0, 0.0); n];
        let mut ay = vec![C64::new(0.0, 0.0); n];
        op.apply(&x, &mut ax);
        op.apply(&y, &mut ay);
        let xt_ay: C64 = x.iter().zip(ay.iter()).map(|(a, b)| a * b).sum();
        let yt_ax: C64 = y.iter().zip(ax.iter()).map(|(a, b)| a * b).sum();
        assert!((xt_ay - yt_ax).norm() < 1e-9, "A must equal Aᵀ");
        // but xᴴAy != (yᴴAx)* in general would hold for Hermitian; verify
        // A is NOT Hermitian: xᴴAx has nonzero imaginary part (= ω‖x‖²)
        let xh_ax: C64 = x.iter().zip(ax.iter()).map(|(a, b)| a.conj() * b).sum();
        assert!(xh_ax.im.abs() > 1e-6);
    }

    #[test]
    fn block_apply_matches_vector_apply() {
        let (_, h) = small_ham();
        let n = h.dim();
        let v = Mat::from_fn(n, 3, |i, j| ((i * 13 + j * 29) % 23) as f64 * 0.07 - 0.7);
        let mut out = Mat::zeros(n, 3);
        h.apply_block(&v, &mut out);
        for j in 0..3 {
            let mut expect = vec![0.0; n];
            h.apply(v.col(j), &mut expect);
            for (a, b) in out.col(j).iter().zip(expect.iter()) {
                assert!((a - b).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn flops_estimates_positive() {
        let (_, h) = small_ham();
        assert!(h.apply_flops() > h.dim() * 10);
        let op = SternheimerOperator::new(&h, 0.0, 0.1);
        assert!(op.apply_flops() > h.apply_flops());
    }

    #[test]
    fn no_nonlocal_when_strength_zero() {
        let c = SiliconSpec {
            points_per_cell: 7,
            ..SiliconSpec::default()
        }
        .build();
        let params = PotentialParams {
            nonlocal_strength: 0.0,
            ..PotentialParams::default()
        };
        let h = Hamiltonian::new(&c, 2, &params);
        assert!(h.nonlocal().is_none());
    }
}
