//! Chemical system builder: silicon-like crystals on real-space grids.
//!
//! The paper's experimental systems (Table III) are 8-atom diamond-cubic
//! silicon cells replicated 1–5× along one axis, with all atom positions
//! randomly perturbed as a fraction of the lattice constant, plus a vacancy
//! variant (Si₇) for the chemical-accuracy experiment of §IV-A. This module
//! reproduces that geometry on a configurable grid. The electron count
//! follows silicon: 4 valence electrons per atom, i.e. `n_s = 2·atoms`
//! doubly-occupied orbitals.

use mbrpa_grid::{Boundary, Grid3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fractional coordinates of the 8 atoms of a diamond-cubic conventional
/// cell.
pub const DIAMOND_CUBIC_FRACTIONS: [(f64, f64, f64); 8] = [
    (0.00, 0.00, 0.00),
    (0.50, 0.50, 0.00),
    (0.50, 0.00, 0.50),
    (0.00, 0.50, 0.50),
    (0.25, 0.25, 0.25),
    (0.75, 0.75, 0.25),
    (0.75, 0.25, 0.75),
    (0.25, 0.75, 0.75),
];

/// An atom at a position (Bohr) with a valence electron count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    /// Position in Bohr.
    pub position: (f64, f64, f64),
    /// Valence electrons contributed (4 for the silicon-like species).
    pub valence: usize,
}

/// A crystal: a periodic grid plus atom sites.
#[derive(Clone, Debug)]
pub struct Crystal {
    /// The computational grid.
    pub grid: Grid3,
    /// Atom sites.
    pub atoms: Vec<Atom>,
    /// Human-readable label (e.g. `Si8`, `Si16`).
    pub label: String,
}

impl Crystal {
    /// Number of doubly-occupied Kohn–Sham orbitals, `n_s = electrons / 2`.
    pub fn n_occupied(&self) -> usize {
        let electrons: usize = self.atoms.iter().map(|a| a.valence).sum();
        assert!(
            electrons.is_multiple_of(2),
            "odd electron counts are not supported"
        );
        electrons / 2
    }

    /// Total grid points `n_d`.
    pub fn n_grid(&self) -> usize {
        self.grid.len()
    }
}

/// Parameters describing a silicon-like replicated-cell system.
///
/// ```
/// use mbrpa_dft::SiliconSpec;
/// // Table III's Si24: three replicated 8-atom cells
/// let crystal = SiliconSpec::paper_scale(3).build();
/// assert_eq!(crystal.atoms.len(), 24);
/// assert_eq!(crystal.n_occupied(), 48);
/// assert_eq!(crystal.n_grid(), 10125);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SiliconSpec {
    /// Grid points per conventional cell edge (the paper uses 15).
    pub points_per_cell: usize,
    /// Mesh spacing in Bohr (the paper uses 0.69).
    pub mesh: f64,
    /// Number of cells replicated along z (1–5 in the paper).
    pub cells_z: usize,
    /// Uniform random perturbation of atom positions as a fraction of the
    /// lattice constant (the paper perturbs all positions).
    pub perturbation: f64,
    /// RNG seed for the perturbation.
    pub seed: u64,
    /// Grid boundary condition: [`Boundary::Periodic`] for the paper's
    /// bulk crystals, [`Boundary::Dirichlet`] for isolated (hard-wall)
    /// clusters — the same atoms in a box instead of a lattice.
    pub boundary: Boundary,
}

impl Default for SiliconSpec {
    fn default() -> Self {
        Self {
            points_per_cell: 9,
            mesh: 0.69,
            cells_z: 1,
            perturbation: 0.02,
            seed: 7,
            boundary: Boundary::Periodic,
        }
    }
}

impl SiliconSpec {
    /// The paper's full-scale configuration (15³ points per cell).
    pub fn paper_scale(cells_z: usize) -> Self {
        Self {
            points_per_cell: 15,
            cells_z,
            ..Self::default()
        }
    }

    /// Lattice constant implied by the grid (`points · mesh`).
    pub fn lattice_constant(&self) -> f64 {
        self.points_per_cell as f64 * self.mesh
    }

    /// Build the perturbed crystal (`Si_{8·cells_z}` analog).
    pub fn build(&self) -> Crystal {
        self.build_inner(None)
    }

    /// Build the vacancy crystal: same cell and perturbation but with atom
    /// `vacancy_index` removed (the paper's Si₇-from-Si₈ experiment).
    pub fn build_with_vacancy(&self, vacancy_index: usize) -> Crystal {
        self.build_inner(Some(vacancy_index))
    }

    fn build_inner(&self, vacancy: Option<usize>) -> Crystal {
        assert!(self.cells_z >= 1, "need at least one cell");
        assert!(self.points_per_cell >= 5, "grid too coarse");
        let a = self.lattice_constant();
        let n = self.points_per_cell;
        let grid = Grid3::new(
            (n, n, n * self.cells_z),
            (self.mesh, self.mesh, self.mesh),
            self.boundary,
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut atoms = Vec::with_capacity(8 * self.cells_z);
        let mut site_index = 0usize;
        for cell in 0..self.cells_z {
            for &(fx, fy, fz) in DIAMOND_CUBIC_FRACTIONS.iter() {
                // draw perturbations unconditionally so the vacancy system
                // shares the exact geometry of the pristine one
                let dx = rng.random_range(-1.0..1.0) * self.perturbation * a;
                let dy = rng.random_range(-1.0..1.0) * self.perturbation * a;
                let dz = rng.random_range(-1.0..1.0) * self.perturbation * a;
                if Some(site_index) != vacancy {
                    atoms.push(Atom {
                        position: (fx * a + dx, fy * a + dy, (fz + cell as f64) * a + dz),
                        valence: 4,
                    });
                }
                site_index += 1;
            }
        }
        let label = format!("Si{}", atoms.len());
        Crystal { grid, atoms, label }
    }
}

/// The Table III ladder: `Si8, Si16, …` with `cells_z = 1..=max_cells`.
pub fn silicon_ladder(base: SiliconSpec, max_cells: usize) -> Vec<Crystal> {
    (1..=max_cells)
        .map(|c| SiliconSpec { cells_z: c, ..base }.build())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cell_counts() {
        let c = SiliconSpec::default().build();
        assert_eq!(c.atoms.len(), 8);
        assert_eq!(c.n_occupied(), 16);
        assert_eq!(c.n_grid(), 9 * 9 * 9);
        assert_eq!(c.label, "Si8");
    }

    #[test]
    fn replication_scales_everything() {
        let spec = SiliconSpec {
            cells_z: 3,
            ..SiliconSpec::default()
        };
        let c = spec.build();
        assert_eq!(c.atoms.len(), 24);
        assert_eq!(c.n_occupied(), 48);
        assert_eq!(c.grid.nz, 27);
        assert_eq!(c.label, "Si24");
    }

    #[test]
    fn paper_scale_matches_table_iii() {
        // Table III: Si8 has n_d = 3375 = 15³ and n_s = 16
        let c = SiliconSpec::paper_scale(1).build();
        assert_eq!(c.n_grid(), 3375);
        assert_eq!(c.n_occupied(), 16);
        let c5 = SiliconSpec::paper_scale(5).build();
        assert_eq!(c5.n_grid(), 16875);
        assert_eq!(c5.n_occupied(), 80);
    }

    #[test]
    fn perturbation_is_deterministic_and_bounded() {
        let spec = SiliconSpec {
            perturbation: 0.05,
            seed: 42,
            ..SiliconSpec::default()
        };
        let a = spec.lattice_constant();
        let c1 = spec.build();
        let c2 = spec.build();
        assert_eq!(c1.atoms, c2.atoms);
        for (atom, &(fx, fy, fz)) in c1.atoms.iter().zip(DIAMOND_CUBIC_FRACTIONS.iter()) {
            let (x, y, z) = atom.position;
            assert!((x - fx * a).abs() <= 0.05 * a + 1e-12);
            assert!((y - fy * a).abs() <= 0.05 * a + 1e-12);
            assert!((z - fz * a).abs() <= 0.05 * a + 1e-12);
        }
    }

    #[test]
    fn vacancy_removes_one_atom_keeps_geometry() {
        let spec = SiliconSpec {
            seed: 5,
            ..SiliconSpec::default()
        };
        let full = spec.build();
        let vac = spec.build_with_vacancy(3);
        assert_eq!(vac.atoms.len(), 7);
        assert_eq!(vac.label, "Si7");
        assert_eq!(vac.n_occupied(), 14);
        // every vacancy atom matches a pristine atom exactly
        for atom in &vac.atoms {
            assert!(full.atoms.contains(atom));
        }
        // and the removed one is the fourth site
        assert!(!vac.atoms.contains(&full.atoms[3]));
    }

    #[test]
    fn dirichlet_spec_builds_a_cluster() {
        let spec = SiliconSpec {
            boundary: Boundary::Dirichlet,
            ..SiliconSpec::default()
        };
        let c = spec.build();
        assert_eq!(c.grid.bc, Boundary::Dirichlet);
        // same atoms as the periodic system with the same seed
        let periodic = SiliconSpec::default().build();
        assert_eq!(c.atoms, periodic.atoms);
    }

    #[test]
    fn ladder_labels() {
        let ladder = silicon_ladder(SiliconSpec::default(), 3);
        let labels: Vec<_> = ladder.iter().map(|c| c.label.clone()).collect();
        assert_eq!(labels, vec!["Si8", "Si16", "Si24"]);
    }
}
