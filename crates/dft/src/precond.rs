//! Inverse shifted-Laplacian preconditioner for the Sternheimer systems —
//! the paper's §V: "since a key term in the Hamiltonian is the discrete
//! Laplacian matrix, we can leverage fast Poisson solves to use the
//! *inverse* Laplacian as a preconditioner … dynamically applied only in
//! those cases" (the difficult systems).
//!
//! For `A = H − λ I + iω I` with `H = −½∇² + V`, the preconditioner is
//! `M = (−½∇² + v̄ − λ + iω)⁻¹` with `v̄` the mean local potential: the
//! kinetic term dominates at short wavelengths, so `M` equilibrates the
//! high end of the spectrum while the Kronecker eigenbasis makes each
//! application `O(n_d(nx+ny+nz))` — the "fast Poisson solve" of the paper.

use crate::hamiltonian::Hamiltonian;
use mbrpa_grid::SpectralLaplacian;
use mbrpa_linalg::{Mat, C64};
use mbrpa_solver::precond::Preconditioner;

/// `(−½∇² + σ)⁻¹` with complex shift `σ = v̄ − λ + iω`.
pub struct ShiftedLaplacianPreconditioner {
    spectral: SpectralLaplacian,
    sigma: C64,
}

impl ShiftedLaplacianPreconditioner {
    /// Build for the Sternheimer pair `(λ, ω)` of a Hamiltonian, using the
    /// mean local potential as the diagonal surrogate.
    pub fn for_sternheimer(
        ham: &Hamiltonian,
        spectral: SpectralLaplacian,
        lambda: f64,
        omega: f64,
    ) -> Self {
        assert_eq!(spectral.grid().len(), ham.dim(), "grid mismatch");
        let v_mean = ham.vloc().iter().sum::<f64>() / ham.dim() as f64;
        Self {
            spectral,
            sigma: C64::new(v_mean - lambda, omega),
        }
    }

    /// Build with an explicit complex shift.
    pub fn with_shift(spectral: SpectralLaplacian, sigma: C64) -> Self {
        assert!(
            sigma.norm() > 0.0,
            "zero shift makes the periodic preconditioner singular"
        );
        Self { spectral, sigma }
    }

    /// The complex shift σ in use.
    pub fn sigma(&self) -> C64 {
        self.sigma
    }
}

impl Preconditioner for ShiftedLaplacianPreconditioner {
    fn dim(&self) -> usize {
        self.spectral.grid().len()
    }

    fn apply_block(&self, w: &Mat<C64>) -> Mat<C64> {
        let n = self.dim();
        assert_eq!(w.rows(), n);
        let sigma = self.sigma;
        let f = move |lam: f64| C64::new(1.0, 0.0) / (C64::new(-0.5 * lam, 0.0) + sigma);
        let mut out = Mat::zeros(n, w.cols());
        let mut col = vec![C64::new(0.0, 0.0); n];
        for j in 0..w.cols() {
            self.spectral.apply_function_complex(&f, w.col(j), &mut col);
            out.col_mut(j).copy_from_slice(&col);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigensolve::SternheimerLinOp;
    use crate::hamiltonian::SternheimerOperator;
    use crate::potential::PotentialParams;
    use crate::system::SiliconSpec;
    use mbrpa_solver::{block_cocg, block_pcocg, true_relative_residual, CocgOptions};

    fn fixture() -> (Hamiltonian, SpectralLaplacian, Vec<f64>) {
        let crystal = SiliconSpec {
            points_per_cell: 7,
            perturbation: 0.02,
            seed: 3,
            ..SiliconSpec::default()
        }
        .build();
        let ham = Hamiltonian::new(&crystal, 2, &PotentialParams::default());
        let spec = SpectralLaplacian::new(crystal.grid, 2).unwrap();
        let ks = crate::eigensolve::solve_occupied_dense(&ham, crystal.n_occupied(), 0).unwrap();
        (ham, spec, ks.energies)
    }

    fn rand_rhs(n: usize, s: usize, seed: u64) -> Mat<C64> {
        let mut state = seed | 1;
        Mat::from_fn(n, s, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let re = (state as f64 / u64::MAX as f64) - 0.5;
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            C64::new(re, (state as f64 / u64::MAX as f64) - 0.5)
        })
    }

    #[test]
    fn preconditioned_solution_is_correct() {
        let (ham, spec, energies) = fixture();
        let lambda = energies[energies.len() - 1];
        let omega = 0.1;
        let op = SternheimerLinOp::new(SternheimerOperator::new(&ham, lambda, omega));
        let pre = ShiftedLaplacianPreconditioner::for_sternheimer(&ham, spec, lambda, omega);
        let b = rand_rhs(ham.dim(), 2, 5);
        let opts = CocgOptions {
            tol: 1e-8,
            max_iters: 3000,
            ..CocgOptions::default()
        };
        let (x, rep) = block_pcocg(&op, &pre, &b, None, &opts);
        assert!(rep.converged, "{rep:?}");
        assert!(true_relative_residual(&op, &b, &x) < 1e-6);
    }

    #[test]
    fn preconditioner_reduces_iterations_on_hard_system() {
        // the hard (j = n_s, small ω) regime the paper targets
        let (ham, spec, energies) = fixture();
        let lambda = energies[energies.len() - 1];
        let omega = 0.02;
        let op = SternheimerLinOp::new(SternheimerOperator::new(&ham, lambda, omega));
        let pre = ShiftedLaplacianPreconditioner::for_sternheimer(&ham, spec, lambda, omega);
        let b = rand_rhs(ham.dim(), 2, 9);
        let opts = CocgOptions {
            tol: 1e-6,
            max_iters: 6000,
            ..CocgOptions::default()
        };
        let (_, plain) = block_cocg(&op, &b, None, &opts);
        let (_, pcg) = block_pcocg(&op, &pre, &b, None, &opts);
        assert!(plain.converged && pcg.converged, "{plain:?} vs {pcg:?}");
        assert!(
            pcg.iterations < plain.iterations,
            "preconditioned {} vs plain {} iterations",
            pcg.iterations,
            plain.iterations
        );
    }

    #[test]
    fn sigma_is_set_from_shift_pair() {
        let (ham, spec, _) = fixture();
        let pre = ShiftedLaplacianPreconditioner::for_sternheimer(&ham, spec, 1.5, 0.25);
        let v_mean = ham.vloc().iter().sum::<f64>() / ham.dim() as f64;
        assert!((pre.sigma().re - (v_mean - 1.5)).abs() < 1e-12);
        assert!((pre.sigma().im - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero shift")]
    fn rejects_zero_shift() {
        let (_, spec, _) = fixture();
        let _ = ShiftedLaplacianPreconditioner::with_shift(spec, C64::new(0.0, 0.0));
    }
}
