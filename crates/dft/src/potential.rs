//! Model pseudopotential: local Gaussian wells plus Kleinman–Bylander-style
//! non-local projectors.
//!
//! **Substitution note (see DESIGN.md):** the paper obtains its Hamiltonian
//! from a SPARC Kohn–Sham calculation with real silicon pseudopotentials.
//! The RPA stage only needs a real symmetric grid Hamiltonian of the form
//! `−½∇² + V_loc + 𝒳Γ𝒳ᵀ` with a gapped low spectrum, so we synthesize one:
//! a local potential of attractive Gaussians at the (perturbed) atom sites
//! and an optional low-rank non-local term built from localized projector
//! functions. Both pieces exercise exactly the kernels the paper analyzes
//! (stencil + diagonal + sparse outer product `𝒳𝒳ᴴ`).

use crate::system::Crystal;
use mbrpa_grid::Grid3;
use mbrpa_linalg::{Mat, Scalar};

/// Shape parameters of the model pseudopotential.
#[derive(Clone, Copy, Debug)]
pub struct PotentialParams {
    /// Depth of each local Gaussian well (Hartree).
    pub depth: f64,
    /// Gaussian width σ of the local wells (Bohr).
    pub sigma: f64,
    /// Non-local projector strength γ (Hartree); 0 disables the term.
    pub nonlocal_strength: f64,
    /// Non-local projector Gaussian width (Bohr).
    pub nonlocal_sigma: f64,
    /// Support cutoff radius of each projector (Bohr); beyond it the
    /// projector is exactly zero, making `𝒳` sparse.
    pub nonlocal_cutoff: f64,
}

impl Default for PotentialParams {
    fn default() -> Self {
        Self {
            depth: 3.0,
            sigma: 1.1,
            nonlocal_strength: 0.8,
            nonlocal_sigma: 0.9,
            nonlocal_cutoff: 2.7,
        }
    }
}

/// Sum over periodic images within the minimum-image convention plus the
/// nearest shell, adequate for wells much narrower than the cell.
fn image_displacement(grid: &Grid3, d: (f64, f64, f64)) -> f64 {
    let (lx, ly, lz) = grid.lengths();
    let dx = grid.min_image(d.0, lx);
    let dy = grid.min_image(d.1, ly);
    let dz = grid.min_image(d.2, lz);
    (dx * dx + dy * dy + dz * dz).sqrt()
}

/// Evaluate the local potential on every grid point.
pub fn local_potential(crystal: &Crystal, params: &PotentialParams) -> Vec<f64> {
    let grid = &crystal.grid;
    let inv_two_sigma2 = 1.0 / (2.0 * params.sigma * params.sigma);
    let mut v = vec![0.0; grid.len()];
    for idx in 0..grid.len() {
        let (i, j, k) = grid.coords(idx);
        let p = grid.position(i, j, k);
        let mut acc = 0.0;
        for atom in &crystal.atoms {
            let r = image_displacement(
                grid,
                (
                    p.0 - atom.position.0,
                    p.1 - atom.position.1,
                    p.2 - atom.position.2,
                ),
            );
            acc -= params.depth * (-r * r * inv_two_sigma2).exp();
        }
        v[idx] = acc;
    }
    v
}

/// A sparse localized projector: the non-zero grid indices and values of
/// one Kleinman–Bylander-style channel.
#[derive(Clone, Debug)]
pub struct Projector {
    /// Grid indices inside the support ball.
    pub indices: Vec<u32>,
    /// Projector values at those indices (unit l₂ norm).
    pub values: Vec<f64>,
    /// Channel strength γ.
    pub strength: f64,
}

/// The non-local term `V_nl = Σ_a γ_a |p_a⟩⟨p_a| = 𝒳 Γ 𝒳ᵀ` with sparse,
/// atom-centered columns of `𝒳`.
#[derive(Clone, Debug)]
pub struct NonlocalProjectors {
    projectors: Vec<Projector>,
    dim: usize,
}

impl NonlocalProjectors {
    /// Build one projector per atom.
    pub fn build(crystal: &Crystal, params: &PotentialParams) -> Self {
        let grid = &crystal.grid;
        let inv_two_sigma2 = 1.0 / (2.0 * params.nonlocal_sigma * params.nonlocal_sigma);
        let cutoff2 = params.nonlocal_cutoff * params.nonlocal_cutoff;
        let mut projectors = Vec::with_capacity(crystal.atoms.len());
        for atom in &crystal.atoms {
            let mut indices = Vec::new();
            let mut values = Vec::new();
            for idx in 0..grid.len() {
                let (i, j, k) = grid.coords(idx);
                let p = grid.position(i, j, k);
                let dx = grid.min_image(p.0 - atom.position.0, grid.lengths().0);
                let dy = grid.min_image(p.1 - atom.position.1, grid.lengths().1);
                let dz = grid.min_image(p.2 - atom.position.2, grid.lengths().2);
                let r2 = dx * dx + dy * dy + dz * dz;
                if r2 <= cutoff2 {
                    indices.push(idx as u32);
                    values.push((-r2 * inv_two_sigma2).exp());
                }
            }
            // normalize to unit l2 norm so γ directly sets the channel scale
            let norm: f64 = values.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 0.0 {
                values.iter_mut().for_each(|x| *x /= norm);
            }
            projectors.push(Projector {
                indices,
                values,
                strength: params.nonlocal_strength,
            });
        }
        Self {
            projectors,
            dim: grid.len(),
        }
    }

    /// Number of projector channels.
    pub fn len(&self) -> usize {
        self.projectors.len()
    }

    /// True when no channels exist.
    pub fn is_empty(&self) -> bool {
        self.projectors.is_empty()
    }

    /// Grid dimension the projectors act on.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total stored non-zeros across channels.
    pub fn nnz(&self) -> usize {
        self.projectors.iter().map(|p| p.indices.len()).sum()
    }

    /// Sum of channel strengths `Σ γ_a`: an upper bound on `λ_max(V_nl)`
    /// (each channel is a unit-norm rank-1 PSD term of norm `γ_a`).
    pub fn strength_sum(&self) -> f64 {
        self.projectors.iter().map(|p| p.strength.max(0.0)).sum()
    }

    /// `y += Σ_a γ_a p_a (p_aᵀ x)` for one vector (sparse gather + scatter).
    pub fn apply_add<T: Scalar>(&self, x: &[T], y: &mut [T]) {
        debug_assert_eq!(x.len(), self.dim);
        debug_assert_eq!(y.len(), self.dim);
        for proj in &self.projectors {
            let mut dot = T::zero();
            for (&i, &v) in proj.indices.iter().zip(proj.values.iter()) {
                dot += x[i as usize].scale(v);
            }
            let coeff = dot.scale(proj.strength);
            for (&i, &v) in proj.indices.iter().zip(proj.values.iter()) {
                y[i as usize] += coeff.scale(v);
            }
        }
    }

    /// Block version: applied column by column; the paper treats this term
    /// as a sparse-dense matmul (`𝒳ᵀ P` then `𝒳 · …`) for higher arithmetic
    /// intensity, which this layout mirrors by keeping each channel's
    /// gather/scatter contiguous.
    pub fn apply_add_block<T: Scalar>(&self, x: &Mat<T>, y: &mut Mat<T>) {
        assert_eq!(x.shape(), y.shape());
        for j in 0..x.cols() {
            self.apply_add(x.col(j), y.col_mut(j));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SiliconSpec;
    use mbrpa_linalg::C64;

    fn small_crystal() -> Crystal {
        SiliconSpec {
            points_per_cell: 7,
            perturbation: 0.0,
            ..SiliconSpec::default()
        }
        .build()
    }

    #[test]
    fn local_potential_is_negative_and_bounded() {
        let c = small_crystal();
        let v = local_potential(&c, &PotentialParams::default());
        assert_eq!(v.len(), c.n_grid());
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max <= 0.0, "attractive wells must be non-positive");
        // wells can overlap, but not beyond atoms × depth
        assert!(min >= -(c.atoms.len() as f64) * 3.0);
        assert!(
            min < -1.0,
            "potential should be meaningfully deep, got {min}"
        );
    }

    #[test]
    fn potential_deepest_near_atoms() {
        let c = small_crystal();
        let params = PotentialParams::default();
        let v = local_potential(&c, &params);
        // the grid point nearest to atom 0 must be deeper than the cell
        // center region far from all atoms
        let g = &c.grid;
        let (ax, ay, az) = c.atoms[0].position;
        let near = g.index(
            (ax / g.hx).round() as usize % g.nx,
            (ay / g.hy).round() as usize % g.ny,
            (az / g.hz).round() as usize % g.nz,
        );
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        assert!(v[near] < mean);
    }

    #[test]
    fn projectors_are_sparse_and_normalized() {
        let c = small_crystal();
        let nl = NonlocalProjectors::build(&c, &PotentialParams::default());
        assert_eq!(nl.len(), 8);
        assert!(nl.nnz() > 0);
        assert!(nl.nnz() < 8 * c.n_grid(), "projectors must be localized");
        for p in 0..nl.len() {
            let norm: f64 = nl.projectors[p].values.iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nonlocal_apply_is_symmetric_positive() {
        let c = small_crystal();
        let nl = NonlocalProjectors::build(&c, &PotentialParams::default());
        let n = c.n_grid();
        let mut state = 123u64;
        let mut rand_vec = || -> Vec<f64> {
            (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state as f64 / u64::MAX as f64) - 0.5
                })
                .collect()
        };
        let x = rand_vec();
        let y = rand_vec();
        let mut vx = vec![0.0; n];
        let mut vy = vec![0.0; n];
        nl.apply_add(&x, &mut vx);
        nl.apply_add(&y, &mut vy);
        let xv_y: f64 = x.iter().zip(vy.iter()).map(|(a, b)| a * b).sum();
        let yv_x: f64 = y.iter().zip(vx.iter()).map(|(a, b)| a * b).sum();
        assert!((xv_y - yv_x).abs() < 1e-10, "V_nl must be symmetric");
        let quad: f64 = x.iter().zip(vx.iter()).map(|(a, b)| a * b).sum();
        assert!(quad >= -1e-12, "V_nl with γ>0 must be PSD");
    }

    #[test]
    fn nonlocal_rank_bounded_by_channels() {
        let c = small_crystal();
        let nl = NonlocalProjectors::build(&c, &PotentialParams::default());
        // applying to a vector orthogonal to all projectors gives zero
        let n = c.n_grid();
        // build a vector supported on a single point far from all supports —
        // if that point is inside some support, fall back to checking rank
        // via image dimension: the image of 9 random vectors must span ≤ 8.
        let mut images = Mat::zeros(n, 9);
        let mut state = 9u64;
        for j in 0..9 {
            let x: Vec<f64> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state as f64 / u64::MAX as f64) - 0.5
                })
                .collect();
            let mut y = vec![0.0; n];
            nl.apply_add(&x, &mut y);
            images.col_mut(j).copy_from_slice(&y);
        }
        let qr = mbrpa_linalg::thin_qr(&images);
        assert!(
            !qr.deficient.is_empty(),
            "9 images of a rank-8 operator must be dependent"
        );
    }

    #[test]
    fn complex_apply_matches_componentwise() {
        let c = small_crystal();
        let nl = NonlocalProjectors::build(&c, &PotentialParams::default());
        let n = c.n_grid();
        let re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let im: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let xc: Vec<C64> = re
            .iter()
            .zip(im.iter())
            .map(|(&a, &b)| C64::new(a, b))
            .collect();
        let mut yc = vec![C64::new(0.0, 0.0); n];
        nl.apply_add(&xc, &mut yc);
        let mut yr = vec![0.0; n];
        let mut yi = vec![0.0; n];
        nl.apply_add(&re, &mut yr);
        nl.apply_add(&im, &mut yi);
        for i in 0..n {
            assert!((yc[i].re - yr[i]).abs() < 1e-12);
            assert!((yc[i].im - yi[i]).abs() < 1e-12);
        }
    }
}
