//! # mbrpa-dft
//!
//! Model Kohn–Sham DFT substrate: the "prior KS-DFT calculation" whose
//! occupied orbitals, orbital energies, and Hamiltonian the RPA stage
//! consumes. Provides silicon-like crystal builders (Table III systems),
//! a model pseudopotential (local Gaussian wells + Kleinman–Bylander-style
//! sparse projectors), the matrix-free Hamiltonian, the complex-symmetric
//! Sternheimer operator, and dense/CheFSI occupied-orbital eigensolvers.
//!
//! See DESIGN.md for the substitution argument: the paper used SPARC with
//! real silicon pseudopotentials; the RPA algorithms only require the
//! structure reproduced here.

// Index-heavy numerical kernels read better with explicit loop indices and
// the domain-meaningful `2r + 1` stencil-count forms.
#![allow(clippy::needless_range_loop, clippy::int_plus_one)]
// In-crate test modules assert *exact* float results on purpose — the
// workspace pins accumulation order for bitwise reproducibility — so
// `clippy::float_cmp` is relaxed for test builds only; non-test code is
// still checked by the plain lib target (see DESIGN.md §9).
#![cfg_attr(test, allow(clippy::float_cmp))]
#![warn(missing_docs)]

pub mod eigensolve;
pub mod hamiltonian;
pub mod occupations;
pub mod orbital_io;
pub mod potential;
pub mod precond;
pub mod system;

pub use eigensolve::{
    solve_occupied_chefsi, solve_occupied_dense, ChefsiOptions, HamiltonianOperator, KsSolution,
    SternheimerLinOp,
};
pub use hamiltonian::{Hamiltonian, SternheimerOperator};
pub use occupations::{
    electron_density, fermi_dirac_occupations, integer_occupations, Occupations,
};
pub use orbital_io::{load_orbitals, save_orbitals, OrbitalIoError};
pub use potential::{local_potential, NonlocalProjectors, PotentialParams, Projector};
pub use precond::ShiftedLaplacianPreconditioner;
pub use system::{silicon_ladder, Atom, Crystal, SiliconSpec, DIAMOND_CUBIC_FRACTIONS};
