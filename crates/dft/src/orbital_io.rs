//! Orbital file I/O — the SPARC interface substitution.
//!
//! The paper's RPA code does not run DFT itself: it **reads** the occupied
//! Kohn–Sham orbitals, orbital energies, and electron density written by a
//! prior SPARC calculation ("all output files required from SPARC are
//! already provided in the artifact"). This module reproduces that
//! workflow boundary with a self-describing text format, so the KS stage
//! can be computed once and reused across RPA parameter sweeps — exactly
//! how the artifact's experiments are organized.
//!
//! Format (`.orb`): a header line, dimensions, then one orbital per block:
//!
//! ```text
//! mbrpa-orbitals v1
//! n_d <n> n_occupied <n_s> n_stored <k>
//! energy <λ_1>
//! <Ψ_1[0]>
//! …
//! ```

use crate::eigensolve::KsSolution;
use mbrpa_linalg::Mat;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Magic first line of the format.
const MAGIC: &str = "mbrpa-orbitals v1";

/// Errors reading or writing orbital files.
#[derive(Debug)]
pub enum OrbitalIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file is not an orbital file or is corrupt.
    Format {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for OrbitalIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrbitalIoError::Io(e) => write!(f, "orbital file I/O error: {e}"),
            OrbitalIoError::Format { message } => {
                write!(f, "orbital file format error: {message}")
            }
        }
    }
}

impl std::error::Error for OrbitalIoError {}

impl From<std::io::Error> for OrbitalIoError {
    fn from(e: std::io::Error) -> Self {
        OrbitalIoError::Io(e)
    }
}

fn format_err(message: impl Into<String>) -> OrbitalIoError {
    OrbitalIoError::Format {
        message: message.into(),
    }
}

/// Write a [`KsSolution`] to `path` (full double precision via hex floats
/// would be unreadable; `{:.17e}` round-trips f64 exactly).
pub fn save_orbitals(path: &Path, ks: &KsSolution) -> Result<(), OrbitalIoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let n = ks.orbitals.rows();
    let k = ks.orbitals.cols();
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "n_d {n} n_occupied {} n_stored {k}", ks.n_occupied)?;
    for j in 0..k {
        writeln!(w, "energy {:.17e}", ks.energies[j])?;
        for &x in ks.orbitals.col(j) {
            writeln!(w, "{x:.17e}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Read a [`KsSolution`] written by [`save_orbitals`].
pub fn load_orbitals(path: &Path) -> Result<KsSolution, OrbitalIoError> {
    let file = std::fs::File::open(path)?;
    let mut lines = BufReader::new(file).lines();
    let mut next_line = || -> Result<String, OrbitalIoError> {
        lines
            .next()
            .ok_or_else(|| format_err("unexpected end of file"))?
            .map_err(OrbitalIoError::from)
    };

    let magic = next_line()?;
    if magic.trim() != MAGIC {
        return Err(format_err(format!("bad magic line `{magic}`")));
    }
    let header = next_line()?;
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() != 6 || toks[0] != "n_d" || toks[2] != "n_occupied" || toks[4] != "n_stored" {
        return Err(format_err(format!("bad header `{header}`")));
    }
    let n: usize = toks[1].parse().map_err(|_| format_err("bad n_d"))?;
    let n_occ: usize = toks[3].parse().map_err(|_| format_err("bad n_occupied"))?;
    let k: usize = toks[5].parse().map_err(|_| format_err("bad n_stored"))?;
    if n_occ > k {
        return Err(format_err("n_occupied exceeds stored orbitals"));
    }

    let mut energies = Vec::with_capacity(k);
    let mut orbitals = Mat::zeros(n, k);
    for j in 0..k {
        let eline = next_line()?;
        let value = eline
            .strip_prefix("energy ")
            .ok_or_else(|| format_err(format!("expected `energy …`, got `{eline}`")))?;
        energies.push(
            value
                .trim()
                .parse()
                .map_err(|_| format_err("bad energy value"))?,
        );
        let col = orbitals.col_mut(j);
        for x in col.iter_mut() {
            let line = next_line()?;
            *x = line
                .trim()
                .parse()
                .map_err(|_| format_err(format!("bad orbital value `{line}`")))?;
        }
    }
    // energies must be ascending to be a valid KS solution
    for w in energies.windows(2) {
        if w[0] > w[1] + 1e-12 {
            return Err(format_err("energies are not ascending"));
        }
    }
    Ok(KsSolution {
        energies,
        orbitals,
        n_occupied: n_occ,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigensolve::solve_occupied_dense;
    use crate::hamiltonian::Hamiltonian;
    use crate::potential::PotentialParams;
    use crate::system::SiliconSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mbrpa_test_{}_{name}.orb", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_is_exact() {
        let c = SiliconSpec {
            points_per_cell: 5,
            ..SiliconSpec::default()
        }
        .build();
        let ham = Hamiltonian::new(&c, 2, &PotentialParams::default());
        let ks = solve_occupied_dense(&ham, c.n_occupied(), 2).unwrap();
        let path = tmp("roundtrip");
        save_orbitals(&path, &ks).unwrap();
        let back = load_orbitals(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.n_occupied, ks.n_occupied);
        assert_eq!(back.energies.len(), ks.energies.len());
        for (a, b) in back.energies.iter().zip(ks.energies.iter()) {
            assert_eq!(a, b, "f64 round-trip must be exact");
        }
        assert_eq!(back.orbitals.max_abs_diff(&ks.orbitals), 0.0);
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, "not an orbital file\n").unwrap();
        let err = load_orbitals(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, OrbitalIoError::Format { .. }));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncated_file() {
        let path = tmp("truncated");
        std::fs::write(
            &path,
            format!("{MAGIC}\nn_d 4 n_occupied 1 n_stored 1\nenergy 1.0\n0.5\n"),
        )
        .unwrap();
        let err = load_orbitals(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("end of file"));
    }

    #[test]
    fn rejects_unsorted_energies() {
        let path = tmp("unsorted");
        let mut body = format!("{MAGIC}\nn_d 2 n_occupied 2 n_stored 2\n");
        body.push_str("energy 2.0\n0.0\n1.0\n");
        body.push_str("energy 1.0\n1.0\n0.0\n");
        std::fs::write(&path, body).unwrap();
        let err = load_orbitals(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("ascending"));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_orbitals(Path::new("/nonexistent/mbrpa.orb")).unwrap_err();
        assert!(matches!(err, OrbitalIoError::Io(_)));
    }
}
