//! Orbital occupations: integer filling and Fermi–Dirac smearing.
//!
//! The paper motivates RPA precisely for "small-gap and metallic systems
//! where other exchange-correlation functionals readily break down"; its
//! own evaluation uses gapped silicon with integer (double) occupations.
//! This module provides both: the integer filling the Sternheimer path
//! assumes, and Fermi–Dirac fractional occupations consumed by the direct
//! Adler–Wiser oracle (Eq. 2 holds for any `g_m − g_n`).

use mbrpa_linalg::exactly_zero;

/// Occupations `g_j ∈ [0, 2]` for a set of orbital energies.
#[derive(Clone, Debug, PartialEq)]
pub struct Occupations {
    /// Per-orbital occupation, matching the energy ordering.
    pub g: Vec<f64>,
    /// Chemical potential (Fermi level) used.
    pub fermi_level: f64,
}

impl Occupations {
    /// Total electron count `Σ g_j`.
    pub fn electrons(&self) -> f64 {
        self.g.iter().sum()
    }

    /// True if every occupation is (numerically) 0 or 2.
    pub fn is_integer(&self, tol: f64) -> bool {
        self.g
            .iter()
            .all(|&g| g.abs() < tol || (g - 2.0).abs() < tol)
    }
}

/// Integer filling: the lowest `n_electrons/2` orbitals doubly occupied
/// (the paper's configuration).
pub fn integer_occupations(energies: &[f64], n_electrons: usize) -> Occupations {
    assert!(n_electrons.is_multiple_of(2), "closed-shell filling only");
    let n_occ = n_electrons / 2;
    assert!(n_occ <= energies.len(), "not enough orbitals to fill");
    let g: Vec<f64> = (0..energies.len())
        .map(|j| if j < n_occ { 2.0 } else { 0.0 })
        .collect();
    let fermi_level = if n_occ == 0 {
        f64::NEG_INFINITY
    } else if n_occ < energies.len() {
        0.5 * (energies[n_occ - 1] + energies[n_occ])
    } else {
        energies[n_occ - 1]
    };
    Occupations { g, fermi_level }
}

/// Fermi–Dirac occupations `g(ε) = 2/(1 + exp((ε − μ)/T))` with the
/// chemical potential `μ` solved by bisection to match `n_electrons`.
/// `temperature` is in Hartree (k_B·T); `T → 0` recovers integer filling
/// for gapped spectra.
pub fn fermi_dirac_occupations(
    energies: &[f64],
    n_electrons: f64,
    temperature: f64,
) -> Occupations {
    assert!(temperature > 0.0, "temperature must be positive");
    assert!(!energies.is_empty(), "need at least one orbital");
    assert!(
        n_electrons >= 0.0 && n_electrons <= 2.0 * energies.len() as f64,
        "electron count outside [0, 2·n_orbitals]"
    );
    let count = |mu: f64| -> f64 {
        energies
            .iter()
            .map(|&e| 2.0 / (1.0 + ((e - mu) / temperature).exp()))
            .sum()
    };
    // bracket the chemical potential
    let e_min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
    let e_max = energies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut lo = e_min - 60.0 * temperature - 1.0;
    let mut hi = e_max + 60.0 * temperature + 1.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count(mid) < n_electrons {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mu = 0.5 * (lo + hi);
    let g: Vec<f64> = energies
        .iter()
        .map(|&e| 2.0 / (1.0 + ((e - mu) / temperature).exp()))
        .collect();
    Occupations { g, fermi_level: mu }
}

/// Electron density `ρ(r) = Σ_j g_j |Ψ_j(r)|²` on the grid — one of the
/// SPARC outputs the paper's workflow consumes.
pub fn electron_density(orbitals: &mbrpa_linalg::Mat<f64>, occupations: &[f64]) -> Vec<f64> {
    assert_eq!(orbitals.cols(), occupations.len(), "orbital count mismatch");
    let n = orbitals.rows();
    let mut rho = vec![0.0; n];
    for (j, &g) in occupations.iter().enumerate() {
        if exactly_zero(g) {
            continue;
        }
        for (r, &psi) in rho.iter_mut().zip(orbitals.col(j).iter()) {
            *r += g * psi * psi;
        }
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_filling_counts() {
        let energies = [-2.0, -1.0, 0.0, 1.0];
        let occ = integer_occupations(&energies, 4);
        assert_eq!(occ.g, vec![2.0, 2.0, 0.0, 0.0]);
        assert!((occ.electrons() - 4.0).abs() < 1e-15);
        assert!((occ.fermi_level + 0.5).abs() < 1e-15); // midgap
        assert!(occ.is_integer(1e-12));
    }

    #[test]
    fn fermi_dirac_matches_electron_count() {
        let energies: Vec<f64> = (0..20).map(|i| -3.0 + 0.3 * i as f64).collect();
        for electrons in [2.0, 8.0, 14.5, 26.0] {
            let occ = fermi_dirac_occupations(&energies, electrons, 0.05);
            assert!(
                (occ.electrons() - electrons).abs() < 1e-9,
                "Σg = {} vs {electrons}",
                occ.electrons()
            );
            // occupations monotone non-increasing in energy
            for w in occ.g.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn cold_limit_recovers_integer_filling_for_gapped_spectrum() {
        let energies = [-5.0, -4.9, -4.8, -1.0, -0.9]; // big gap after 3
        let occ = fermi_dirac_occupations(&energies, 6.0, 1e-3);
        assert!(occ.is_integer(1e-9), "{:?}", occ.g);
        assert!((occ.g[0] - 2.0).abs() < 1e-9);
        assert!(occ.g[3].abs() < 1e-9);
        // Fermi level sits in the gap
        assert!(occ.fermi_level > -4.8 && occ.fermi_level < -1.0);
    }

    #[test]
    fn hot_metallic_spectrum_is_fractional() {
        // closely spaced levels at half filling: smearing must spread
        let energies: Vec<f64> = (0..10).map(|i| 0.01 * i as f64).collect();
        let occ = fermi_dirac_occupations(&energies, 10.0, 0.05);
        assert!(!occ.is_integer(1e-3), "{:?}", occ.g);
        let partial = occ.g.iter().filter(|&&g| g > 0.1 && g < 1.9).count();
        assert!(
            partial >= 4,
            "expected several fractional levels: {:?}",
            occ.g
        );
    }

    #[test]
    fn density_sums_to_electron_count_for_orthonormal_orbitals() {
        use mbrpa_linalg::{orthonormalize_columns, Mat};
        let mut psi = Mat::from_fn(50, 4, |i, j| ((i * 7 + j * 3) % 13) as f64 - 6.0);
        orthonormalize_columns(&mut psi);
        let occ = [2.0, 2.0, 1.5, 0.0];
        let rho = electron_density(&psi, &occ);
        assert!(
            rho.iter().all(|&x| x >= 0.0),
            "density must be non-negative"
        );
        let total: f64 = rho.iter().sum();
        assert!((total - 5.5).abs() < 1e-10, "∫ρ = {total}");
    }
}
