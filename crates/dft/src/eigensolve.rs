//! Occupied-orbital eigensolvers: the "prior KS-DFT calculation" the paper
//! assumes.
//!
//! The RPA stage consumes the lowest `n_s` eigenpairs `(λ_j, Ψ_j)` of the
//! Kohn–Sham Hamiltonian. Two paths are provided: a dense reference solver
//! (exact, `O(n_d³)`, small grids / oracle duty) and Chebyshev-filtered
//! subspace iteration (CheFSI, ref [34] of the paper) which only applies
//! `H` matrix-free — the same algorithmic pattern the paper reuses for the
//! dielectric eigenproblem.

use crate::hamiltonian::{Hamiltonian, SternheimerOperator};
use mbrpa_linalg::{
    generalized_sym_eig, matmul, matmul_tn, orthonormalize_columns, symmetric_eig, LinalgError,
    Mat, C64,
};
use mbrpa_solver::{chebyshev_filter, LinearOperator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// [`Hamiltonian`] as a real matrix-free operator.
pub struct HamiltonianOperator<'a> {
    ham: &'a Hamiltonian,
}

impl<'a> HamiltonianOperator<'a> {
    /// Wrap a Hamiltonian.
    pub fn new(ham: &'a Hamiltonian) -> Self {
        Self { ham }
    }
}

impl LinearOperator<f64> for HamiltonianOperator<'_> {
    fn dim(&self) -> usize {
        self.ham.dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.ham.apply(x, y);
    }
    fn apply_block(&self, x: &Mat<f64>, y: &mut Mat<f64>) {
        self.ham.apply_block(x, y);
    }
    fn apply_flops(&self) -> usize {
        self.ham.apply_flops()
    }
}

/// [`SternheimerOperator`] as a complex matrix-free operator (consumed by
/// block COCG).
pub struct SternheimerLinOp<'a> {
    op: SternheimerOperator<'a>,
}

impl<'a> SternheimerLinOp<'a> {
    /// Wrap a shifted Hamiltonian.
    pub fn new(op: SternheimerOperator<'a>) -> Self {
        Self { op }
    }
}

impl LinearOperator<C64> for SternheimerLinOp<'_> {
    fn dim(&self) -> usize {
        self.op.dim()
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        self.op.apply(x, y);
    }
    fn apply_block(&self, x: &Mat<C64>, y: &mut Mat<C64>) {
        self.op.apply_block(x, y);
    }
    fn apply_flops(&self) -> usize {
        self.op.apply_flops()
    }
}

/// The outcome of the prior Kohn–Sham calculation: the lowest
/// `n_occupied (+ extra)` eigenpairs of `H`.
#[derive(Clone, Debug)]
pub struct KsSolution {
    /// Eigenvalues, ascending; `energies.len() >= n_occupied`.
    pub energies: Vec<f64>,
    /// Orthonormal eigenvectors as columns, matching `energies`.
    pub orbitals: Mat<f64>,
    /// How many of the leading orbitals are (doubly) occupied.
    pub n_occupied: usize,
}

impl KsSolution {
    /// Energies of the occupied orbitals only.
    pub fn occupied_energies(&self) -> &[f64] {
        &self.energies[..self.n_occupied]
    }

    /// Copy of the occupied orbital block `Ψ ∈ ℝ^{n_d × n_s}`.
    pub fn occupied_orbitals(&self) -> Mat<f64> {
        self.orbitals.columns(0, self.n_occupied)
    }

    /// HOMO–LUMO gap `λ_{n_s+1} − λ_{n_s}` when an extra eigenpair was
    /// computed.
    pub fn gap(&self) -> Option<f64> {
        if self.energies.len() > self.n_occupied {
            Some(self.energies[self.n_occupied] - self.energies[self.n_occupied - 1])
        } else {
            None
        }
    }
}

/// Exact dense diagonalization: assembles `H` and keeps the lowest
/// `n_occupied + extra` eigenpairs.
pub fn solve_occupied_dense(
    ham: &Hamiltonian,
    n_occupied: usize,
    extra: usize,
) -> Result<KsSolution, LinalgError> {
    let n = ham.dim();
    assert!(
        n_occupied + extra <= n,
        "requesting more eigenpairs than n_d"
    );
    let eig = symmetric_eig(&ham.to_dense())?;
    let keep = n_occupied + extra;
    Ok(KsSolution {
        energies: eig.values[..keep].to_vec(),
        orbitals: eig.vectors.columns(0, keep),
        n_occupied,
    })
}

/// Options for [`solve_occupied_chefsi`].
#[derive(Clone, Copy, Debug)]
pub struct ChefsiOptions {
    /// Chebyshev filter degree per subspace iteration.
    pub degree: usize,
    /// Relative residual tolerance on the occupied block.
    pub tol: f64,
    /// Subspace iteration cap.
    pub max_iters: usize,
    /// Buffer eigenpairs carried beyond `n_occupied` (guards convergence of
    /// the occupied edge and provides the gap estimate).
    pub extra: usize,
    /// RNG seed for the initial subspace.
    pub seed: u64,
}

impl Default for ChefsiOptions {
    fn default() -> Self {
        Self {
            degree: 10,
            tol: 1e-8,
            max_iters: 120,
            extra: 6,
            seed: 1234,
        }
    }
}

/// Safe Chebyshev filter endpoint: the Hamiltonian's deterministic
/// spectral upper bound plus a small margin. A power-iteration estimate is
/// NOT safe here: when `|λ_min| ≈ λ_max` the Rayleigh quotient can land
/// anywhere between the extremes, and a clipped filter endpoint makes
/// Chebyshev amplify the top of the spectrum instead of the wanted bottom.
fn filter_upper_bound(ham: &Hamiltonian) -> f64 {
    let b = ham.spectral_upper_bound();
    b + 0.01 * b.abs() + 0.1
}

/// Chebyshev-filtered subspace iteration for the lowest
/// `n_occupied + extra` eigenpairs of `H`.
pub fn solve_occupied_chefsi(
    ham: &Hamiltonian,
    n_occupied: usize,
    opts: &ChefsiOptions,
) -> Result<KsSolution, LinalgError> {
    let op = HamiltonianOperator::new(ham);
    let n = op.dim();
    let m = (n_occupied + opts.extra).min(n);
    assert!(m >= n_occupied, "subspace smaller than occupied count");

    let b_up = filter_upper_bound(ham);

    // random orthonormal start
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut v = Mat::from_fn(n, m, |_, _| rng.random_range(-1.0..1.0));
    orthonormalize_columns(&mut v);

    let mut energies = vec![0.0; m];
    let mut last_residual = f64::INFINITY;

    for _iter in 0..opts.max_iters {
        // Rayleigh–Ritz on the current subspace.
        let mut w = Mat::zeros(n, m);
        op.apply_block(&v, &mut w);
        let h_s = matmul_tn(&v, &w);
        let m_s = matmul_tn(&v, &v);
        let eig = generalized_sym_eig(&h_s, &m_s)?;
        v = matmul(&v, &eig.vectors);
        let w_rot = matmul(&w, &eig.vectors);
        energies.copy_from_slice(&eig.values);

        // Residual of the occupied block: ‖H v_j − λ_j v_j‖ relative to the
        // eigenvalue scale (analogous to the paper's Eq. 7).
        let mut res_sq = 0.0;
        let mut scale_sq = 0.0;
        for j in 0..n_occupied {
            let lam = energies[j];
            let mut r = 0.0;
            for i in 0..n {
                let d = w_rot[(i, j)] - lam * v[(i, j)];
                r += d * d;
            }
            res_sq += r;
            scale_sq += lam * lam;
        }
        last_residual = (res_sq / scale_sq.max(1e-300)).sqrt() / n_occupied as f64;
        if last_residual <= opts.tol {
            return Ok(KsSolution {
                energies,
                orbitals: v,
                n_occupied,
            });
        }

        // Filter: damp [a, b_up] where a sits just above the kept subspace.
        let a = energies[m - 1] + 1e-8 + 1e-8 * energies[m - 1].abs();
        let a0 = energies[0];
        if a >= b_up {
            // subspace reaches the top of the spectrum; no room to filter
            return Ok(KsSolution {
                energies,
                orbitals: v,
                n_occupied,
            });
        }
        v = chebyshev_filter(&op, &v, opts.degree, a, b_up, a0);
        orthonormalize_columns(&mut v);
    }

    // cap hit: report non-convergence only if the residual is meaningless
    if last_residual.is_finite() && last_residual <= opts.tol * 1e3 {
        Ok(KsSolution {
            energies,
            orbitals: v,
            n_occupied,
        })
    } else {
        Err(LinalgError::NoConvergence {
            what: "CheFSI subspace iteration",
            iters: opts.max_iters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::PotentialParams;
    use crate::system::SiliconSpec;

    fn small_ham() -> (usize, Hamiltonian) {
        let c = SiliconSpec {
            points_per_cell: 7,
            ..SiliconSpec::default()
        }
        .build();
        let n_s = c.n_occupied();
        (n_s, Hamiltonian::new(&c, 2, &PotentialParams::default()))
    }

    #[test]
    fn dense_solution_satisfies_eigen_equation() {
        let (n_s, ham) = small_ham();
        let sol = solve_occupied_dense(&ham, n_s, 4).unwrap();
        assert_eq!(sol.energies.len(), n_s + 4);
        assert_eq!(sol.orbitals.cols(), n_s + 4);
        let n = ham.dim();
        let mut hv = vec![0.0; n];
        for j in 0..n_s {
            ham.apply(sol.orbitals.col(j), &mut hv);
            let lam = sol.energies[j];
            for (a, b) in hv.iter().zip(sol.orbitals.col(j).iter()) {
                assert!((a - lam * b).abs() < 1e-8, "residual at orbital {j}");
            }
        }
        // ascending
        for w in sol.energies.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn chefsi_matches_dense_energies() {
        let (n_s, ham) = small_ham();
        let dense = solve_occupied_dense(&ham, n_s, 2).unwrap();
        let chefsi = solve_occupied_chefsi(
            &ham,
            n_s,
            &ChefsiOptions {
                tol: 1e-9,
                ..ChefsiOptions::default()
            },
        )
        .unwrap();
        for j in 0..n_s {
            let d = (dense.energies[j] - chefsi.energies[j]).abs();
            assert!(
                d < 1e-6,
                "orbital {j}: dense {} vs chefsi {}",
                dense.energies[j],
                chefsi.energies[j]
            );
        }
    }

    #[test]
    fn chefsi_orbitals_are_orthonormal_eigenvectors() {
        let (n_s, ham) = small_ham();
        let sol = solve_occupied_chefsi(&ham, n_s, &ChefsiOptions::default()).unwrap();
        let g = matmul_tn(&sol.orbitals, &sol.orbitals);
        assert!(g.max_abs_diff(&Mat::identity(sol.orbitals.cols())) < 1e-7);
        let n = ham.dim();
        let mut hv = vec![0.0; n];
        for j in 0..n_s {
            ham.apply(sol.orbitals.col(j), &mut hv);
            let lam = sol.energies[j];
            let mut r = 0.0;
            for (a, b) in hv.iter().zip(sol.orbitals.col(j).iter()) {
                r += (a - lam * b).powi(2);
            }
            assert!(r.sqrt() < 1e-5, "orbital {j} residual {}", r.sqrt());
        }
    }

    #[test]
    fn occupied_accessors() {
        let (n_s, ham) = small_ham();
        let sol = solve_occupied_dense(&ham, n_s, 3).unwrap();
        assert_eq!(sol.occupied_energies().len(), n_s);
        assert_eq!(sol.occupied_orbitals().cols(), n_s);
        let gap = sol.gap().unwrap();
        assert!(gap.is_finite());
        assert!(gap >= -1e-10, "levels must be ordered, gap = {gap}");
    }

    #[test]
    fn upper_bound_dominates_spectrum() {
        let (_, ham) = small_ham();
        let bound = filter_upper_bound(&ham);
        let eig = symmetric_eig(&ham.to_dense()).unwrap();
        assert!(
            bound >= *eig.values.last().unwrap(),
            "bound {bound} vs λmax {}",
            eig.values.last().unwrap()
        );
        // and the lower bound really is a lower bound
        assert!(ham.spectral_lower_bound() <= eig.values[0]);
    }

    #[test]
    fn sternheimer_linop_wraps_apply() {
        let (_, ham) = small_ham();
        let stern = SternheimerOperator::new(&ham, 0.3, 0.2);
        let lin = SternheimerLinOp::new(stern);
        let n = lin.dim();
        let x: Vec<C64> = (0..n)
            .map(|i| C64::new((i % 5) as f64, -((i % 3) as f64)))
            .collect();
        let mut y1 = vec![C64::new(0.0, 0.0); n];
        lin.apply(&x, &mut y1);
        let stern2 = SternheimerOperator::new(&ham, 0.3, 0.2);
        let mut y2 = vec![C64::new(0.0, 0.0); n];
        stern2.apply(&x, &mut y2);
        for (a, b) in y1.iter().zip(y2.iter()) {
            assert_eq!(a, b);
        }
        assert!(lin.apply_flops() > 0);
    }
}
