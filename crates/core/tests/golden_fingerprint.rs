//! Golden pinned fingerprints of the example inputs under `inputs/`.
//!
//! The canonical encoding (DESIGN.md §12) is a wire contract: cache
//! entries on disk are keyed by it, so an *accidental* change — a
//! reordered field, a different tag, a normalization tweak — would
//! silently orphan every existing cache entry, or worse, alias two
//! different calculations. These constants pin the exact 128-bit
//! fingerprint of each committed example input; if this test fails,
//! either revert the encoding change or bump
//! [`mbrpa_core::CANONICAL_VERSION`] **and** re-pin the constants here
//! (the version bump is what makes stale cache entries invalidate
//! cleanly instead of aliasing).

// Test code: panics are failures (DESIGN.md §9).
#![allow(clippy::unwrap_used)]

use mbrpa_core::io::parse_rpa_input;
use mbrpa_core::{fingerprint_hex, is_fingerprint_hex, CANONICAL_VERSION};

/// (file, pinned fingerprint) — values produced by the v2 encoding.
const GOLDEN: [(&str, &str); 3] = [
    ("Si8.rpa", "622d8c176499d3df792a8841619c92bb"),
    ("Si7_vacancy.rpa", "f5327317ac14edd89d244a7eb516cafe"),
    ("cluster_smoke.rpa", "5be8f3f52b2d1feedf88445221b91f55"),
];

fn input_text(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../inputs")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn example_input_fingerprints_are_pinned() {
    assert_eq!(
        CANONICAL_VERSION, 2,
        "encoding version changed: re-pin the golden fingerprints below"
    );
    for (name, want) in GOLDEN {
        let input = parse_rpa_input(&input_text(name))
            .unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        let got = fingerprint_hex(&input);
        assert!(is_fingerprint_hex(&got), "{name}: malformed hex `{got}`");
        assert_eq!(
            got, want,
            "{name}: fingerprint moved — the canonical encoding changed; \
             bump CANONICAL_VERSION and re-pin, or revert the change"
        );
    }
}

#[test]
fn example_fingerprints_are_pairwise_distinct() {
    // three different calculations must never share a cache key
    for (i, (name_a, fp_a)) in GOLDEN.iter().enumerate() {
        for (name_b, fp_b) in GOLDEN.iter().skip(i + 1) {
            assert_ne!(fp_a, fp_b, "{name_a} and {name_b} collide");
        }
    }
}

#[test]
fn reformatting_an_example_preserves_its_fingerprint() {
    // strip comments, lowercase keys, and reverse the line order of
    // Si8.rpa: same calculation, same pinned fingerprint
    let original = input_text("Si8.rpa");
    let reformatted: String = original
        .lines()
        .filter_map(|line| {
            let stripped = line.split('#').next().unwrap_or("").trim();
            if stripped.is_empty() {
                None
            } else {
                Some(format!("{}\n", stripped.to_ascii_lowercase()))
            }
        })
        .rev()
        .collect();
    assert_ne!(original, reformatted);
    let fp = fingerprint_hex(&parse_rpa_input(&reformatted).unwrap());
    assert_eq!(fp, GOLDEN[0].1);
}
