//! Property-based tests for the core RPA machinery: quadrature, worker
//! partitions, trace terms, and input parsing.

// Test code: panics are failures, and exact float comparisons assert
// bitwise-reproducible results (DESIGN.md §9).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use mbrpa_core::{
    frequency_quadrature, gauss_legendre, parse_rpa_input, partition_columns, trace_term,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GL rules of any order integrate low-degree polynomials exactly.
    #[test]
    fn gl_exactness(n in 2usize..20, deg in 0usize..4) {
        let gl = gauss_legendre(n);
        let quad: f64 = gl.iter().map(|(x, w)| w * x.powi(deg as i32)).sum();
        let exact = if deg % 2 == 1 { 0.0 } else { 2.0 / (deg as f64 + 1.0) };
        prop_assert!((quad - exact).abs() < 1e-10);
    }

    /// Transformed frequency rules: positive descending frequencies,
    /// positive weights, for any point count.
    #[test]
    fn frequency_rule_invariants(ell in 1usize..32) {
        let pts = frequency_quadrature(ell);
        prop_assert_eq!(pts.len(), ell);
        for pair in pts.windows(2) {
            prop_assert!(pair[0].omega > pair[1].omega);
        }
        for pt in &pts {
            prop_assert!(pt.omega > 0.0);
            prop_assert!(pt.weight > 0.0);
            prop_assert!(pt.unit_node > 0.0 && pt.unit_node < 1.0);
            // the map is self-consistent: ω = (1−u)/u
            prop_assert!((pt.omega - (1.0 - pt.unit_node) / pt.unit_node).abs() < 1e-12);
        }
    }

    /// The transformed rule converges on ∫₀^∞ e^{−ω} dω = 1 as ℓ grows.
    #[test]
    fn frequency_rule_integrates_exponentials(ell in 16usize..40) {
        let pts = frequency_quadrature(ell);
        let quad: f64 = pts.iter().map(|p| p.weight * (-p.omega).exp()).sum();
        prop_assert!((quad - 1.0).abs() < 5e-3, "ℓ={ell}: {quad}");
    }

    /// Worker partitions cover all columns exactly once, non-empty.
    #[test]
    fn partition_invariants(n in 1usize..512, p_raw in 1usize..64) {
        let p = p_raw.min(n);
        let ranges = partition_columns(n, p);
        prop_assert_eq!(ranges.len(), p);
        let mut next = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, next);
            prop_assert!(r.count >= 1);
            next += r.count;
        }
        prop_assert_eq!(next, n);
        // balanced within 1
        let min = ranges.iter().map(|r| r.count).min().unwrap();
        let max = ranges.iter().map(|r| r.count).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// The trace term is ≤ 0, monotone in each eigenvalue, and zero at 0.
    #[test]
    fn trace_term_properties(mus in proptest::collection::vec(-5.0f64..0.0, 1..20)) {
        let t = trace_term(&mus);
        prop_assert!(t <= 1e-15);
        // adding one more negative eigenvalue only decreases the sum
        let mut more = mus.clone();
        more.push(-0.5);
        prop_assert!(trace_term(&more) <= t + 1e-15);
        // f(0) = 0
        prop_assert_eq!(trace_term(&[0.0]), 0.0);
    }

    /// The input parser round-trips integer and float keys it understands.
    #[test]
    fn parser_roundtrip(n_eig in 1usize..4096, n_omega in 1usize..32, tol in 1e-6f64..1e-1) {
        let text = format!(
            "N_NUCHI_EIGS: {n_eig}\nN_OMEGA: {n_omega}\nTOL_STERN_RES: {tol:e}\n"
        );
        let input = parse_rpa_input(&text).unwrap();
        prop_assert_eq!(input.config.n_eig, n_eig);
        prop_assert_eq!(input.config.n_omega, n_omega);
        prop_assert!((input.config.tol_sternheimer - tol).abs() < 1e-15 * tol.abs());
    }

    /// Garbage lines never panic the parser — they error with a line number.
    #[test]
    fn parser_never_panics(text in "[ -~\\n]{0,200}") {
        let _ = parse_rpa_input(&text);
    }
}
