//! Property tests of the canonical input fingerprint.
//!
//! The contract under test (DESIGN.md §12): any two `.rpa` renderings of
//! the same calculation — reordered keys, different key case, aliases,
//! float respellings, comments, defaults spelled out vs omitted — must
//! canonicalize to the same fingerprint, while any *semantic* change
//! (different tolerance, different seed, a vacancy) must move it. The
//! exact result cache in `mbrpa-serve` is only sound if both directions
//! hold.

// Test code: panics are failures (DESIGN.md §9).
#![allow(clippy::unwrap_used)]

use mbrpa_core::io::parse_rpa_input;
use mbrpa_core::{fingerprint_hex, input_fingerprint};
use proptest::prelude::*;

/// The semantic content of an input, independent of any rendering.
#[derive(Clone, Debug)]
struct Semantic {
    n_eig: usize,
    n_omega: usize,
    tol_eig: Vec<f64>,
    tol_stern: f64,
    maxit: usize,
    cheb: usize,
    galerkin: bool,
    block: u8,
    fixed_n: usize,
    np: usize,
    seed: u64,
    cells_z: usize,
    ppc: usize,
    mesh: f64,
    pert: f64,
    system_seed: u64,
    dirichlet: bool,
    vacancy: Option<usize>,
    precond: u8,
    dist: u8,
}

/// Small pool of floats whose decimal and scientific renderings both
/// round-trip exactly (Rust's shortest formatting guarantees this for
/// every f64; the pool just keeps the inputs physical).
const FLOATS: [f64; 6] = [5e-4, 2e-3, 4e-3, 1e-2, 0.25, 0.69];

fn semantic() -> impl Strategy<Value = Semantic> {
    (
        (
            1usize..=16,                                            // n_eig (≤ n_d for ppc 5)
            1usize..=6,                                             // n_omega
            proptest::collection::vec(0usize..FLOATS.len(), 1..=3), // tol_eig picks
            0usize..FLOATS.len(),                                   // tol_stern pick
            1usize..=10,                                            // maxit
            1usize..=4,                                             // cheb
            any::<bool>(),                                          // galerkin
            0u8..=2,                                                // block policy
            1usize..=4,                                             // fixed block size
            1usize..=4,                                             // np
        ),
        (
            0u64..=6,                        // seed
            1usize..=2,                      // cells_z
            5usize..=6,                      // points per cell
            0usize..FLOATS.len(),            // mesh pick (offset below)
            0usize..FLOATS.len(),            // perturbation pick
            0u64..=6,                        // system seed
            any::<bool>(),                   // dirichlet
            proptest::option::of(0usize..8), // vacancy
            0u8..=1,                         // precond (never/always; hard is not spellable twice)
            0u8..=2,                         // distribution
        ),
    )
        .prop_map(
            |(
                (n_eig, n_omega, tols, stern, maxit, cheb, galerkin, block, fixed_n, np),
                (seed, cells_z, ppc, mesh, pert, system_seed, dirichlet, vacancy, precond, dist),
            )| Semantic {
                n_eig,
                n_omega,
                tol_eig: tols.into_iter().map(|i| FLOATS[i]).collect(),
                tol_stern: FLOATS[stern],
                maxit,
                cheb,
                galerkin,
                block,
                fixed_n,
                np,
                seed,
                cells_z,
                ppc,
                mesh: FLOATS[mesh] + 0.5, // keep MESH physical (positive, O(1))
                pert: FLOATS[pert],
                system_seed,
                dirichlet,
                vacancy,
                precond,
                dist,
            },
        )
}

/// Style bytes drive every cosmetic decision; cycling through them makes
/// two different byte vectors produce two genuinely different renderings
/// of the same [`Semantic`].
struct Style {
    bytes: Vec<u8>,
    at: usize,
}

impl Style {
    fn new(bytes: &[u8]) -> Self {
        Self {
            bytes: bytes.to_vec(),
            at: 0,
        }
    }
    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.at).copied().unwrap_or(0);
        self.at += 1;
        b
    }
    fn float(&mut self, v: f64) -> String {
        match self.next() % 3 {
            0 => format!("{v}"),
            1 => format!("{v:e}"),
            // fixed precision only pads zeros, which never changes the
            // parsed f64
            _ => format!("{v:.6}"),
        }
    }
    fn key(&mut self, k: &str) -> String {
        match self.next() % 3 {
            0 => k.to_string(),
            1 => k.to_ascii_lowercase(),
            _ => format!("  {k}  "),
        }
    }
    fn int(&mut self, v: usize) -> String {
        if self.next().is_multiple_of(3) {
            format!("0{v}") // leading zero, same integer
        } else {
            format!("{v}")
        }
    }
    fn line(&mut self, key: &str, value: &str) -> String {
        let key = self.key(key);
        match self.next() % 3 {
            0 => format!("{key}: {value}"),
            1 => format!("{key}:{value}   # trailing comment"),
            _ => format!("{key}  :   {value}"),
        }
    }
}

/// Render a [`Semantic`] as `.rpa` text. `style` controls cosmetics,
/// `order` (a permutation of `0..32`) the key order. Defaults may be
/// omitted or spelled out — also style-driven.
fn render(s: &Semantic, style_bytes: &[u8], order: &[usize]) -> String {
    let mut style = Style::new(style_bytes);
    let mut lines: Vec<String> = Vec::new();

    let v = style.int(s.n_eig);
    lines.push(style.line("N_NUCHI_EIGS", &v));
    let v = style.int(s.n_omega);
    lines.push(style.line("N_OMEGA", &v));
    let tols = s
        .tol_eig
        .iter()
        .map(|&t| style.float(t))
        .collect::<Vec<_>>()
        .join(" ");
    lines.push(style.line("TOL_EIG", &tols));
    let v = style.float(s.tol_stern);
    lines.push(style.line("TOL_STERN_RES", &v));
    let v = style.int(s.maxit);
    lines.push(style.line("MAXIT_FILTERING", &v));
    let v = style.int(s.cheb);
    lines.push(style.line("CHEB_DEGREE_RPA", &v));
    // galerkin defaults to on: spelling `1` out is optional
    if !s.galerkin || style.next().is_multiple_of(2) {
        let v = if s.galerkin { "1" } else { "0" };
        lines.push(style.line("FLAG_COCGINITIAL", v));
    }
    let block = match (s.block, style.next() % 2) {
        (0, 0) => "dynamic".to_string(),
        (0, _) => "dynamic_timed".to_string(),
        (1, 0) => "cost_model".to_string(),
        (1, _) => "dynamic_cost_model".to_string(),
        (_, 0) => format!("fixed_{}", s.fixed_n),
        (_, _) => format!("fixed {}", s.fixed_n),
    };
    lines.push(style.line("BLOCK_POLICY", &block));
    let np_key = if style.next().is_multiple_of(2) {
        "NP"
    } else {
        "NP_NUCHI_EIGS_PARAL_RPA"
    };
    let v = style.int(s.np);
    lines.push(style.line(np_key, &v));
    let v = style.int(s.seed as usize);
    lines.push(style.line("SEED", &v));
    let precond = match (s.precond, style.next() % 2) {
        (0, 0) => "never",
        (0, _) => "0",
        (_, 0) => "always",
        (_, _) => "1",
    };
    lines.push(style.line("PRECOND", precond));
    let dist = match (s.dist, style.next() % 2) {
        (0, 0) => "static".to_string(),
        (0, _) => "static_columns".to_string(),
        // work_stealing's default chunk width is 4: both spellings mean
        // the same distribution
        (1, 0) => "work_stealing".to_string(),
        (1, _) => "work_stealing_4".to_string(),
        (_, _) => "work_stealing_8".to_string(),
    };
    lines.push(style.line("DISTRIBUTION", &dist));
    let v = style.int(s.cells_z);
    lines.push(style.line("CELLS_Z", &v));
    let v = style.int(s.ppc);
    lines.push(style.line("POINTS_PER_CELL", &v));
    let v = style.float(s.mesh);
    lines.push(style.line("MESH", &v));
    let v = style.float(s.pert);
    lines.push(style.line("PERTURBATION", &v));
    let v = style.int(s.system_seed as usize);
    lines.push(style.line("SYSTEM_SEED", &v));
    let boundary = match (s.dirichlet, style.next() % 2) {
        (true, 0) => "DIRICHLET",
        (true, _) => "dirichlet",
        (false, 0) => "PERIODIC",
        (false, _) => "periodic",
    };
    lines.push(style.line("BOUNDARY", boundary));
    if let Some(site) = s.vacancy {
        let v = style.int(site);
        lines.push(style.line("VACANCY", &v));
    }
    // a recognized-but-ignored artifact key must not move the fingerprint
    if style.next().is_multiple_of(2) {
        lines.push("FLAG_PQ_OPERATOR: 0".to_string());
    }

    // shuffle by the permutation's ranks (line order is free in `.rpa`)
    let mut indexed: Vec<(usize, String)> = lines.into_iter().enumerate().collect();
    indexed.sort_by_key(|(i, _)| order.get(*i).copied().unwrap_or(*i));

    let mut text = String::new();
    let mut style = Style::new(style_bytes);
    for (_, line) in indexed {
        if style.next().is_multiple_of(4) {
            text.push_str("# interleaved comment\n");
        }
        if style.next().is_multiple_of(4) {
            text.push('\n');
        }
        text.push_str(&line);
        text.push('\n');
    }
    text
}

fn order() -> impl Strategy<Value = Vec<usize>> {
    Just((0..32).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness: every rendering of the same calculation has the same
    /// fingerprint, so a cache hit can never serve the wrong physics.
    #[test]
    fn all_renderings_of_one_input_collide(
        s in semantic(),
        style_a in proptest::collection::vec(any::<u8>(), 96),
        style_b in proptest::collection::vec(any::<u8>(), 96),
        order_a in order(),
        order_b in order(),
    ) {
        let text_a = render(&s, &style_a, &order_a);
        let text_b = render(&s, &style_b, &order_b);
        let a = parse_rpa_input(&text_a)
            .unwrap_or_else(|e| panic!("rendering A failed to parse: {e}\n{text_a}"));
        let b = parse_rpa_input(&text_b)
            .unwrap_or_else(|e| panic!("rendering B failed to parse: {e}\n{text_b}"));
        prop_assert_eq!(
            fingerprint_hex(&a),
            fingerprint_hex(&b),
            "renderings of one calculation diverged:\n--- A ---\n{}\n--- B ---\n{}",
            text_a,
            text_b
        );
    }

    /// Precision: a semantic change must move the fingerprint — a cache
    /// that conflates different calculations is worse than no cache.
    #[test]
    fn semantic_changes_move_the_fingerprint(
        s in semantic(),
        style in proptest::collection::vec(any::<u8>(), 96),
        ord in order(),
        which in 0usize..10,
    ) {
        let mut t = s.clone();
        match which {
            0 => t.n_eig = if t.n_eig == 16 { 1 } else { t.n_eig + 1 },
            1 => t.n_omega += 1,
            2 => t.tol_eig.push(FLOATS[0]),
            3 => t.maxit += 1,
            4 => t.galerkin = !t.galerkin,
            5 => t.np += 1,
            6 => t.seed += 1,
            7 => t.system_seed += 1,
            8 => t.dirichlet = !t.dirichlet,
            _ => {
                t.vacancy = match t.vacancy {
                    None => Some(0),
                    Some(site) => Some(site + 1),
                }
            }
        }
        let a = parse_rpa_input(&render(&s, &style, &ord)).unwrap();
        let b = parse_rpa_input(&render(&t, &style, &ord)).unwrap();
        prop_assert_ne!(
            input_fingerprint(&a),
            input_fingerprint(&b),
            "perturbation {} did not move the fingerprint",
            which
        );
    }
}
