//! The dielectric operator `ν½χ⁰(iω)ν½` applied through Sternheimer solves
//! (Algorithm 7 of the paper) with the worker partition of §III-D.
//!
//! One application, per worker owning a column range of `V`:
//!
//! 1. `V ← ν½V` (spectral Poisson machinery; no communication),
//! 2. for each occupied orbital `j`: solve the complex-symmetric block
//!    system `(H − λ_j I + iω I) Y_j = −V ⊙ Ψ_j` with block COCG under the
//!    dynamic block-size policy (Algorithms 3 + 4), seeded by the Galerkin
//!    guess of Eq. 13,
//! 3. accumulate `χ⁰V = 4 Re Σ_j Ψ_j ⊙ Y_j` (Eq. 5),
//! 4. `V ← ν½V`.
//!
//! The operator is real symmetric negative semi-definite, so the subspace
//! iteration above it runs entirely in real arithmetic.

use crate::cancel::CancelToken;
use crate::workers::partition_columns;
use mbrpa_dft::{
    Hamiltonian, ShiftedLaplacianPreconditioner, SternheimerLinOp, SternheimerOperator,
};
use mbrpa_grid::CoulombOperator;
use mbrpa_linalg::{Mat, C64};
use mbrpa_solver::{
    galerkin_guess, solve_multi_rhs_pre, BlockPolicy, CocgOptions, LinearOperator, Preconditioner,
    WorkerStats,
};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// When to apply the inverse shifted-Laplacian preconditioner (the
/// paper's §V: "such a preconditioner … should be dynamically applied
/// only in those cases" — the difficult Sternheimer systems).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PrecondPolicy {
    /// Plain block COCG everywhere (the paper's evaluated configuration).
    Never,
    /// Precondition every Sternheimer solve.
    Always,
    /// Precondition only difficult `(j, k)` pairs: `ω ≤ omega_max` and the
    /// orbital index within the top `top_orbital_frac` of the occupied
    /// spectrum (the near-singular, highly indefinite regime of Eq. 9).
    HardOnly {
        /// Largest frequency still considered "difficult".
        omega_max: f64,
        /// Fraction of top occupied orbitals considered "difficult".
        top_orbital_frac: f64,
    },
}

impl PrecondPolicy {
    /// Should the `(j, ω)` system be preconditioned?
    pub fn applies(&self, orbital_index: usize, n_occupied: usize, omega: f64) -> bool {
        match *self {
            PrecondPolicy::Never => false,
            PrecondPolicy::Always => true,
            PrecondPolicy::HardOnly {
                omega_max,
                top_orbital_frac,
            } => {
                let cutoff = ((1.0 - top_orbital_frac) * n_occupied as f64).floor() as usize;
                omega <= omega_max && orbital_index >= cutoff
            }
        }
    }
}

/// How Sternheimer work is distributed over the thread pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkDistribution {
    /// Static column partition over `p` workers — the paper's §III-D
    /// layout (each rank owns `n_eig/p` columns for *all* orbitals).
    StaticColumns,
    /// Manager-worker style fine-grained tasks — the paper's §V proposal
    /// for the residual load imbalance of the static partition: every
    /// `(orbital, column-chunk)` pair becomes an independent task on a
    /// shared work-stealing pool.
    WorkStealing {
        /// Columns per task.
        chunk_width: usize,
    },
}

/// Sternheimer solver settings shared by all workers.
#[derive(Clone, Copy, Debug)]
pub struct SternheimerSettings {
    /// `τ_Sternheimer` of Eq. 10.
    pub tol: f64,
    /// COCG iteration cap per solve.
    pub max_iters: usize,
    /// Block-size policy (Algorithm 4 variants or fixed).
    pub policy: BlockPolicy,
    /// Use the Galerkin initial guess (Eq. 13).
    pub use_galerkin_guess: bool,
    /// Inverse shifted-Laplacian preconditioning policy (§V).
    pub precondition: PrecondPolicy,
    /// Work distribution strategy (§III-D static vs §V manager-worker).
    pub distribution: WorkDistribution,
}

impl Default for SternheimerSettings {
    fn default() -> Self {
        Self {
            tol: 1e-2,
            max_iters: 600,
            policy: BlockPolicy::DynamicCostModel,
            use_galerkin_guess: true,
            precondition: PrecondPolicy::Never,
            distribution: WorkDistribution::StaticColumns,
        }
    }
}

/// One spin channel of occupied orbitals.
///
/// The paper's implementation carries a spin-parallelization axis
/// (`NP_SPIN_PARAL_RPA` in its output preamble); its test systems are
/// closed-shell, where both channels are identical and carry an orbital
/// degeneracy of 2 (the factor folded into the `4·Re(…)` of Eq. 5). Open
/// shells use two distinct channels of degeneracy 1 each.
#[derive(Clone, Copy, Debug)]
pub struct SpinChannel<'a> {
    /// Occupied orbitals `Ψ_σ ∈ ℝ^{n_d × n_s,σ}`.
    pub psi: &'a Mat<f64>,
    /// Orbital energies, ascending, matching `psi` columns.
    pub energies: &'a [f64],
    /// Orbital occupancy degeneracy `g_σ` (2 = spin-restricted pair,
    /// 1 = single spin).
    pub degeneracy: f64,
}

/// Matrix-free `ν½χ⁰(iω)ν½` at one quadrature frequency.
pub struct DielectricOperator<'a> {
    ham: &'a Hamiltonian,
    /// Occupied orbitals per spin channel.
    channels: Vec<SpinChannel<'a>>,
    coulomb: &'a CoulombOperator,
    omega: f64,
    settings: SternheimerSettings,
    n_workers: usize,
    stats: Mutex<WorkerStats>,
    applications: AtomicUsize,
    time_in_apply: Mutex<Duration>,
    /// Cumulative Sternheimer solve time per logical worker (static
    /// partition only): the per-rank load profile behind the paper's
    /// load-imbalance discussion (§III-D, §V).
    worker_load: Mutex<Vec<Duration>>,
    /// Cooperative cancellation, observed between per-orbital Sternheimer
    /// solves. A cancelled application returns a truncated (garbage)
    /// block; this is sound because every caller that could observe it
    /// sees the same one-way token and discards the result (see
    /// [`crate::cancel`]).
    cancel: Option<CancelToken>,
}

impl<'a> DielectricOperator<'a> {
    /// Build the spin-restricted operator for frequency `ω > 0` (one
    /// channel of doubly-occupied orbitals — the paper's configuration).
    pub fn new(
        ham: &'a Hamiltonian,
        psi: &'a Mat<f64>,
        energies: &'a [f64],
        coulomb: &'a CoulombOperator,
        omega: f64,
        settings: SternheimerSettings,
        n_workers: usize,
    ) -> Self {
        Self::with_channels(
            ham,
            vec![SpinChannel {
                psi,
                energies,
                degeneracy: 2.0,
            }],
            coulomb,
            omega,
            settings,
            n_workers,
        )
    }

    /// Build with explicit spin channels (spin-polarized systems).
    pub fn with_channels(
        ham: &'a Hamiltonian,
        channels: Vec<SpinChannel<'a>>,
        coulomb: &'a CoulombOperator,
        omega: f64,
        settings: SternheimerSettings,
        n_workers: usize,
    ) -> Self {
        assert!(!channels.is_empty(), "need at least one spin channel");
        for ch in &channels {
            assert_eq!(ch.psi.rows(), ham.dim(), "orbital grid mismatch");
            assert_eq!(ch.psi.cols(), ch.energies.len(), "orbital count mismatch");
            assert!(ch.degeneracy > 0.0, "degeneracy must be positive");
        }
        assert!(omega > 0.0, "ω must be positive (ω → 0 is singular)");
        assert!(n_workers >= 1);
        Self {
            ham,
            channels,
            coulomb,
            omega,
            settings,
            n_workers,
            stats: Mutex::new(WorkerStats::new()),
            applications: AtomicUsize::new(0),
            time_in_apply: Mutex::new(Duration::ZERO),
            worker_load: Mutex::new(vec![Duration::ZERO; n_workers]),
            cancel: None,
        }
    }

    /// Attach a cooperative [`CancelToken`], observed between per-orbital
    /// Sternheimer solves so a cancel lands within one solve's latency
    /// instead of one full operator application.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Frequency `ω`.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Total occupied orbitals summed over spin channels.
    pub fn n_occupied(&self) -> usize {
        self.channels.iter().map(|c| c.energies.len()).sum()
    }

    /// Number of spin channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// Snapshot of the merged worker statistics accumulated so far.
    pub fn stats_snapshot(&self) -> WorkerStats {
        // lint: allow(unwrap) — a poisoned mutex means a worker already crashed; abort loudly
        self.stats.lock().expect("stats mutex poisoned").clone()
    }

    /// Total single-column operator applications so far.
    pub fn applications(&self) -> usize {
        // ord: Relaxed — monotonic telemetry counter; readers need a count, not a happens-before edge
        self.applications.load(Ordering::Relaxed)
    }

    /// Wall time spent inside applications (the paper's `ν½χ⁰ν½` kernel of
    /// Figure 5).
    pub fn time_in_apply(&self) -> Duration {
        // lint: allow(unwrap) — a poisoned mutex means a worker already crashed; abort loudly
        *self.time_in_apply.lock().expect("time mutex poisoned")
    }

    /// Cumulative Sternheimer solve time per logical worker (meaningful
    /// for the static partition; the §III-D load-imbalance profile).
    pub fn worker_load_snapshot(&self) -> Vec<Duration> {
        self.worker_load
            .lock()
            // lint: allow(unwrap) — a poisoned mutex means a worker already crashed; abort loudly
            .expect("load mutex poisoned")
            .clone()
    }

    /// One orbital's contribution to `χ⁰V` for a set of columns
    /// (one line of Eq. 6 plus its share of Eq. 5): solves
    /// `(H − λ_j + iω) Y_j = −V ⊙ Ψ_j` and returns
    /// `2·g_σ·Re(Ψ_j ⊙ Y_j)` (with `g_σ = 2` this is the paper's `4·Re`).
    /// Has the attached [`CancelToken`] (if any) been set?
    fn cancel_requested(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    fn orbital_contribution(
        &self,
        channel: usize,
        j: usize,
        v: &Mat<f64>,
        stats: &mut WorkerStats,
    ) -> Mat<f64> {
        // Early-exit between Sternheimer solves: the returned block is
        // truncated garbage, which is sound because the one-way token
        // guarantees every downstream consumer observes the cancellation
        // and discards the whole application (see `crate::cancel`).
        if self.cancel_requested() {
            return Mat::zeros(self.ham.dim(), v.cols());
        }
        let ch = &self.channels[channel];
        let n = self.ham.dim();
        let w = v.cols();
        let n_s = ch.energies.len();
        let cocg_opts = CocgOptions {
            tol: self.settings.tol,
            max_iters: self.settings.max_iters,
            ..CocgOptions::default()
        };
        let psi_j = ch.psi.col(j);
        // B = −V ⊙ Ψ_j
        let mut b = Mat::<C64>::zeros(n, w);
        for c in 0..w {
            let vc = v.col(c);
            let bc = b.col_mut(c);
            for i in 0..n {
                bc[i] = C64::new(-vc[i] * psi_j[i], 0.0);
            }
        }
        let guess = if self.settings.use_galerkin_guess {
            Some(galerkin_guess(
                ch.psi,
                ch.energies,
                ch.energies[j],
                self.omega,
                &b,
            ))
        } else {
            None
        };
        let stern = SternheimerLinOp::new(SternheimerOperator::new(
            self.ham,
            ch.energies[j],
            self.omega,
        ));
        let precond = if self.settings.precondition.applies(j, n_s, self.omega) {
            Some(ShiftedLaplacianPreconditioner::for_sternheimer(
                self.ham,
                self.coulomb.spectral().clone(),
                ch.energies[j],
                self.omega,
            ))
        } else {
            None
        };
        let it_before = stats.iterations;
        let out = solve_multi_rhs_pre(
            &stern,
            &b,
            guess.as_ref(),
            &cocg_opts,
            self.settings.policy,
            precond.as_ref().map(|p| p as &dyn Preconditioner),
            stats,
        );
        if mbrpa_obs::enabled() {
            // per-occupied-orbital solve effort, labelled by the worker's
            // frequency context (set in `partitioned_apply`)
            mbrpa_obs::record_ctx(
                "sternheimer.orbital_iterations",
                (stats.iterations - it_before) as f64,
            );
            mbrpa_obs::add_ctx("sternheimer.solves", 1);
        }
        // 2·g_σ·Re(Ψ_j ⊙ Y_j): the ± iω conjugate-pair combination gives
        // the 2, the channel degeneracy the g_σ (= 4·Re for closed shells)
        let factor = 2.0 * ch.degeneracy;
        let mut acc = Mat::zeros(n, w);
        for c in 0..w {
            let yc = out.solution.col(c);
            let ac = acc.col_mut(c);
            for i in 0..n {
                ac[i] = factor * psi_j[i] * yc[i].re;
            }
        }
        acc
    }

    /// `χ⁰V` for one worker's columns (Algorithm 7 lines 3–6); `v` already
    /// contains `ν½V` when called from the dielectric product.
    fn chi0_columns(&self, v: &Mat<f64>, stats: &mut WorkerStats) -> Mat<f64> {
        let n = self.ham.dim();
        let w = v.cols();
        let mut acc = Mat::zeros(n, w);
        for (sigma, ch) in self.channels.iter().enumerate() {
            for j in 0..ch.energies.len() {
                let contrib = self.orbital_contribution(sigma, j, v, stats);
                acc.axpy(1.0, &contrib);
            }
        }
        acc
    }

    /// `χ⁰V` over the worker partition (no `ν½` factors). Used by the
    /// direct-comparison tests and the `νχ⁰` spectrum figure.
    pub fn apply_chi0_block(&self, v: &Mat<f64>) -> Mat<f64> {
        self.partitioned_apply(v, false)
    }

    /// `(ν½χ⁰ν½)V` over the worker partition (Algorithm 7 complete).
    pub fn apply_dielectric_block(&self, v: &Mat<f64>) -> Mat<f64> {
        self.partitioned_apply(v, true)
    }

    fn partitioned_apply(&self, v: &Mat<f64>, with_nu_sqrt: bool) -> Mat<f64> {
        let t0 = Instant::now();
        let n = self.ham.dim();
        assert_eq!(v.rows(), n);
        let cols = v.cols();
        // The span lives on the calling thread (nested under the filter or
        // projection that requested the product); worker-side metrics are
        // flat counters/series flushed per closure.
        let _stern_span = mbrpa_obs::span("sternheimer");
        let obs_on = mbrpa_obs::enabled();
        let ctx_label = format!("omega={:.4}", self.omega);
        if obs_on {
            mbrpa_obs::add("chi0.applications", cols as u64);
        }

        let mut result = match self.settings.distribution {
            WorkDistribution::StaticColumns => {
                let p = self.n_workers.min(cols.max(1));
                // Register the worker partition with the shared
                // nested-parallelism guard: inner block applies and GEMMs
                // under these tasks see the reduced `inner_slots()` budget
                // instead of oversubscribing the pool.
                let _outer = mbrpa_grid::par::outer_scope(p);
                let ranges = partition_columns(cols.max(1), p);
                let pieces: Vec<(usize, usize, Mat<f64>, WorkerStats)> = ranges
                    .par_iter()
                    .enumerate()
                    .map(|(widx, range)| {
                        if obs_on {
                            mbrpa_obs::set_context(&ctx_label);
                        }
                        let mut stats = WorkerStats::new();
                        let mut local = v.columns(range.start, range.count);
                        if with_nu_sqrt {
                            self.coulomb.apply_nu_sqrt_block(&mut local);
                        }
                        let out = self.chi0_columns(&local, &mut stats);
                        if obs_on {
                            mbrpa_obs::clear_context();
                            mbrpa_obs::flush_thread();
                        }
                        (widx, range.start, out, stats)
                    })
                    .collect();
                let mut result = Mat::zeros(n, cols);
                // lint: allow(unwrap) — a poisoned mutex means a worker already crashed; abort loudly
                let mut merged = self.stats.lock().expect("stats mutex poisoned");
                // lint: allow(unwrap) — a poisoned mutex means a worker already crashed; abort loudly
                let mut load = self.worker_load.lock().expect("load mutex poisoned");
                for (widx, start, piece, stats) in &pieces {
                    result.set_columns(*start, piece);
                    merged.merge(stats);
                    if *widx < load.len() {
                        load[*widx] += stats.solve_time;
                    }
                }
                result
            }
            WorkDistribution::WorkStealing { chunk_width } => {
                // fine-grained (orbital, chunk) tasks: no worker is pinned
                // to a difficulty class, so the slowest-orbital imbalance
                // of the static partition disappears (§V)
                let width = chunk_width.max(1).min(cols.max(1));
                let n_chunks = cols.div_ceil(width).max(1);
                // pre-apply ν½ per chunk (cheap, parallel)
                let chunks: Vec<(usize, Mat<f64>)> = (0..n_chunks)
                    .into_par_iter()
                    .map(|c| {
                        let start = c * width;
                        let count = width.min(cols - start);
                        let mut local = v.columns(start, count);
                        if with_nu_sqrt {
                            self.coulomb.apply_nu_sqrt_block(&mut local);
                        }
                        (start, local)
                    })
                    .collect();
                let tasks: Vec<(usize, usize, usize)> = (0..n_chunks)
                    .flat_map(|c| {
                        self.channels
                            .iter()
                            .enumerate()
                            .flat_map(move |(sigma, ch)| {
                                (0..ch.energies.len()).map(move |j| (c, sigma, j))
                            })
                    })
                    .collect();
                // Work-stealing saturates at most one task per pool
                // thread at a time; register that with the guard so the
                // per-task solver kernels stay serial while stealing is
                // active.
                let _outer =
                    mbrpa_grid::par::outer_scope(tasks.len().min(rayon::current_num_threads()));
                let pieces: Vec<(usize, Mat<f64>, WorkerStats)> = tasks
                    .par_iter()
                    .map(|&(c, sigma, j)| {
                        if obs_on {
                            mbrpa_obs::set_context(&ctx_label);
                        }
                        let mut stats = WorkerStats::new();
                        let contrib = self.orbital_contribution(sigma, j, &chunks[c].1, &mut stats);
                        if obs_on {
                            mbrpa_obs::clear_context();
                            mbrpa_obs::flush_thread();
                        }
                        (chunks[c].0, contrib, stats)
                    })
                    .collect();
                let mut result = Mat::zeros(n, cols);
                // lint: allow(unwrap) — a poisoned mutex means a worker already crashed; abort loudly
                let mut merged = self.stats.lock().expect("stats mutex poisoned");
                for (start, piece, stats) in &pieces {
                    for jc in 0..piece.cols() {
                        mbrpa_linalg::vecops::axpy(1.0, piece.col(jc), result.col_mut(start + jc));
                    }
                    merged.merge(stats);
                }
                result
            }
        };

        if with_nu_sqrt {
            self.coulomb.apply_nu_sqrt_block(&mut result);
        }
        // ord: Relaxed — telemetry counter only; the numeric result flows through `result`, not this atomic
        self.applications.fetch_add(cols, Ordering::Relaxed);
        // lint: allow(unwrap) — a poisoned mutex means a worker already crashed; abort loudly
        *self.time_in_apply.lock().expect("time mutex poisoned") += t0.elapsed();
        result
    }
}

impl LinearOperator<f64> for DielectricOperator<'_> {
    fn dim(&self) -> usize {
        self.ham.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let xm = Mat::col_vector(x.to_vec());
        let out = self.apply_dielectric_block(&xm);
        y.copy_from_slice(out.col(0));
    }

    fn apply_block(&self, x: &Mat<f64>, y: &mut Mat<f64>) {
        let out = self.apply_dielectric_block(x);
        *y = out;
    }

    fn apply_flops(&self) -> usize {
        // dominated by the Sternheimer solves: n_s systems × iterations;
        // a rough per-column estimate for scheduling heuristics only
        self.n_occupied() * 20 * self.ham.apply_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbrpa_dft::{solve_occupied_dense, PotentialParams, SiliconSpec};
    use mbrpa_grid::SpectralLaplacian;

    /// Small fixture shared by the operator tests: a 2-atom-scale crystal
    /// is too big; use a 5³ grid with a handful of orbitals.
    struct Fixture {
        ham: Hamiltonian,
        psi: Mat<f64>,
        energies: Vec<f64>,
        coulomb: CoulombOperator,
    }

    fn fixture() -> Fixture {
        let crystal = SiliconSpec {
            points_per_cell: 5,
            perturbation: 0.03,
            seed: 11,
            ..SiliconSpec::default()
        }
        .build();
        let ham = Hamiltonian::new(&crystal, 2, &PotentialParams::default());
        let n_s = 6; // fewer than the physical 16 to keep the test fast
        let ks = solve_occupied_dense(&ham, n_s, 0).unwrap();
        let spec = SpectralLaplacian::new(crystal.grid, 2).unwrap();
        Fixture {
            psi: ks.occupied_orbitals(),
            energies: ks.occupied_energies().to_vec(),
            ham,
            coulomb: CoulombOperator::new(spec),
        }
    }

    fn op<'a>(f: &'a Fixture, omega: f64, workers: usize) -> DielectricOperator<'a> {
        DielectricOperator::new(
            &f.ham,
            &f.psi,
            &f.energies,
            &f.coulomb,
            omega,
            SternheimerSettings {
                tol: 1e-8,
                ..SternheimerSettings::default()
            },
            workers,
        )
    }

    #[test]
    fn chi0_output_is_real_and_finite() {
        let f = fixture();
        let d = op(&f, 1.0, 1);
        let n = f.ham.dim();
        let v = Mat::from_fn(n, 2, |i, j| ((i * 7 + j) % 13) as f64 * 0.1 - 0.6);
        let out = d.apply_chi0_block(&v);
        assert_eq!(out.shape(), (n, 2));
        assert!(!out.has_bad_values());
        assert!(out.fro_norm() > 0.0);
    }

    #[test]
    fn operator_is_symmetric() {
        // uᵀ(ν½χ⁰ν½)v == vᵀ(ν½χ⁰ν½)u
        let f = fixture();
        let d = op(&f, 0.8, 1);
        let n = f.ham.dim();
        let u = Mat::from_fn(n, 1, |i, _| ((i % 17) as f64 - 8.0) * 0.07);
        let v = Mat::from_fn(n, 1, |i, _| ((i % 11) as f64 - 5.0) * 0.09);
        let au = d.apply_dielectric_block(&u);
        let av = d.apply_dielectric_block(&v);
        let uav: f64 = u.col(0).iter().zip(av.col(0)).map(|(a, b)| a * b).sum();
        let vau: f64 = v.col(0).iter().zip(au.col(0)).map(|(a, b)| a * b).sum();
        assert!(
            (uav - vau).abs() < 1e-6 * (1.0 + uav.abs()),
            "{uav} vs {vau}"
        );
    }

    #[test]
    fn operator_is_negative_semidefinite() {
        let f = fixture();
        let d = op(&f, 0.5, 1);
        let n = f.ham.dim();
        for seed in 0..3u64 {
            let v = Mat::from_fn(n, 1, |i, _| {
                (((i as u64).wrapping_mul(seed * 2 + 13) % 29) as f64 - 14.0) * 0.03
            });
            let av = d.apply_dielectric_block(&v);
            let quad: f64 = v.col(0).iter().zip(av.col(0)).map(|(a, b)| a * b).sum();
            assert!(quad <= 1e-8, "vᵀAv = {quad} must be ≤ 0");
        }
    }

    #[test]
    fn worker_count_does_not_change_result() {
        let f = fixture();
        let n = f.ham.dim();
        let v = Mat::from_fn(n, 4, |i, j| ((i * 3 + j * 5) % 19) as f64 * 0.05 - 0.45);
        let d1 = op(&f, 0.7, 1);
        let d4 = op(&f, 0.7, 4);
        let o1 = d1.apply_dielectric_block(&v);
        let o4 = d4.apply_dielectric_block(&v);
        assert!(
            o1.max_abs_diff(&o4) < 1e-7,
            "partition must not change the math: {}",
            o1.max_abs_diff(&o4)
        );
    }

    #[test]
    fn oversubscribed_workers_clamp_to_column_count() {
        // far more workers than columns: the static partition must clamp
        // to one column per active worker (idle workers get nothing),
        // produce the single-worker answer, and keep the load ledger
        // sized to the configured (not clamped) worker count
        let f = fixture();
        let n = f.ham.dim();
        let v = Mat::from_fn(n, 2, |i, j| ((i * 5 + j * 3) % 17) as f64 * 0.06 - 0.48);
        let d1 = op(&f, 0.9, 1);
        let d64 = op(&f, 0.9, 64);
        let o1 = d1.apply_dielectric_block(&v);
        let o64 = d64.apply_dielectric_block(&v);
        assert!(
            o1.max_abs_diff(&o64) < 1e-7,
            "oversubscription changed the math: {}",
            o1.max_abs_diff(&o64)
        );
        let load = d64.worker_load_snapshot();
        assert_eq!(load.len(), 64, "ledger keeps the configured width");
        // only the clamped workers can have accrued any solve time
        assert!(load[2..].iter().all(|d| d.is_zero()));
    }

    #[test]
    fn galerkin_guess_reduces_solver_work() {
        let f = fixture();
        let n = f.ham.dim();
        let v = Mat::from_fn(n, 2, |i, j| ((i + j * 7) % 23) as f64 * 0.04 - 0.4);
        let with = DielectricOperator::new(
            &f.ham,
            &f.psi,
            &f.energies,
            &f.coulomb,
            0.3,
            SternheimerSettings {
                tol: 1e-6,
                use_galerkin_guess: true,
                ..SternheimerSettings::default()
            },
            1,
        );
        let without = DielectricOperator::new(
            &f.ham,
            &f.psi,
            &f.energies,
            &f.coulomb,
            0.3,
            SternheimerSettings {
                tol: 1e-6,
                use_galerkin_guess: false,
                ..SternheimerSettings::default()
            },
            1,
        );
        let _ = with.apply_dielectric_block(&v);
        let _ = without.apply_dielectric_block(&v);
        let iters_with = with.stats_snapshot().iterations;
        let iters_without = without.stats_snapshot().iterations;
        assert!(
            iters_with <= iters_without,
            "Eq. 13 guess should not increase iterations: {iters_with} vs {iters_without}"
        );
    }

    #[test]
    fn stats_and_counters_accumulate() {
        let f = fixture();
        let d = op(&f, 1.2, 2);
        let n = f.ham.dim();
        let v = Mat::from_fn(n, 3, |i, j| ((i + j) % 7) as f64 * 0.1);
        let _ = d.apply_dielectric_block(&v);
        assert_eq!(d.applications(), 3);
        let s = d.stats_snapshot();
        // n_s block systems per worker, 2 workers
        assert_eq!(s.block_sizes.total(), 3 * f.energies.len());
        assert!(d.time_in_apply() > Duration::ZERO);
        let _ = d.apply_dielectric_block(&v);
        assert_eq!(d.applications(), 6);
    }

    #[test]
    fn work_stealing_matches_static_partition() {
        let f = fixture();
        let n = f.ham.dim();
        let v = Mat::from_fn(n, 5, |i, j| ((i * 3 + j * 11) % 29) as f64 * 0.03 - 0.4);
        let make = |dist: WorkDistribution| {
            DielectricOperator::new(
                &f.ham,
                &f.psi,
                &f.energies,
                &f.coulomb,
                0.6,
                SternheimerSettings {
                    tol: 1e-9,
                    distribution: dist,
                    ..SternheimerSettings::default()
                },
                2,
            )
        };
        let stat = make(WorkDistribution::StaticColumns);
        let steal = make(WorkDistribution::WorkStealing { chunk_width: 2 });
        let a = stat.apply_dielectric_block(&v);
        let b = steal.apply_dielectric_block(&v);
        assert!(
            a.max_abs_diff(&b) < 1e-8,
            "distribution must not change the math: {}",
            a.max_abs_diff(&b)
        );
        // same number of Sternheimer systems recorded
        assert_eq!(
            stat.stats_snapshot().block_sizes.total(),
            steal.stats_snapshot().block_sizes.total()
        );
    }

    #[test]
    fn preconditioned_apply_matches_plain() {
        let f = fixture();
        let n = f.ham.dim();
        let v = Mat::from_fn(n, 2, |i, j| ((i * 7 + j * 13) % 19) as f64 * 0.05 - 0.45);
        let make = |policy: PrecondPolicy| {
            DielectricOperator::new(
                &f.ham,
                &f.psi,
                &f.energies,
                &f.coulomb,
                0.4,
                SternheimerSettings {
                    tol: 1e-9,
                    precondition: policy,
                    ..SternheimerSettings::default()
                },
                1,
            )
        };
        let plain = make(PrecondPolicy::Never);
        let pre = make(PrecondPolicy::Always);
        let hard = make(PrecondPolicy::HardOnly {
            omega_max: 1.0,
            top_orbital_frac: 0.5,
        });
        let a = plain.apply_chi0_block(&v);
        let b = pre.apply_chi0_block(&v);
        let c = hard.apply_chi0_block(&v);
        assert!(a.max_abs_diff(&b) < 1e-6 * a.max_abs().max(1.0));
        assert!(a.max_abs_diff(&c) < 1e-6 * a.max_abs().max(1.0));
    }

    #[test]
    fn two_identical_channels_equal_one_restricted_channel() {
        // spin-polarized with two identical g=1 channels must reproduce the
        // spin-restricted g=2 single-channel result exactly
        let f = fixture();
        let n = f.ham.dim();
        let v = Mat::from_fn(n, 2, |i, j| ((i * 5 + j * 17) % 23) as f64 * 0.04 - 0.4);
        let settings = SternheimerSettings {
            tol: 1e-9,
            ..SternheimerSettings::default()
        };
        let restricted =
            DielectricOperator::new(&f.ham, &f.psi, &f.energies, &f.coulomb, 0.7, settings, 1);
        let polarized = DielectricOperator::with_channels(
            &f.ham,
            vec![
                SpinChannel {
                    psi: &f.psi,
                    energies: &f.energies,
                    degeneracy: 1.0,
                },
                SpinChannel {
                    psi: &f.psi,
                    energies: &f.energies,
                    degeneracy: 1.0,
                },
            ],
            &f.coulomb,
            0.7,
            settings,
            1,
        );
        assert_eq!(polarized.n_channels(), 2);
        assert_eq!(polarized.n_occupied(), 2 * f.energies.len());
        let a = restricted.apply_chi0_block(&v);
        let b = polarized.apply_chi0_block(&v);
        assert!(
            a.max_abs_diff(&b) < 1e-8 * a.max_abs().max(1.0),
            "spin decomposition changed χ⁰: {}",
            a.max_abs_diff(&b)
        );
    }

    #[test]
    #[should_panic(expected = "at least one spin channel")]
    fn rejects_empty_channel_list() {
        let f = fixture();
        let _ = DielectricOperator::with_channels(
            &f.ham,
            vec![],
            &f.coulomb,
            0.5,
            SternheimerSettings::default(),
            1,
        );
    }

    #[test]
    fn precond_policy_predicate() {
        let hard = PrecondPolicy::HardOnly {
            omega_max: 0.5,
            top_orbital_frac: 0.25,
        };
        // 16 orbitals, top quarter = indices >= 12
        assert!(!hard.applies(0, 16, 0.1));
        assert!(!hard.applies(11, 16, 0.1));
        assert!(hard.applies(12, 16, 0.1));
        assert!(hard.applies(15, 16, 0.5));
        assert!(!hard.applies(15, 16, 0.6), "large omega is easy");
        assert!(PrecondPolicy::Always.applies(0, 16, 99.0));
        assert!(!PrecondPolicy::Never.applies(15, 16, 0.001));
    }

    #[test]
    #[should_panic(expected = "ω must be positive")]
    fn rejects_zero_omega() {
        let f = fixture();
        let _ = op(&f, 0.0, 1);
    }
}
