//! Subspace iteration with polynomial filtering over the dielectric
//! operator — Algorithm 5 of the paper.
//!
//! Each iteration applies the degree-`m` Chebyshev filter to the current
//! block `V`, projects (Rayleigh–Ritz: `H_s = Vᵀ(AV)`, `M_s = VᵀV`,
//! generalized symmetric eigensolve), rotates, and checks the residual
//! criterion of Eq. 7. The expensive kernel is the operator application
//! inside filtering and projection; the dense algebra mirrors the paper's
//! ScaLAPACK section and is timed separately (Figure 5 kernels).
//!
//! A Rayleigh–Ritz check runs **before** any filtering (lines 2–5 of
//! Algorithm 5), so a warm-started `V₀` from the previous quadrature point
//! can converge with zero filter applications — the "skip polynomial
//! filtering" behaviour of §III-F falls out naturally.

use crate::cancel::CancelToken;
use crate::chi0::DielectricOperator;
use mbrpa_linalg::{generalized_sym_eig, matmul, matmul_tn, LinalgError, Mat};
use mbrpa_solver::chebyshev_filter;
use std::time::{Duration, Instant};

/// Wall time of the paper's Figure 5 kernels within one subspace solve.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubspaceTimings {
    /// `ν½χ⁰ν½` applications (filtering + projection).
    pub apply: Duration,
    /// Dense matrix-matrix products (`VᵀW`, `VᵀV`, `V·Q`, `W·Q`).
    pub matmult: Duration,
    /// The generalized symmetric eigensolve.
    pub eigensolve: Duration,
    /// Residual evaluation of Eq. 7.
    pub eval_error: Duration,
}

impl SubspaceTimings {
    /// Merge another timing record.
    pub fn merge(&mut self, other: &SubspaceTimings) {
        self.apply += other.apply;
        self.matmult += other.matmult;
        self.eigensolve += other.eigensolve;
        self.eval_error += other.eval_error;
    }

    /// Total across kernels.
    pub fn total(&self) -> Duration {
        self.apply + self.matmult + self.eigensolve + self.eval_error
    }
}

/// One row of the per-iteration history (the paper's `ncheb | ErpaTerm |
/// eigs | eig Error | Timing` output lines).
#[derive(Clone, Debug)]
pub struct SubspaceIterRecord {
    /// Filter applications so far (`ncheb`; 0 = warm-start check).
    pub ncheb: usize,
    /// Trace term `Σ ln(1−μ)+μ` from the current Ritz values.
    pub energy_term: f64,
    /// Eq. 7 residual.
    pub error: f64,
    /// First two and last two Ritz values (paper's output columns).
    pub edge_eigs: [f64; 4],
    /// Wall time of this iteration.
    pub elapsed: Duration,
}

/// Result of one quadrature point's eigensolve.
#[derive(Clone, Debug)]
pub struct SubspaceOutcome {
    /// Ritz values, ascending (most negative first).
    pub eigenvalues: Vec<f64>,
    /// Converged eigenvector block (`n_d × n_eig`, orthonormal).
    pub vectors: Mat<f64>,
    /// Filter applications performed.
    pub filter_rounds: usize,
    /// Final Eq. 7 residual.
    pub error: f64,
    /// Whether the tolerance was reached within the round cap.
    pub converged: bool,
    /// The iteration stopped because its [`CancelToken`] was set. The
    /// eigenpairs are whatever the last completed projection produced
    /// (possibly none) and **must be discarded** by resumable drivers.
    pub cancelled: bool,
    /// Kernel timing breakdown.
    pub timings: SubspaceTimings,
    /// Per-iteration history.
    pub history: Vec<SubspaceIterRecord>,
}

/// The RPA trace approximation over the computed Ritz values:
/// `Σ_j ln(1 − μ_j) + μ_j` (§III-A).
pub fn trace_term(eigenvalues: &[f64]) -> f64 {
    eigenvalues
        .iter()
        .map(|&mu| {
            // μ ≤ 0 analytically; clamp tiny positive noise
            let mu = mu.min(0.0);
            (1.0 - mu).ln() + mu
        })
        .sum()
}

struct RitzStep {
    eigenvalues: Vec<f64>,
    error: f64,
}

/// Rayleigh–Ritz projection + rotation + Eq. 7 residual, updating `v` in
/// place and timing each kernel. `w` receives `A·v` rotated along, so the
/// residual needs no extra operator application.
fn rayleigh_ritz(
    op: &DielectricOperator<'_>,
    v: &mut Mat<f64>,
    timings: &mut SubspaceTimings,
) -> Result<RitzStep, LinalgError> {
    let _rr = mbrpa_obs::span("rayleigh_ritz");

    // operator application
    let t = Instant::now();
    let w = {
        let _s = mbrpa_obs::span("apply");
        op.apply_dielectric_block(v)
    };
    timings.apply += t.elapsed();

    // projections
    let t = Instant::now();
    let (h_s, m_s) = {
        let _s = mbrpa_obs::span("matmult");
        (matmul_tn(v, &w), matmul_tn(v, v))
    };
    timings.matmult += t.elapsed();

    // small generalized eigensolve
    let t = Instant::now();
    let eig = {
        let _s = mbrpa_obs::span("eigensolve");
        generalized_sym_eig(&h_s, &m_s)?
    };
    timings.eigensolve += t.elapsed();

    // rotations
    let t = Instant::now();
    let w_rot = {
        let _s = mbrpa_obs::span("matmult");
        *v = matmul(v, &eig.vectors);
        matmul(&w, &eig.vectors)
    };
    timings.matmult += t.elapsed();

    // Eq. 7: Σ_j ‖A v_j − D_jj v_j‖₂ / (n_eig √(Σ D²))
    let t = Instant::now();
    let _ee = mbrpa_obs::span("eval_error");
    let n_eig = v.cols();
    let mut res_sum = 0.0;
    for j in 0..n_eig {
        let lam = eig.values[j];
        let mut r = 0.0;
        let (vj, wj) = (v.col(j), w_rot.col(j));
        for i in 0..v.rows() {
            let d = wj[i] - lam * vj[i];
            r += d * d;
        }
        res_sum += r.sqrt();
    }
    let scale: f64 = eig.values.iter().map(|d| d * d).sum::<f64>().sqrt();
    let error = res_sum / (n_eig as f64 * scale.max(1e-300));
    timings.eval_error += t.elapsed();

    Ok(RitzStep {
        eigenvalues: eig.values,
        error,
    })
}

/// Run Algorithm 5 from the initial block `v0` at the operator's frequency.
pub fn subspace_iteration(
    op: &DielectricOperator<'_>,
    v0: Mat<f64>,
    tol: f64,
    max_rounds: usize,
    cheb_degree: usize,
) -> Result<SubspaceOutcome, LinalgError> {
    subspace_iteration_cancellable(op, v0, tol, max_rounds, cheb_degree, &CancelToken::new())
}

/// [`subspace_iteration`] with a cooperative [`CancelToken`], checked
/// before each Rayleigh–Ritz projection and each Chebyshev filter round.
/// A cancelled outcome carries `cancelled = true` and whatever state the
/// last completed kernel produced; callers must discard it (the resumable
/// driver recomputes the frequency from its last checkpoint on resume).
pub fn subspace_iteration_cancellable(
    op: &DielectricOperator<'_>,
    v0: Mat<f64>,
    tol: f64,
    max_rounds: usize,
    cheb_degree: usize,
    cancel: &CancelToken,
) -> Result<SubspaceOutcome, LinalgError> {
    let mut v = v0;
    let mut timings = SubspaceTimings::default();
    let mut history = Vec::new();

    let cancelled_outcome = |v: Mat<f64>,
                             timings: SubspaceTimings,
                             history: Vec<SubspaceIterRecord>,
                             rounds: usize,
                             eigenvalues: Vec<f64>,
                             error: f64| SubspaceOutcome {
        converged: false,
        cancelled: true,
        error,
        filter_rounds: rounds,
        eigenvalues,
        vectors: v,
        timings,
        history,
    };

    if cancel.is_cancelled() {
        return Ok(cancelled_outcome(
            v,
            timings,
            history,
            0,
            Vec::new(),
            f64::INFINITY,
        ));
    }

    // Lines 2–5: project and check before any filtering.
    let t_iter = Instant::now();
    let mut step = rayleigh_ritz(op, &mut v, &mut timings)?;
    history.push(record(0, &step, t_iter.elapsed()));

    let mut rounds = 0;
    while step.error > tol && rounds < max_rounds {
        if cancel.is_cancelled() {
            let (eigs, err) = (step.eigenvalues, step.error);
            return Ok(cancelled_outcome(v, timings, history, rounds, eigs, err));
        }
        rounds += 1;
        let t_iter = Instant::now();

        // Filter bounds from the running Ritz values (§III-A): damp the
        // unwanted interval between the least-negative kept Ritz value and
        // the (≈ 0) top of the spectrum.
        let mu_min = step.eigenvalues[0];
        // lint: allow(unwrap) — subspace dimension is validated ≥ 1 before iteration
        let mu_edge = *step.eigenvalues.last().expect("non-empty spectrum");
        let b_up = 1e-3 * mu_min.abs().max(1e-12);
        let a = if mu_edge < b_up { mu_edge } else { 0.5 * b_up };

        let t = Instant::now();
        {
            let _cheb = mbrpa_obs::span("chebyshev");
            v = chebyshev_filter(op, &v, cheb_degree, a, b_up, mu_min);
        }
        timings.apply += t.elapsed();

        // A cancellation observed mid-filter produced a truncated operator
        // application (see `chi0`); the block is garbage and must not be
        // projected or recorded — bail before the Rayleigh–Ritz step.
        if cancel.is_cancelled() {
            let (eigs, err) = (step.eigenvalues, step.error);
            return Ok(cancelled_outcome(v, timings, history, rounds, eigs, err));
        }

        step = rayleigh_ritz(op, &mut v, &mut timings)?;
        history.push(record(rounds, &step, t_iter.elapsed()));
    }

    Ok(SubspaceOutcome {
        converged: step.error <= tol,
        cancelled: false,
        error: step.error,
        filter_rounds: rounds,
        eigenvalues: step.eigenvalues,
        vectors: v,
        timings,
        history,
    })
}

fn record(ncheb: usize, step: &RitzStep, elapsed: Duration) -> SubspaceIterRecord {
    let n = step.eigenvalues.len();
    let edge = [
        step.eigenvalues[0],
        step.eigenvalues[1.min(n - 1)],
        step.eigenvalues[n.saturating_sub(2)],
        step.eigenvalues[n - 1],
    ];
    SubspaceIterRecord {
        ncheb,
        energy_term: trace_term(&step.eigenvalues),
        error: step.error,
        edge_eigs: edge,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chi0::SternheimerSettings;
    use crate::direct;
    use mbrpa_dft::{solve_occupied_dense, Hamiltonian, PotentialParams, SiliconSpec};
    use mbrpa_grid::{CoulombOperator, SpectralLaplacian};
    use mbrpa_linalg::orthonormalize_columns;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct Fixture {
        ham: Hamiltonian,
        psi: Mat<f64>,
        energies: Vec<f64>,
        coulomb: CoulombOperator,
        h_dense: Mat<f64>,
    }

    fn fixture() -> Fixture {
        let crystal = SiliconSpec {
            points_per_cell: 5,
            perturbation: 0.03,
            seed: 11,
            ..SiliconSpec::default()
        }
        .build();
        let ham = Hamiltonian::new(&crystal, 2, &PotentialParams::default());
        let ks = solve_occupied_dense(&ham, 6, 0).unwrap();
        let spec = SpectralLaplacian::new(crystal.grid, 2).unwrap();
        Fixture {
            h_dense: ham.to_dense(),
            psi: ks.occupied_orbitals(),
            energies: ks.occupied_energies().to_vec(),
            ham,
            coulomb: CoulombOperator::new(spec),
        }
    }

    fn random_block(n: usize, m: usize, seed: u64) -> Mat<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = Mat::from_fn(n, m, |_, _| rng.random_range(-1.0..1.0));
        orthonormalize_columns(&mut v);
        v
    }

    #[test]
    fn converges_to_exact_lowest_eigenvalues() {
        let f = fixture();
        let omega = 1.0;
        let op = DielectricOperator::new(
            &f.ham,
            &f.psi,
            &f.energies,
            &f.coulomb,
            omega,
            SternheimerSettings {
                tol: 1e-9,
                ..SternheimerSettings::default()
            },
            1,
        );
        let n_eig = 10;
        let v0 = random_block(f.ham.dim(), n_eig, 3);
        // the Eq. 7 residual floors near the inexact-operator level; the
        // paper runs at τ_SI = 5e-4, we ask for a tighter 1e-4
        let out = subspace_iteration(&op, v0, 1e-4, 40, 4).unwrap();
        assert!(out.converged, "error {}", out.error);

        let eig_h = direct::full_spectrum(&f.h_dense).unwrap();
        let exact = direct::dielectric_spectrum(&eig_h, 6, omega, &f.coulomb).unwrap();
        for j in 0..n_eig.min(4) {
            let d = (out.eigenvalues[j] - exact[j]).abs();
            assert!(
                d < 1e-3 * exact[j].abs().max(1e-6),
                "eig {j}: {} vs exact {}",
                out.eigenvalues[j],
                exact[j]
            );
        }
    }

    #[test]
    fn warm_start_converges_without_filtering() {
        let f = fixture();
        let settings = SternheimerSettings {
            tol: 1e-9,
            ..SternheimerSettings::default()
        };
        let op1 =
            DielectricOperator::new(&f.ham, &f.psi, &f.energies, &f.coulomb, 0.50, settings, 1);
        let v0 = random_block(f.ham.dim(), 8, 5);
        let first = subspace_iteration(&op1, v0, 5e-4, 40, 4).unwrap();
        assert!(first.converged);
        // nearby frequency, warm start: expect 0 or very few filter rounds
        let op2 =
            DielectricOperator::new(&f.ham, &f.psi, &f.energies, &f.coulomb, 0.48, settings, 1);
        let second = subspace_iteration(&op2, first.vectors, 2e-3, 40, 4).unwrap();
        assert!(second.converged);
        assert!(
            second.filter_rounds <= 1,
            "warm start needed {} filter rounds",
            second.filter_rounds
        );
        assert!(second.filter_rounds < first.filter_rounds);
    }

    #[test]
    fn trace_term_matches_manual_sum() {
        let mus = [-2.0, -0.5, -0.01];
        let expect: f64 = mus.iter().map(|&m: &f64| (1.0 - m).ln() + m).sum();
        assert!((trace_term(&mus) - expect).abs() < 1e-14);
        // positive noise clamps to zero contribution
        assert_eq!(trace_term(&[1e-15]), 0.0);
    }

    #[test]
    fn pre_cancelled_token_short_circuits_before_any_work() {
        let f = fixture();
        let op = DielectricOperator::new(
            &f.ham,
            &f.psi,
            &f.energies,
            &f.coulomb,
            0.9,
            SternheimerSettings::default(),
            1,
        );
        let v0 = random_block(f.ham.dim(), 6, 7);
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = subspace_iteration_cancellable(&op, v0, 1e-5, 15, 3, &cancel).unwrap();
        assert!(out.cancelled);
        assert!(!out.converged);
        assert!(out.history.is_empty(), "no projection should have run");
        assert_eq!(
            op.applications(),
            0,
            "no operator application should have run"
        );
    }

    #[test]
    fn uncancelled_token_matches_plain_iteration() {
        let f = fixture();
        let settings = SternheimerSettings::default();
        let op = DielectricOperator::new(&f.ham, &f.psi, &f.energies, &f.coulomb, 0.9, settings, 1);
        let v0 = random_block(f.ham.dim(), 6, 7);
        let plain = subspace_iteration(&op, v0.clone(), 1e-5, 15, 3).unwrap();
        let op2 =
            DielectricOperator::new(&f.ham, &f.psi, &f.energies, &f.coulomb, 0.9, settings, 1);
        let live =
            subspace_iteration_cancellable(&op2, v0, 1e-5, 15, 3, &CancelToken::new()).unwrap();
        assert!(!live.cancelled);
        assert_eq!(live.filter_rounds, plain.filter_rounds);
        assert_eq!(live.eigenvalues, plain.eigenvalues);
    }

    #[test]
    fn history_records_progression() {
        let f = fixture();
        let op = DielectricOperator::new(
            &f.ham,
            &f.psi,
            &f.energies,
            &f.coulomb,
            0.9,
            SternheimerSettings::default(),
            1,
        );
        let v0 = random_block(f.ham.dim(), 6, 7);
        let out = subspace_iteration(&op, v0, 1e-5, 15, 3).unwrap();
        assert_eq!(out.history.len(), out.filter_rounds + 1);
        assert_eq!(out.history[0].ncheb, 0);
        // error decreases overall from start to finish
        let first_err = out.history[0].error;
        assert!(out.error < first_err);
        // timing kernels all saw work
        assert!(out.timings.apply > Duration::ZERO);
        assert!(out.timings.total() > Duration::ZERO);
    }
}
